//! Static concurrency scheduling (Penry & August, DAC'03 — reference 12 in the
//! paper).
//!
//! The combinational dependency graph has an edge `A → B` for every wire
//! from an output of `A` to an input of `B` *that `B`'s `eval` actually
//! reads* (state elements consume their inputs in `end_of_timestep`, which
//! is what breaks synchronous feedback loops). The static schedule is the
//! topological order of this graph's strongly connected components; a
//! multi-node SCC is a true combinational cycle and is iterated to a
//! fixpoint at simulation time.
//!
//! The graph itself lives in `lss-analyze` ([`DepGraph`] and its Tarjan
//! [`Condensation`]): the engine executes exactly the condensation the
//! static analyzer's cycle detector reports on, so `lssc check` and the
//! scheduler can never disagree about what is a cycle.

use lss_analyze::{Condensation, DepGraph};

/// One step of a static schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleStep {
    /// Evaluate a single component once.
    Single(usize),
    /// A combinational cycle: iterate these components until their outputs
    /// stop changing.
    Fixpoint(Vec<usize>),
}

/// A full static schedule over `n` components.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Steps in execution order.
    pub steps: Vec<ScheduleStep>,
}

impl Schedule {
    /// Number of components covered.
    pub fn len(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                ScheduleStep::Single(_) => 1,
                ScheduleStep::Fixpoint(v) => v.len(),
            })
            .sum()
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of multi-component fixpoint blocks.
    pub fn cycle_blocks(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ScheduleStep::Fixpoint(_)))
            .count()
    }

    /// Builds the schedule executing a dependency-graph condensation:
    /// acyclic components become [`ScheduleStep::Single`] evaluations in
    /// topological order, genuine cycles become fixpoint blocks.
    pub fn from_condensation(cond: &Condensation) -> Schedule {
        let steps = cond
            .sccs
            .iter()
            .zip(&cond.cyclic)
            .map(|(scc, &cyclic)| {
                if cyclic {
                    ScheduleStep::Fixpoint(scc.clone())
                } else {
                    ScheduleStep::Single(scc[0])
                }
            })
            .collect();
        Schedule { steps }
    }
}

/// Computes the static schedule for `n` components given the combinational
/// edges `A → B` (deduplicated internally).
pub fn schedule(n: usize, edges: &[(usize, usize)]) -> Schedule {
    Schedule::from_condensation(&DepGraph::from_edges(n, edges).condense())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_of(schedule: &Schedule) -> Vec<usize> {
        schedule
            .steps
            .iter()
            .flat_map(|s| match s {
                ScheduleStep::Single(v) => vec![*v],
                ScheduleStep::Fixpoint(vs) => vs.clone(),
            })
            .collect()
    }

    #[test]
    fn chain_schedules_in_order() {
        // 0 -> 1 -> 2 -> 3
        let s = schedule(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(order_of(&s), vec![0, 1, 2, 3]);
        assert_eq!(s.cycle_blocks(), 0);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn respects_topological_constraints_in_dags() {
        // Diamond: 0 -> {1,2} -> 3.
        let s = schedule(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let order = order_of(&s);
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn cycle_becomes_fixpoint_block() {
        // 0 -> 1 -> 2 -> 0 with an entry 3 -> 0 and exit 2 -> 4.
        let s = schedule(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (2, 4)]);
        assert_eq!(s.cycle_blocks(), 1);
        let order = order_of(&s);
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(3) < pos(0), "entry must run before the cycle");
        assert!(pos(2) < pos(4), "exit must run after the cycle");
        // The cycle nodes form one block.
        let block = s
            .steps
            .iter()
            .find_map(|st| match st {
                ScheduleStep::Fixpoint(v) => Some(v.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(block, vec![0, 1, 2]);
    }

    #[test]
    fn self_loop_is_a_fixpoint() {
        let s = schedule(2, &[(0, 0), (0, 1)]);
        assert!(matches!(&s.steps[0], ScheduleStep::Fixpoint(v) if v == &vec![0]));
        assert!(matches!(&s.steps[1], ScheduleStep::Single(1)));
    }

    #[test]
    fn disconnected_components_all_scheduled() {
        let s = schedule(5, &[(0, 1), (3, 4)]);
        let mut order = order_of(&s);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn duplicate_edges_are_harmless() {
        let s = schedule(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(order_of(&s), vec![0, 1]);
    }

    #[test]
    fn large_pipeline_does_not_overflow_stack() {
        let n = 50_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let s = schedule(n, &edges);
        assert_eq!(s.len(), n);
        assert_eq!(order_of(&s)[0], 0);
        assert_eq!(order_of(&s)[n - 1], n - 1);
    }

    #[test]
    fn two_cycles_are_separate_blocks() {
        // 0 <-> 1, 2 <-> 3, with 1 -> 2.
        let s = schedule(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        assert_eq!(s.cycle_blocks(), 2);
        let order = order_of(&s);
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(2));
    }
}
