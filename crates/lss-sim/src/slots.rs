//! Flat name/value tables for the simulation hot path.
//!
//! Runtime variables, collector accumulators, and BSL environments all hold
//! a handful of named [`Datum`] slots. A [`SlotTable`] stores them as two
//! parallel vectors: per-cycle access goes through a dense index (no
//! hashing, no allocation), and name lookup — needed only when a behavior
//! resolves its slots once, or at output boundaries — is a linear scan,
//! which beats a hash map at these sizes.

use lss_types::Datum;

/// A small ordered table of named values, addressed by dense index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlotTable {
    names: Vec<String>,
    values: Vec<Datum>,
}

impl SlotTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from `(name, value)` pairs, keeping order.
    pub fn from_pairs<N: Into<String>>(pairs: impl IntoIterator<Item = (N, Datum)>) -> Self {
        let mut t = Self::new();
        for (n, v) in pairs {
            t.push(n.into(), v);
        }
        t
    }

    /// Index of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Appends a new slot, returning its index. Does not check for
    /// duplicates — callers that need get-or-create use [`SlotTable::ensure`].
    pub fn push(&mut self, name: impl Into<String>, value: Datum) -> usize {
        self.names.push(name.into());
        self.values.push(value);
        self.values.len() - 1
    }

    /// Index of `name`, creating the slot with `default` if absent.
    pub fn ensure(&mut self, name: &str, default: Datum) -> usize {
        match self.index_of(name) {
            Some(i) => i,
            None => self.push(name, default),
        }
    }

    /// Reads the slot at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn value(&self, index: usize) -> &Datum {
        &self.values[index]
    }

    /// Writes the slot at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: usize, value: Datum) {
        self.values[index] = value;
    }

    /// Reads by name (linear scan).
    pub fn get(&self, name: &str) -> Option<&Datum> {
        self.index_of(name).map(|i| &self.values[i])
    }

    /// Mutable access by name (linear scan).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Datum> {
        match self.index_of(name) {
            Some(i) => Some(&mut self.values[i]),
            None => None,
        }
    }

    /// Slot name at `index`.
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(name, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Datum)> {
        self.names
            .iter()
            .map(|n| n.as_str())
            .zip(self.values.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index_access() {
        let mut t = SlotTable::new();
        let a = t.push("alpha", Datum::Int(1));
        let b = t.push("beta", Datum::Int(2));
        assert_ne!(a, b);
        assert_eq!(t.value(a), &Datum::Int(1));
        t.set(a, Datum::Int(10));
        assert_eq!(t.value(a), &Datum::Int(10));
        assert_eq!(t.index_of("beta"), Some(b));
        assert_eq!(t.index_of("gamma"), None);
    }

    #[test]
    fn ensure_is_get_or_create() {
        let mut t = SlotTable::from_pairs([("x", Datum::Int(5))]);
        let x = t.ensure("x", Datum::Int(99));
        assert_eq!(t.value(x), &Datum::Int(5), "ensure must not overwrite");
        let y = t.ensure("y", Datum::Int(7));
        assert_eq!(t.value(y), &Datum::Int(7));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn name_lookup_and_iteration() {
        let t = SlotTable::from_pairs([("a", Datum::Int(1)), ("b", Datum::Bool(true))]);
        assert_eq!(t.get("b"), Some(&Datum::Bool(true)));
        let pairs: Vec<(String, Datum)> =
            t.iter().map(|(n, v)| (n.to_string(), v.clone())).collect();
        assert_eq!(pairs[0], ("a".to_string(), Datum::Int(1)));
        assert_eq!(pairs.len(), 2);
    }
}
