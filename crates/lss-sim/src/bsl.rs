//! The behavior specification language (BSL) interpreter.
//!
//! Userpoint parameters and collector bodies carry BSL code as strings
//! (§4.3, §4.5). The paper keeps the BSL pluggable; ours reuses LSS's
//! statement/expression *syntax* (parsed with the `lss-ast` front end) but
//! is interpreted at **simulation time** over [`Datum`] values, with access
//! to the invocation's arguments and the instance's runtime variables.
//!
//! Supported statements: `var`, assignment, `if`/`else`, `while`, `for`,
//! `return`, expression statements, and blocks. Structural statements
//! (`instance`, `->`, `parameter`, ...) are compile errors — BSL describes
//! computation, not structure.

use std::collections::HashMap;
use std::rc::Rc;

use lss_ast::{parse, BinOp, DiagnosticBag, Expr, ExprKind, SourceMap, Stmt, TypeExpr, UnOp};
use lss_types::Datum;

use crate::component::SimError;
use crate::slots::SlotTable;

/// A compiled BSL program.
#[derive(Debug, Clone)]
pub struct BslProgram {
    body: Rc<Vec<Stmt>>,
    source: String,
}

impl BslProgram {
    /// The original source code.
    pub fn source(&self) -> &str {
        &self.source
    }
}

/// Parses BSL code.
///
/// # Errors
///
/// Returns rendered diagnostics if the code does not parse or contains
/// structural statements.
pub fn compile_bsl(code: &str) -> Result<BslProgram, String> {
    let mut sources = SourceMap::new();
    let file = sources.add_file("<bsl>", code);
    let mut diags = DiagnosticBag::new();
    let program = parse(file, code, &mut diags);
    if diags.has_errors() {
        return Err(diags.render(&sources));
    }
    if !program.modules.is_empty() {
        return Err("BSL code cannot declare modules".to_string());
    }
    for stmt in &program.top {
        check_behavioral(stmt)?;
    }
    Ok(BslProgram {
        body: Rc::new(program.top),
        source: code.to_string(),
    })
}

fn check_behavioral(stmt: &Stmt) -> Result<(), String> {
    let bad = |what: &str| Err(format!("BSL code cannot contain {what} (it is structural)"));
    match stmt {
        Stmt::Parameter(_) => bad("parameter declarations"),
        Stmt::Port(_) => bad("port declarations"),
        Stmt::Instance(_) => bad("instance declarations"),
        Stmt::Connect(_) => bad("connections"),
        Stmt::TypeInstantiation(_) => bad("type instantiations"),
        Stmt::RuntimeVar(_) => bad("runtime variable declarations (declare them in the module)"),
        Stmt::Event(_) => bad("event declarations"),
        Stmt::Collector(_) => bad("collectors"),
        Stmt::ProtocolDecl(_) => bad("protocol declarations"),
        Stmt::ProtocolAnnot(_) => bad("protocol annotations"),
        Stmt::Fun(f) => f.body.iter().try_for_each(check_behavioral),
        Stmt::If(s) => s
            .then_body
            .iter()
            .chain(&s.else_body)
            .try_for_each(check_behavioral),
        Stmt::While(s) => s.body.iter().try_for_each(check_behavioral),
        Stmt::For(s) => {
            if let Some(init) = &s.init {
                check_behavioral(init)?;
            }
            if let Some(step) = &s.step {
                check_behavioral(step)?;
            }
            s.body.iter().try_for_each(check_behavioral)
        }
        Stmt::Block(body, _) => body.iter().try_for_each(check_behavioral),
        Stmt::Var(_) | Stmt::Assign(_) | Stmt::Expr(_) | Stmt::Return(..) => Ok(()),
    }
}

/// Execution environment for one BSL invocation.
///
/// Argument binding is positional: `args[i]` is the value of the name
/// `arg_names[i]`. The engine precomputes argument-name tables once, so a
/// per-cycle invocation allocates no strings and hashes nothing.
#[derive(Debug)]
pub struct BslEnv<'a> {
    /// Declared argument names, in order.
    pub arg_names: &'a [String],
    /// Argument values, parallel to `arg_names` (mutable as scratch locals).
    pub args: Vec<Datum>,
    /// Persistent state: the instance's runtime variables, or a collector's
    /// accumulator table.
    pub vars: &'a mut SlotTable,
    /// Collector mode: reading an unknown name yields `0` and assigning an
    /// unknown name creates it — collectors cannot pre-declare state.
    pub implicit_zero: bool,
}

impl<'a> BslEnv<'a> {
    /// Binds `args` to `arg_names` positionally over the state table `vars`.
    pub fn bound(arg_names: &'a [String], args: Vec<Datum>, vars: &'a mut SlotTable) -> Self {
        debug_assert_eq!(arg_names.len(), args.len());
        BslEnv {
            arg_names,
            args,
            vars,
            implicit_zero: false,
        }
    }
}

/// Executes `program`, returning the value of the first `return` (if any).
///
/// # Errors
///
/// Runtime errors (unknown names, type mismatches, division by zero,
/// exceeding `max_steps`).
pub fn exec(
    program: &BslProgram,
    env: &mut BslEnv<'_>,
    max_steps: u64,
) -> Result<Option<Datum>, SimError> {
    let mut interp = Interp {
        env,
        locals: vec![HashMap::new()],
        steps: 0,
        max_steps,
    };
    match interp.block_raw(&program.body)? {
        Ctl::Return(v) => Ok(Some(v)),
        Ctl::Normal => Ok(None),
    }
}

enum Ctl {
    Normal,
    Return(Datum),
}

struct Interp<'a, 'b> {
    env: &'a mut BslEnv<'b>,
    locals: Vec<HashMap<String, Datum>>,
    steps: u64,
    max_steps: u64,
}

impl Interp<'_, '_> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, SimError> {
        Err(SimError::new(msg.into()))
    }

    fn tick(&mut self) -> Result<(), SimError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return self.err(format!("BSL exceeded {} steps", self.max_steps));
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Datum> {
        self.locals
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .or_else(|| {
                self.env
                    .arg_names
                    .iter()
                    .position(|n| n == name)
                    .map(|i| &self.env.args[i])
            })
            .or_else(|| self.env.vars.get(name))
    }

    fn read(&mut self, name: &str) -> Result<Datum, SimError> {
        if let Some(v) = self.lookup(name) {
            return Ok(v.clone());
        }
        if self.env.implicit_zero {
            return Ok(Datum::Int(0));
        }
        self.err(format!("BSL references unknown name `{name}`"))
    }

    fn write(&mut self, name: &str, value: Datum) -> Result<(), SimError> {
        for scope in self.locals.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return Ok(());
            }
        }
        if let Some(i) = self.env.arg_names.iter().position(|n| n == name) {
            self.env.args[i] = value;
            return Ok(());
        }
        if let Some(slot) = self.env.vars.get_mut(name) {
            *slot = value;
            return Ok(());
        }
        if self.env.implicit_zero {
            self.env.vars.push(name, value);
            return Ok(());
        }
        self.err(format!("BSL assigns unknown name `{name}`"))
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<Ctl, SimError> {
        self.locals.push(HashMap::new());
        let result = self.block_raw(stmts);
        self.locals.pop();
        result
    }

    fn block_raw(&mut self, stmts: &[Stmt]) -> Result<Ctl, SimError> {
        for stmt in stmts {
            if let Ctl::Return(v) = self.stmt(stmt)? {
                return Ok(Ctl::Return(v));
            }
        }
        Ok(Ctl::Normal)
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<Ctl, SimError> {
        self.tick()?;
        match stmt {
            Stmt::Var(decl) => {
                let value = match (&decl.init, &decl.ty) {
                    (Some(init), _) => self.eval(init)?,
                    (None, Some(ty)) => default_for_type_expr(ty)
                        .ok_or_else(|| SimError::new("BSL var needs an initializer"))?,
                    (None, None) => return self.err("BSL var needs a type or initializer"),
                };
                self.locals
                    .last_mut()
                    .expect("at least one scope")
                    .insert(decl.name.name.clone(), value);
            }
            Stmt::Assign(assign) => {
                let value = self.eval(&assign.value)?;
                self.assign(&assign.target, value)?;
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
            }
            Stmt::If(s) => {
                let cond = self.eval_bool(&s.cond)?;
                return self.block(if cond { &s.then_body } else { &s.else_body });
            }
            Stmt::While(s) => loop {
                self.tick()?;
                if !self.eval_bool(&s.cond)? {
                    break;
                }
                if let Ctl::Return(v) = self.block(&s.body)? {
                    return Ok(Ctl::Return(v));
                }
            },
            Stmt::For(s) => {
                self.locals.push(HashMap::new());
                let result = (|| {
                    if let Some(init) = &s.init {
                        if let Ctl::Return(v) = self.stmt(init)? {
                            return Ok(Ctl::Return(v));
                        }
                    }
                    loop {
                        self.tick()?;
                        let go = match &s.cond {
                            Some(c) => self.eval_bool(c)?,
                            None => true,
                        };
                        if !go {
                            return Ok(Ctl::Normal);
                        }
                        if let Ctl::Return(v) = self.block(&s.body)? {
                            return Ok(Ctl::Return(v));
                        }
                        if let Some(step) = &s.step {
                            if let Ctl::Return(v) = self.stmt(step)? {
                                return Ok(Ctl::Return(v));
                            }
                        }
                    }
                })();
                self.locals.pop();
                return result;
            }
            Stmt::Block(body, _) => return self.block(body),
            Stmt::Return(value, _) => {
                let v = match value {
                    Some(e) => self.eval(e)?,
                    None => Datum::Int(0),
                };
                return Ok(Ctl::Return(v));
            }
            // check_behavioral rejected everything else at compile time.
            other => {
                return self.err(format!("BSL cannot execute {other:?}"));
            }
        }
        Ok(Ctl::Normal)
    }

    fn assign(&mut self, target: &Expr, value: Datum) -> Result<(), SimError> {
        match &target.kind {
            ExprKind::Ident(id) => self.write(&id.name, value),
            ExprKind::Field(base, field) => {
                let ExprKind::Ident(root) = &base.kind else {
                    return self.err("BSL field assignment must be `name.field`");
                };
                let root_name = root.name.clone();
                let mut current = self.read(&root_name)?;
                match current.field_mut(&field.name) {
                    Some(slot) => *slot = value,
                    None => return self.err(format!("no field `{}` on `{root_name}`", field.name)),
                }
                self.write(&root_name, current)
            }
            ExprKind::Index(base, idx) => {
                let ExprKind::Ident(root) = &base.kind else {
                    return self.err("BSL index assignment must be `name[i]`");
                };
                let root_name = root.name.clone();
                let i = self.eval_index(idx)?;
                let mut current = self.read(&root_name)?;
                match &mut current {
                    Datum::Array(items) if i < items.len() => items[i] = value,
                    Datum::Array(items) => {
                        return self
                            .err(format!("index {i} out of bounds (length {})", items.len()))
                    }
                    other => return self.err(format!("cannot index into {other}")),
                }
                self.write(&root_name, current)
            }
            _ => self.err("unsupported BSL assignment target"),
        }
    }

    fn eval_bool(&mut self, e: &Expr) -> Result<bool, SimError> {
        match self.eval(e)? {
            Datum::Bool(b) => Ok(b),
            other => self.err(format!("expected bool, got {other}")),
        }
    }

    fn eval_index(&mut self, e: &Expr) -> Result<usize, SimError> {
        match self.eval(e)? {
            Datum::Int(v) if v >= 0 => Ok(v as usize),
            other => self.err(format!("index must be a non-negative int, got {other}")),
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<Datum, SimError> {
        self.tick()?;
        match &e.kind {
            ExprKind::Int(v) => Ok(Datum::Int(*v)),
            ExprKind::Float(v) => Ok(Datum::Float(*v)),
            ExprKind::Str(s) => Ok(Datum::Str(s.clone())),
            ExprKind::Bool(b) => Ok(Datum::Bool(*b)),
            ExprKind::Ident(id) => self.read(&id.name),
            ExprKind::Field(base, field) => {
                let v = self.eval(base)?;
                match v.field(&field.name) {
                    Some(f) => Ok(f.clone()),
                    None => self.err(format!("{v} has no field `{}`", field.name)),
                }
            }
            ExprKind::Index(base, idx) => {
                let i = self.eval_index(idx)?;
                match self.eval(base)? {
                    Datum::Array(items) => items
                        .get(i)
                        .cloned()
                        .ok_or_else(|| SimError::new(format!("index {i} out of bounds"))),
                    other => self.err(format!("cannot index into {other}")),
                }
            }
            ExprKind::Call(callee, args) => {
                let Some(name) = callee.as_ident() else {
                    return self.err("BSL can only call builtin functions");
                };
                self.call_builtin(&name.name.clone(), args)
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner)?;
                match (op, v) {
                    (UnOp::Neg, Datum::Int(v)) => Ok(Datum::Int(-v)),
                    (UnOp::Neg, Datum::Float(v)) => Ok(Datum::Float(-v)),
                    (UnOp::Not, Datum::Bool(b)) => Ok(Datum::Bool(!b)),
                    (op, v) => self.err(format!("cannot apply {op:?} to {v}")),
                }
            }
            ExprKind::Binary(op, lhs, rhs) => self.binary(*op, lhs, rhs),
            ExprKind::Ternary(c, t, f) => {
                if self.eval_bool(c)? {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            ExprKind::ArrayLit(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Datum::Array(out))
            }
            ExprKind::NewInstanceArray { .. } => self.err("BSL cannot create instances"),
        }
    }

    fn binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Datum, SimError> {
        if op == BinOp::And {
            return Ok(Datum::Bool(self.eval_bool(lhs)? && self.eval_bool(rhs)?));
        }
        if op == BinOp::Or {
            return Ok(Datum::Bool(self.eval_bool(lhs)? || self.eval_bool(rhs)?));
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        datum_binary(op, l, r).map_err(SimError::new)
    }

    fn call_builtin(&mut self, name: &str, args: &[Expr]) -> Result<Datum, SimError> {
        let mut values = Vec::with_capacity(args.len());
        for a in args {
            values.push(self.eval(a)?);
        }
        let arity = |n: usize| -> Result<(), SimError> {
            if values.len() != n {
                Err(SimError::new(format!("`{name}` expects {n} argument(s)")))
            } else {
                Ok(())
            }
        };
        match name {
            "len" => {
                arity(1)?;
                match &values[0] {
                    Datum::Array(items) => Ok(Datum::Int(items.len() as i64)),
                    Datum::Str(s) => Ok(Datum::Int(s.len() as i64)),
                    other => self.err(format!("len() of {other}")),
                }
            }
            "min" | "max" => {
                arity(2)?;
                match (&values[0], &values[1]) {
                    (Datum::Int(a), Datum::Int(b)) => Ok(Datum::Int(if name == "min" {
                        *a.min(b)
                    } else {
                        *a.max(b)
                    })),
                    (Datum::Float(a), Datum::Float(b)) => Ok(Datum::Float(if name == "min" {
                        a.min(*b)
                    } else {
                        a.max(*b)
                    })),
                    (a, b) => self.err(format!("{name}({a}, {b}) needs matching numbers")),
                }
            }
            "abs" => {
                arity(1)?;
                match &values[0] {
                    Datum::Int(v) => Ok(Datum::Int(v.abs())),
                    Datum::Float(v) => Ok(Datum::Float(v.abs())),
                    other => self.err(format!("abs() of {other}")),
                }
            }
            "to_int" => {
                arity(1)?;
                match &values[0] {
                    Datum::Int(v) => Ok(Datum::Int(*v)),
                    Datum::Float(v) => Ok(Datum::Int(*v as i64)),
                    Datum::Bool(b) => Ok(Datum::Int(*b as i64)),
                    other => self.err(format!("to_int() of {other}")),
                }
            }
            "to_float" => {
                arity(1)?;
                match &values[0] {
                    Datum::Int(v) => Ok(Datum::Float(*v as f64)),
                    Datum::Float(v) => Ok(Datum::Float(*v)),
                    other => self.err(format!("to_float() of {other}")),
                }
            }
            "str" => {
                arity(1)?;
                Ok(Datum::Str(values[0].to_string()))
            }
            other => self.err(format!("unknown BSL function `{other}`")),
        }
    }
}

/// Applies a binary operator to two datums (shared with component code).
pub fn datum_binary(op: BinOp, l: Datum, r: Datum) -> Result<Datum, String> {
    use Datum::*;
    if matches!(op, BinOp::Eq | BinOp::Ne) {
        let eq = match (&l, &r) {
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Struct(a), Struct(b)) => a == b,
            (a, b) => return Err(format!("cannot compare {a} with {b}")),
        };
        return Ok(Bool(if op == BinOp::Eq { eq } else { !eq }));
    }
    if let (BinOp::Add, Str(a)) = (op, &l) {
        return Ok(Str(format!("{a}{r}")));
    }
    let float_mode = matches!((&l, &r), (Float(_), _) | (_, Float(_)));
    if float_mode {
        let to_f = |d: &Datum| match d {
            Int(v) => Ok(*v as f64),
            Float(v) => Ok(*v),
            other => Err(format!("expected a number, got {other}")),
        };
        let (a, b) = (to_f(&l)?, to_f(&r)?);
        Ok(match op {
            BinOp::Add => Float(a + b),
            BinOp::Sub => Float(a - b),
            BinOp::Mul => Float(a * b),
            BinOp::Div => Float(a / b),
            BinOp::Rem => Float(a % b),
            BinOp::Lt => Bool(a < b),
            BinOp::Le => Bool(a <= b),
            BinOp::Gt => Bool(a > b),
            BinOp::Ge => Bool(a >= b),
            _ => return Err(format!("cannot apply {op} to floats")),
        })
    } else {
        let to_i = |d: &Datum| match d {
            Int(v) => Ok(*v),
            other => Err(format!("expected int, got {other}")),
        };
        let (a, b) = (to_i(&l)?, to_i(&r)?);
        if matches!(op, BinOp::Div | BinOp::Rem) && b == 0 {
            return Err("division by zero".to_string());
        }
        Ok(match op {
            BinOp::Add => Int(a.wrapping_add(b)),
            BinOp::Sub => Int(a.wrapping_sub(b)),
            BinOp::Mul => Int(a.wrapping_mul(b)),
            BinOp::Div => Int(a / b),
            BinOp::Rem => Int(a % b),
            BinOp::Lt => Bool(a < b),
            BinOp::Le => Bool(a <= b),
            BinOp::Gt => Bool(a > b),
            BinOp::Ge => Bool(a >= b),
            _ => return Err(format!("cannot apply {op} to ints")),
        })
    }
}

fn default_for_type_expr(ty: &TypeExpr) -> Option<Datum> {
    Some(match ty {
        TypeExpr::Int => Datum::Int(0),
        TypeExpr::Bool => Datum::Bool(false),
        TypeExpr::Float => Datum::Float(0.0),
        TypeExpr::String => Datum::Str(String::new()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(code: &str, args: &[(&str, Datum)], vars: &mut SlotTable) -> Option<Datum> {
        let prog = compile_bsl(code).unwrap_or_else(|e| panic!("BSL parse error: {e}"));
        let arg_names: Vec<String> = args.iter().map(|(n, _)| n.to_string()).collect();
        let values: Vec<Datum> = args.iter().map(|(_, v)| v.clone()).collect();
        let mut env = BslEnv::bound(&arg_names, values, vars);
        exec(&prog, &mut env, 100_000).unwrap_or_else(|e| panic!("BSL error: {e}"))
    }

    #[test]
    fn returns_expression_values() {
        let mut vars = SlotTable::new();
        assert_eq!(
            run("return reqs + 1;", &[("reqs", Datum::Int(4))], &mut vars),
            Some(Datum::Int(5))
        );
    }

    #[test]
    fn updates_runtime_variables() {
        let mut vars = SlotTable::from_pairs([("total", Datum::Int(10))]);
        run(
            "total = total + incoming;",
            &[("incoming", Datum::Int(5))],
            &mut vars,
        );
        assert_eq!(vars.get("total"), Some(&Datum::Int(15)));
    }

    #[test]
    fn control_flow_and_locals() {
        let mut vars = SlotTable::new();
        let result = run(
            r#"
            var acc:int = 0;
            for (var i:int = 0; i < n; i = i + 1) {
                if (i % 2 == 0) { acc = acc + i; }
            }
            return acc;
            "#,
            &[("n", Datum::Int(10))],
            &mut vars,
        );
        assert_eq!(result, Some(Datum::Int(20))); // 0+2+4+6+8
    }

    #[test]
    fn while_and_early_return() {
        let mut vars = SlotTable::new();
        let result = run(
            "var i:int = 0; while (true) { i = i + 1; if (i == 7) { return i; } }",
            &[],
            &mut vars,
        );
        assert_eq!(result, Some(Datum::Int(7)));
    }

    #[test]
    fn arrays_and_builtins() {
        let mut vars = SlotTable::new();
        let result = run(
            r#"
            var xs:int[] = [3, 1, 2];
            xs[0] = 5;
            return len(xs) * 100 + xs[0] * 10 + min(xs[1], xs[2]);
            "#,
            &[],
            &mut vars,
        );
        assert_eq!(result, Some(Datum::Int(351)));
    }

    #[test]
    fn struct_field_access_and_update() {
        let mut vars = SlotTable::from_pairs([(
            "pkt",
            Datum::Struct(vec![
                ("dest".into(), Datum::Int(3)),
                ("data".into(), Datum::Int(9)),
            ]),
        )]);
        let result = run("pkt.dest = pkt.dest + 1; return pkt.dest;", &[], &mut vars);
        assert_eq!(result, Some(Datum::Int(4)));
        assert_eq!(vars.get("pkt").unwrap().field("dest"), Some(&Datum::Int(4)));
    }

    #[test]
    fn collector_mode_creates_implicit_state() {
        let prog = compile_bsl("fires = fires + 1;").unwrap();
        let mut vars = SlotTable::new();
        let mut env = BslEnv {
            arg_names: &[],
            args: vec![],
            vars: &mut vars,
            implicit_zero: true,
        };
        exec(&prog, &mut env, 1000).unwrap();
        exec(&prog, &mut env, 1000).unwrap();
        assert_eq!(vars.get("fires"), Some(&Datum::Int(2)));
    }

    #[test]
    fn unknown_name_is_an_error_outside_collector_mode() {
        let prog = compile_bsl("return nope;").unwrap();
        let mut vars = SlotTable::new();
        let mut env = BslEnv::bound(&[], vec![], &mut vars);
        let err = exec(&prog, &mut env, 1000).unwrap_err();
        assert!(err.message.contains("unknown name `nope`"));
    }

    #[test]
    fn structural_statements_are_rejected_at_compile_time() {
        assert!(compile_bsl("instance d:delay;")
            .unwrap_err()
            .contains("structural"));
        assert!(compile_bsl("a.out -> b.in;")
            .unwrap_err()
            .contains("structural"));
        assert!(compile_bsl("if (true) { inport x:int; }").is_err());
        assert!(compile_bsl("module m { };")
            .unwrap_err()
            .contains("modules"));
    }

    #[test]
    fn runaway_loops_hit_the_step_budget() {
        let prog = compile_bsl("while (true) { }").unwrap();
        let mut vars = SlotTable::new();
        let mut env = BslEnv::bound(&[], vec![], &mut vars);
        let err = exec(&prog, &mut env, 500).unwrap_err();
        assert!(err.message.contains("exceeded 500 steps"));
    }

    #[test]
    fn float_promotion_and_division_guard() {
        let mut vars = SlotTable::new();
        assert_eq!(run("return 3 / 2;", &[], &mut vars), Some(Datum::Int(1)));
        assert_eq!(
            run("return 3.0 / 2;", &[], &mut vars),
            Some(Datum::Float(1.5))
        );
        let prog = compile_bsl("return 1 / 0;").unwrap();
        let mut env = BslEnv::bound(&[], vec![], &mut vars);
        assert!(exec(&prog, &mut env, 100)
            .unwrap_err()
            .message
            .contains("division by zero"));
    }

    #[test]
    fn string_concat_via_plus() {
        let mut vars = SlotTable::new();
        assert_eq!(
            run(r#"return "n=" + 4;"#, &[], &mut vars),
            Some(Datum::Str("n=4".into()))
        );
    }
}
