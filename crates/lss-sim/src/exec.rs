//! The compiled engine's execution plan and staged settle loop.
//!
//! The static schedule is a topological order of the analyzer's Tarjan
//! condensation; `lss-analyze`'s `Condensation::stages` additionally groups
//! the SCCs into *stages* — sets of mutually independent schedule units.
//! The compiled plan records, per stage, which units run as devirtualized
//! [`Kernel`](crate::kernel::Kernel)s and which stay on the serial dyn
//! `Component` path (behaviors without a lowering, and fixpoint blocks,
//! which need the interpreter's change-detection machinery anyway).
//!
//! Execution is deterministic by construction: kernels buffer their writes
//! and the engine commits each stage's buffer at a stage barrier, so the
//! arena a stage reads never depends on evaluation order *within* the
//! stage. That makes the multi-threaded path (`std::thread::scope` over
//! chunks of a stage's kernel range) byte-identical to single-threaded
//! execution — pinned by the `--threads 1/2/8` determinism test.

use std::collections::VecDeque;

use lss_types::Datum;

use crate::component::SimError;
use crate::kernel::KernelUnit;

/// Deliberately injected compiled-engine bugs, in the spirit of
/// `lss-verify`'s `Mutation` knob on the reference simulator: each breaks
/// an invariant the staged executor relies on, and the differential
/// harness must catch (and minimize) the resulting trace divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMutation {
    /// Correct execution.
    #[default]
    None,
    /// A stale stage commit: the last buffered write of every stage is
    /// dropped, as if one kernel's output buffer never made it into the
    /// arena.
    StaleCommit,
    /// A skipped stage barrier: all kernel writes are held back and
    /// committed only after the whole settle pass, so downstream stages
    /// read cycle-start (absent) values instead of their inputs.
    SkipBarrier,
}

impl KernelMutation {
    /// Parses a CLI name (`stale-commit`, `skip-barrier`).
    pub fn parse(name: &str) -> Option<KernelMutation> {
        match name {
            "stale-commit" => Some(KernelMutation::StaleCommit),
            "skip-barrier" => Some(KernelMutation::SkipBarrier),
            _ => None,
        }
    }
}

/// One serial (non-kernel) unit of a stage.
#[derive(Debug, Clone, Copy)]
pub struct SerialStep {
    /// Window start into [`CompiledPlan::serial_order`].
    pub start: usize,
    /// Window length.
    pub len: usize,
    /// True for a combinational-cycle fixpoint block.
    pub fixpoint: bool,
}

/// One stage of the compiled plan: a window of kernels (mutually
/// independent, barrier-committed) plus a window of serial steps.
#[derive(Debug, Clone, Copy)]
pub struct StageInfo {
    /// Kernel window start into the engine's kernel vector.
    pub kstart: usize,
    /// Kernel window length.
    pub klen: usize,
    /// Serial-step window start into [`CompiledPlan::serial_steps`].
    pub sstart: usize,
    /// Serial-step window length.
    pub slen: usize,
}

/// The lowered schedule the compiled engine executes.
#[derive(Debug, Clone, Default)]
pub struct CompiledPlan {
    /// Stages in dependency order.
    pub stages: Vec<StageInfo>,
    /// Serial steps, windowed by [`StageInfo`].
    pub serial_steps: Vec<SerialStep>,
    /// Component indices backing the serial steps.
    pub serial_order: Vec<usize>,
}

impl CompiledPlan {
    /// Total kernel units across all stages.
    pub fn kernel_count(&self) -> usize {
        self.stages.iter().map(|s| s.klen).sum()
    }

    /// Stage count.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }
}

/// Below this many kernels in a stage, spawning threads costs more than it
/// saves and the engine evaluates the stage inline.
pub const PAR_MIN_KERNELS: usize = 16;

/// Evaluates one stage's kernel window into `out`, sequentially or across
/// a scoped thread pool. Buffered writes are appended in kernel order
/// (chunks re-joined in spawn order), and kernel output slots are disjoint
/// within a stage, so the commit is identical for every thread count.
///
/// On error returns the failing component index with the error, for the
/// engine to locate with its path table.
pub fn eval_stage(
    kernels: &mut [KernelUnit],
    values: &[Option<Datum>],
    cycle: u64,
    seed: i64,
    threads: usize,
    out: &mut Vec<(usize, Datum)>,
) -> Result<(), (usize, SimError)> {
    if threads <= 1 || kernels.len() < PAR_MIN_KERNELS {
        for unit in kernels {
            unit.kernel
                .eval(values, cycle, seed, out)
                .map_err(|e| (unit.comp, e))?;
        }
        return Ok(());
    }
    let chunk = kernels.len().div_ceil(threads);
    type ChunkResult = Result<Vec<(usize, Datum)>, (usize, SimError)>;
    let results: Vec<ChunkResult> = std::thread::scope(|s| {
        let handles: Vec<_> = kernels
            .chunks_mut(chunk)
            .map(|ch| {
                s.spawn(move || {
                    let mut buf = Vec::new();
                    for unit in ch {
                        unit.kernel
                            .eval(values, cycle, seed, &mut buf)
                            .map_err(|e| (unit.comp, e))?;
                    }
                    Ok(buf)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("kernel worker panicked"))
            .collect()
    });
    for r in results {
        out.extend(r?);
    }
    Ok(())
}

/// A batch of lockstep simulations: one netlist compiled once per lane
/// with a per-lane seed, stepped together cycle by cycle. Lane `k`'s trace
/// is byte-identical to a solo [`Simulator`](crate::Simulator) built with
/// `SimOptions::seed = seeds[k]` — the golden batch snapshots pin this.
///
/// This is the substrate for parameter sweeps: the netlist, schedule, and
/// compiled plan are structurally identical across lanes (only the seed
/// differs), while each lane keeps its own value arena and kernel state.
pub struct BatchSim {
    lanes: Vec<crate::Simulator>,
    seeds: Vec<i64>,
}

impl BatchSim {
    /// Wraps pre-built lanes (use [`crate::build_batch`]).
    pub(crate) fn new(lanes: Vec<crate::Simulator>, seeds: Vec<i64>) -> Self {
        BatchSim { lanes, seeds }
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The per-lane seeds, in lane order.
    pub fn seeds(&self) -> &[i64] {
        &self.seeds
    }

    /// Read access to one lane's simulator.
    pub fn lane(&self, k: usize) -> &crate::Simulator {
        &self.lanes[k]
    }

    /// Mutable access to one lane's simulator.
    pub fn lane_mut(&mut self, k: usize) -> &mut crate::Simulator {
        &mut self.lanes[k]
    }

    /// Steps every lane one cycle, in lane order. A failing lane aborts the
    /// batch step with its lane index attached.
    pub fn step(&mut self) -> Result<(), SimError> {
        for (k, lane) in self.lanes.iter_mut().enumerate() {
            lane.step().map_err(|e| SimError {
                message: format!("lane {k}: {}", e.message),
                span: e.span,
                budget: e.budget,
            })?;
        }
        Ok(())
    }

    /// Runs `n` lockstep cycles.
    pub fn run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }
}

/// Commits one stage's buffered writes into the arena, applying the
/// injected mutation. Returns writes held back by
/// [`KernelMutation::SkipBarrier`] via `held`.
pub fn commit_stage(
    buf: &mut Vec<(usize, Datum)>,
    values: &mut [Option<Datum>],
    mutation: KernelMutation,
    held: &mut VecDeque<(usize, Datum)>,
) {
    match mutation {
        KernelMutation::StaleCommit => {
            buf.pop();
        }
        KernelMutation::SkipBarrier => {
            held.extend(buf.drain(..));
            return;
        }
        KernelMutation::None => {}
    }
    for (slot, v) in buf.drain(..) {
        values[slot] = Some(v);
    }
}
