//! Compiled per-component kernels: devirtualized corelib behaviors.
//!
//! The interpreter walks the static schedule calling `Component::eval`
//! through a vtable, snapshotting outputs for change detection and
//! retracting unwritten lanes — machinery only fixpoint blocks need. For
//! the hot corelib behaviors the netlist already tells us everything at
//! build time, so the compiled engine lowers each such component into a
//! [`Kernel`]: a monomorphized closure over resolved port *slots* in the
//! flat value arena. Kernel `eval` is a pure function of the arena and the
//! kernel's own state that appends `(slot, value)` writes to a buffer; the
//! executor (`exec.rs`) commits buffers at stage barriers, which is what
//! makes multi-threaded stage execution deterministic.
//!
//! Every kernel mirrors its dyn counterpart's observable behavior exactly
//! — same values, same `state_lines()`, same error messages. The
//! three-way equivalence suite (workspace `tests/kernel_equivalence.rs`)
//! and the differential fuzzer keep the two implementations pinned
//! together.

use std::collections::{HashMap, VecDeque};

use lss_netlist::{KernelAluOp, KernelClass, RtvId, SrcSpan};
use lss_types::Datum;

use crate::component::SimError;
use crate::slots::SlotTable;

/// A devirtualized behavior instance: resolved slots plus private state.
#[derive(Debug, Clone)]
pub enum Kernel {
    /// `corelib/source.tar`.
    Source {
        /// Output slots, one per `out` lane.
        out: Vec<usize>,
        /// Counter base (`int` overload).
        start: i64,
        /// Fixed value for non-`int` types; `None` selects the counter.
        konst: Option<Datum>,
    },
    /// `corelib/sink.tar`.
    Sink {
        /// Driving slot per `in` lane (`None` = unconnected).
        inp: Vec<Option<usize>>,
        /// The `count` runtime variable.
        count: RtvId,
    },
    /// `corelib/delay.tar`.
    Delay {
        /// Driving slot of `in[0]`.
        inp0: Option<usize>,
        /// Output slots, one per `out` lane.
        out: Vec<usize>,
        /// Register state.
        state: Datum,
    },
    /// `corelib/latch.tar`.
    Latch {
        /// Driving slot per `in` lane.
        inp: Vec<Option<usize>>,
        /// Output slots, one per `out` lane.
        out: Vec<usize>,
        /// Per-lane register state.
        state: Vec<Option<Datum>>,
    },
    /// `corelib/tee.tar`.
    Tee {
        /// Driving slot of `in[0]`.
        inp0: Option<usize>,
        /// Output slots, one per `out` lane.
        out: Vec<usize>,
    },
    /// `corelib/queue.tar`.
    Queue {
        /// Driving slot per `in` lane.
        inp: Vec<Option<usize>>,
        /// Output slots, one per `out` lane.
        out: Vec<usize>,
        /// Output slots of `credit`.
        credit: Vec<usize>,
        /// Driving slot of `credit_in[0]` (`None` = unconnected).
        credit_in: Option<usize>,
        /// Buffer capacity.
        depth: usize,
        /// FIFO state.
        buf: VecDeque<Datum>,
        /// Protocol group for overflow diagnostics.
        group: String,
        /// Annotation span for overflow diagnostics.
        span: Option<SrcSpan>,
    },
    /// `corelib/alu.tar`.
    Alu {
        /// Driving slot per `a` lane.
        a: Vec<Option<usize>>,
        /// Driving slot per `b` lane.
        b: Vec<Option<usize>>,
        /// Output slots, one per `res` lane.
        res: Vec<usize>,
        /// Operation.
        op: KernelAluOp,
        /// Float overload family member.
        float: bool,
    },
    /// `corelib/issue.tar`.
    Issue {
        /// Driving slot per `in` lane.
        inp: Vec<Option<usize>>,
        /// Output slots of `credit`.
        credit: Vec<usize>,
        /// Output slots, one per `out` lane.
        out: Vec<usize>,
        /// Driving slot per `fu_credit` lane.
        fu_credit: Vec<Option<usize>>,
        /// Driving slot per `complete` lane.
        complete: Vec<Option<usize>>,
        /// Window capacity.
        window_size: usize,
        /// Maximum issues per cycle.
        issue_width: usize,
        /// Strict program-order issue when set.
        in_order: bool,
        /// Per-out-lane accepted op-class codes (0 = any).
        classes: Vec<i64>,
        /// The issue window.
        window: VecDeque<FuInstr>,
        /// In-flight destination registers (register → writers outstanding).
        pending: HashMap<i64, u32>,
        /// Selection computed in `eval`, reused by `end_of_timestep` (the
        /// arena cannot change in between on a lowered component).
        picks: Vec<(usize, u32)>,
        /// Protocol group for overflow diagnostics.
        group: String,
        /// Annotation span for overflow diagnostics.
        span: Option<SrcSpan>,
    },
    /// `corelib/fu.tar`.
    Fu {
        /// Driving slot per `in` lane.
        inp: Vec<Option<usize>>,
        /// Output slots of `credit`.
        credit: Vec<usize>,
        /// Output slots, one per `done` lane.
        done: Vec<usize>,
        /// Driving slot per `grant_in` lane.
        grant_in: Vec<Option<usize>>,
        /// Output slots of `mem_req`.
        mem_req: Vec<usize>,
        /// Driving slot per `mem_resp` lane.
        mem_resp: Vec<Option<usize>>,
        /// Accept a new instruction every cycle when set.
        pipelined: bool,
        /// In-flight capacity.
        max_inflight: usize,
        /// Instruction in the address-generation stage.
        agen: Option<FuInstr>,
        /// Executing instructions with remaining cycle counts.
        in_flight: Vec<(FuInstr, i64)>,
        /// Finished instructions awaiting the (optional) CDB grant.
        done_buf: VecDeque<FuInstr>,
        /// Protocol group for overflow diagnostics.
        group: String,
        /// Annotation span for overflow diagnostics.
        span: Option<SrcSpan>,
    },
}

/// The functional-unit kernel's decoded instruction — the devirtualized
/// twin of the corelib's `Instr`, kept field-for-field identical so the
/// kernel re-serializes instructions in the same canonical order the dyn
/// path does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuInstr {
    pc: i64,
    op: i64,
    dst: i64,
    src1: i64,
    src2: i64,
    lat: i64,
    tgt: i64,
    taken: i64,
}

/// `OpClass::Load` / `OpClass::Store` codes from the corelib instruction
/// model (the only op classes the functional unit inspects).
const OP_LOAD: i64 = 4;
const OP_STORE: i64 = 5;

impl FuInstr {
    fn from_datum(datum: &Datum) -> Option<FuInstr> {
        let f = |name: &str| datum.field(name)?.as_int();
        Some(FuInstr {
            pc: f("pc")?,
            op: f("op")?,
            dst: f("dst")?,
            src1: f("src1")?,
            src2: f("src2")?,
            lat: f("lat")?,
            tgt: f("tgt")?,
            taken: f("taken")?,
        })
    }

    fn to_datum(self) -> Datum {
        Datum::Struct(vec![
            ("pc".into(), Datum::Int(self.pc)),
            ("op".into(), Datum::Int(self.op)),
            ("dst".into(), Datum::Int(self.dst)),
            ("src1".into(), Datum::Int(self.src1)),
            ("src2".into(), Datum::Int(self.src2)),
            ("lat".into(), Datum::Int(self.lat)),
            ("tgt".into(), Datum::Int(self.tgt)),
            ("taken".into(), Datum::Int(self.taken)),
        ])
    }

    fn is_mem(self) -> bool {
        self.op == OP_LOAD || self.op == OP_STORE
    }
}

/// `OpClass` codes the issue window's class constraints reference.
const OP_IALU: i64 = 1;
const OP_IMUL: i64 = 2;
const OP_BRANCH: i64 = 6;

/// Out-of-range op codes behave as `Nop` (code 0), mirroring
/// `OpClass::from_code(..).unwrap_or(Nop)` on the dyn path.
fn op_norm(op: i64) -> i64 {
    if (0..=6).contains(&op) {
        op
    } else {
        0
    }
}

/// Mirrors the corelib's `class_accepts`: which op classes an out lane's
/// class constraint admits (0 = any, 7 = memory, 8 = integer side).
fn class_accepts(class: i64, op: i64) -> bool {
    match class {
        0 => true,
        7 => op == OP_LOAD || op == OP_STORE,
        8 => op == OP_IALU || op == OP_IMUL || op == OP_BRANCH,
        c => c == op,
    }
}

fn reg_ready(pending: &HashMap<i64, u32>, reg: i64) -> bool {
    reg < 0 || !pending.contains_key(&reg)
}

/// The issue selection: (window index, out lane) pairs. Pure function of
/// the settled arena and the window/scoreboard state.
#[allow(clippy::too_many_arguments)]
fn issue_select(
    values: &[Option<Datum>],
    window: &VecDeque<FuInstr>,
    pending: &HashMap<i64, u32>,
    fu_credit: &[Option<usize>],
    out_lanes: usize,
    classes: &[i64],
    issue_width: usize,
    in_order: bool,
) -> Vec<(usize, u32)> {
    let mut lane_used = vec![false; out_lanes];
    let mut lane_credit: Vec<i64> = (0..out_lanes)
        .map(|lane| {
            match fu_credit
                .get(lane)
                .copied()
                .flatten()
                .and_then(|s| values[s].as_ref())
            {
                Some(Datum::Int(v)) => *v,
                _ => 0,
            }
        })
        .collect();
    let mut picks = Vec::new();
    for (i, instr) in window.iter().enumerate() {
        if picks.len() >= issue_width {
            break;
        }
        let op = op_norm(instr.op);
        // RAW on sources; conservative WAW on destination.
        let ready = reg_ready(pending, instr.src1)
            && reg_ready(pending, instr.src2)
            && reg_ready(pending, instr.dst);
        let mut placed = false;
        if ready {
            for (lane, used) in lane_used.iter_mut().enumerate() {
                if !*used
                    && lane_credit[lane] > 0
                    && class_accepts(*classes.get(lane).unwrap_or(&0), op)
                {
                    *used = true;
                    lane_credit[lane] -= 1;
                    picks.push((i, lane as u32));
                    placed = true;
                    break;
                }
            }
        }
        if in_order && !placed {
            break; // younger instructions cannot bypass the stalled head
        }
    }
    picks
}

fn fu_can_accept(
    agen: &Option<FuInstr>,
    in_flight: &[(FuInstr, i64)],
    done_buf: &VecDeque<FuInstr>,
    pipelined: bool,
    max_inflight: usize,
) -> bool {
    if agen.is_some() || done_buf.len() >= max_inflight {
        return false;
    }
    if pipelined {
        in_flight.len() < max_inflight
    } else {
        in_flight.is_empty()
    }
}

/// A kernel bound to its component index (for error location and
/// `end_of_timestep` state access).
#[derive(Debug, Clone)]
pub struct KernelUnit {
    /// The component this kernel executes.
    pub comp: usize,
    /// The devirtualized behavior.
    pub kernel: Kernel,
}

fn read(values: &[Option<Datum>], slot: Option<usize>) -> Option<Datum> {
    values[slot?].clone()
}

fn read_lane(values: &[Option<Datum>], row: &[Option<usize>], lane: usize) -> Option<Datum> {
    values[row.get(lane).copied().flatten()?].clone()
}

/// Unconnected-port semantics for optional integer inputs, mirroring the
/// corelib's `read_int_or`.
fn read_int_or(values: &[Option<Datum>], slot: Option<usize>, default: i64) -> i64 {
    match slot.map(|s| &values[s]) {
        Some(Some(Datum::Int(v))) => *v,
        _ => default,
    }
}

fn queue_emit_count(
    values: &[Option<Datum>],
    buf_len: usize,
    out_lanes: usize,
    credit_in: Option<usize>,
) -> usize {
    let allowed = read_int_or(values, credit_in, out_lanes as i64).max(0) as usize;
    buf_len.min(out_lanes).min(allowed)
}

impl Kernel {
    /// Combinational evaluation: reads the settled arena, appends buffered
    /// `(slot, value)` writes. Never touches the arena directly — stage
    /// peers run concurrently over disjoint `&mut` chunks and the executor
    /// commits `out` at the stage barrier. `&mut self` exists only so a
    /// kernel may cache work for its own `end_of_timestep` (the issue
    /// window's selection, for example) — a kernel runs exactly once per
    /// cycle, after its combinational inputs are final, so such caching is
    /// sound on the non-cyclic components the engine lowers.
    pub fn eval(
        &mut self,
        values: &[Option<Datum>],
        cycle: u64,
        seed: i64,
        out: &mut Vec<(usize, Datum)>,
    ) -> Result<(), SimError> {
        match self {
            Kernel::Source {
                out: lanes,
                start,
                konst,
            } => {
                let value = match konst {
                    Some(d) => d.clone(),
                    None => Datum::Int(*start + seed + cycle as i64),
                };
                for &s in lanes.iter() {
                    out.push((s, value.clone()));
                }
            }
            Kernel::Sink { .. } => {}
            Kernel::Delay {
                out: lanes, state, ..
            } => {
                for &s in lanes.iter() {
                    out.push((s, state.clone()));
                }
            }
            Kernel::Latch {
                out: lanes, state, ..
            } => {
                for (lane, &s) in lanes.iter().enumerate() {
                    if let Some(v) = state.get(lane).cloned().flatten() {
                        out.push((s, v));
                    }
                }
            }
            Kernel::Tee { inp0, out: lanes } => {
                if let Some(v) = read(values, *inp0) {
                    for &s in lanes.iter() {
                        out.push((s, v.clone()));
                    }
                }
            }
            Kernel::Queue {
                out: lanes,
                credit,
                credit_in,
                depth,
                buf,
                ..
            } => {
                let emit = queue_emit_count(values, buf.len(), lanes.len(), *credit_in);
                for (lane, item) in buf.iter().take(emit).enumerate() {
                    out.push((lanes[lane], item.clone()));
                }
                // Credit reflects space at the start of the cycle.
                let free = (*depth - buf.len()) as i64;
                for &s in credit.iter() {
                    out.push((s, Datum::Int(free)));
                }
            }
            Kernel::Alu {
                a,
                b,
                res,
                op,
                float,
            } => {
                for (lane, &rs) in res.iter().enumerate() {
                    let (Some(x), Some(y)) =
                        (read_lane(values, a, lane), read_lane(values, b, lane))
                    else {
                        continue;
                    };
                    let result = if *float {
                        let (Some(x), Some(y)) = (x.as_float(), y.as_float()) else {
                            return Err(SimError::new("float ALU received non-float data"));
                        };
                        Datum::Float(match op {
                            KernelAluOp::Add => x + y,
                            KernelAluOp::Sub => x - y,
                            KernelAluOp::Mul => x * y,
                        })
                    } else {
                        let (Some(x), Some(y)) = (x.as_int(), y.as_int()) else {
                            return Err(SimError::new("int ALU received non-int data"));
                        };
                        Datum::Int(match op {
                            KernelAluOp::Add => x.wrapping_add(y),
                            KernelAluOp::Sub => x.wrapping_sub(y),
                            KernelAluOp::Mul => x.wrapping_mul(y),
                        })
                    };
                    out.push((rs, result));
                }
            }
            Kernel::Issue {
                credit,
                out: out_row,
                fu_credit,
                window_size,
                issue_width,
                in_order,
                classes,
                window,
                pending,
                picks,
                ..
            } => {
                *picks = issue_select(
                    values,
                    window,
                    pending,
                    fu_credit,
                    out_row.len(),
                    classes,
                    *issue_width,
                    *in_order,
                );
                for &(i, lane) in picks.iter() {
                    out.push((out_row[lane as usize], window[i].to_datum()));
                }
                if let Some(&s) = credit.first() {
                    let free = (*window_size - window.len()) as i64;
                    out.push((s, Datum::Int(free)));
                }
            }
            Kernel::Fu {
                credit,
                done,
                mem_req,
                pipelined,
                max_inflight,
                agen,
                in_flight,
                done_buf,
                ..
            } => {
                // Address generation: memory ops probe the cache one cycle
                // after acceptance.
                if let Some(instr) = agen {
                    if instr.is_mem() {
                        if let Some(&s) = mem_req.first() {
                            out.push((s, Datum::Int(instr.tgt)));
                        }
                    }
                }
                if let Some(front) = done_buf.front() {
                    for &s in done.iter() {
                        out.push((s, front.to_datum()));
                    }
                }
                if let Some(&s) = credit.first() {
                    let ok = fu_can_accept(agen, in_flight, done_buf, *pipelined, *max_inflight);
                    out.push((s, Datum::Int(ok as i64)));
                }
            }
        }
        Ok(())
    }

    /// Synchronous state update after settle, reading committed arena
    /// values. `rtvs` is the owning component's runtime-variable table
    /// (kernels with observable counters, like the sink, keep them visible
    /// to `state_lines()` through it).
    pub fn end_of_timestep(
        &mut self,
        values: &[Option<Datum>],
        rtvs: &mut SlotTable,
    ) -> Result<(), SimError> {
        match self {
            Kernel::Sink { inp, count } => {
                let mut c = rtvs.value(count.index()).as_int().unwrap_or(0);
                for s in inp.iter() {
                    if s.is_some_and(|s| values[s].is_some()) {
                        c += 1;
                    }
                }
                rtvs.set(count.index(), Datum::Int(c));
            }
            Kernel::Delay { inp0, state, .. } => {
                if let Some(v) = read(values, *inp0) {
                    *state = v;
                }
            }
            Kernel::Latch { inp, out, state } => {
                let lanes = inp.len().max(out.len());
                state.resize(lanes, None);
                for (lane, slot) in state.iter_mut().enumerate() {
                    *slot = read_lane(values, inp, lane);
                }
            }
            Kernel::Queue {
                inp,
                out,
                credit_in,
                depth,
                buf,
                group,
                span,
                ..
            } => {
                // Pop what was consumed this cycle, then accept arrivals;
                // overflow means the producer violated credits.
                let emitted = queue_emit_count(values, buf.len(), out.len(), *credit_in);
                buf.drain(..emitted);
                for s in inp.iter() {
                    if let Some(v) = s.and_then(|s| values[s].clone()) {
                        if buf.len() >= *depth {
                            return Err(SimError::protocol_violation(
                                &*group,
                                "queue overflow: producer sent beyond the advertised credit",
                                *span,
                            ));
                        }
                        buf.push_back(v);
                    }
                }
            }
            Kernel::Issue {
                inp,
                complete,
                window_size,
                window,
                pending,
                picks,
                group,
                span,
                ..
            } => {
                // The selection was computed in this cycle's eval against
                // the same (final) arena; reuse it instead of re-selecting.
                let picks = std::mem::take(picks);
                // Mark issued destinations pending, then remove from the
                // window back-to-front so indices stay valid.
                let mut indices: Vec<usize> = Vec::with_capacity(picks.len());
                for (i, _) in &picks {
                    let instr = window[*i];
                    if instr.dst >= 0 {
                        *pending.entry(instr.dst).or_insert(0) += 1;
                    }
                    indices.push(*i);
                }
                indices.sort_unstable_by(|a, b| b.cmp(a));
                for i in indices {
                    window.remove(i);
                }
                // Completions release destinations.
                for s in complete.iter() {
                    let Some(d) = s.and_then(|s| values[s].as_ref()) else {
                        continue;
                    };
                    let instr = FuInstr::from_datum(d).ok_or_else(|| {
                        SimError::new(format!("malformed instruction datum: {d}"))
                    })?;
                    if instr.dst >= 0 {
                        if let Some(count) = pending.get_mut(&instr.dst) {
                            *count -= 1;
                            if *count == 0 {
                                pending.remove(&instr.dst);
                            }
                        }
                    }
                }
                // Accept arrivals.
                for s in inp.iter() {
                    let Some(d) = s.and_then(|s| values[s].as_ref()) else {
                        continue;
                    };
                    let instr = FuInstr::from_datum(d).ok_or_else(|| {
                        SimError::new(format!("malformed instruction datum: {d}"))
                    })?;
                    if window.len() >= *window_size {
                        return Err(SimError::protocol_violation(
                            &*group,
                            "issue window overflow: producer sent beyond the advertised credit",
                            *span,
                        ));
                    }
                    window.push_back(instr);
                }
            }
            Kernel::Fu {
                inp,
                grant_in,
                mem_resp,
                agen,
                in_flight,
                done_buf,
                group,
                span,
                ..
            } => {
                // Retire the granted result (or unconditionally without an
                // arbiter).
                if !done_buf.is_empty() {
                    let granted = if grant_in.is_empty() {
                        true
                    } else {
                        matches!(
                            read_lane(values, grant_in, 0),
                            Some(Datum::Int(v)) if v != 0
                        )
                    };
                    if granted {
                        done_buf.pop_front();
                    }
                }
                // Move the agen-stage instruction into execution, with its
                // latency possibly provided by the attached memory
                // hierarchy; then advance, so a 1-cycle operation completes
                // in the same step it enters.
                if let Some(instr) = agen.take() {
                    let lat = if instr.is_mem() && !mem_resp.is_empty() {
                        match read_lane(values, mem_resp, 0) {
                            Some(Datum::Int(l)) => l.max(1),
                            _ => instr.lat.max(1),
                        }
                    } else {
                        instr.lat.max(1)
                    };
                    in_flight.push((instr, lat));
                }
                let mut finished = Vec::new();
                for (i, (_, remaining)) in in_flight.iter_mut().enumerate() {
                    *remaining -= 1;
                    if *remaining <= 0 {
                        finished.push(i);
                    }
                }
                for &i in finished.iter().rev() {
                    let (instr, _) = in_flight.remove(i);
                    done_buf.push_back(instr);
                }
                // Accept a new instruction.
                if let Some(d) = read_lane(values, inp, 0) {
                    let instr = FuInstr::from_datum(&d).ok_or_else(|| {
                        SimError::new(format!("malformed instruction datum: {d}"))
                    })?;
                    if agen.is_some() {
                        return Err(SimError::protocol_violation(
                            &*group,
                            "functional unit overflow: producer sent beyond the advertised credit",
                            *span,
                        ));
                    }
                    *agen = Some(instr);
                }
            }
            Kernel::Source { .. } | Kernel::Tee { .. } | Kernel::Alu { .. } => {}
        }
        Ok(())
    }
}

/// Resolves a behavior's [`KernelClass`] self-description against the
/// component's slot mapping. Returns `None` (leaving the component on the
/// dyn path) when a port index is out of range — a misdescribed class must
/// never crash the build.
pub fn lower(
    comp: usize,
    class: &KernelClass,
    out_slots: &[Vec<usize>],
    in_slots: &[Vec<Option<usize>>],
    rtvs: &mut SlotTable,
) -> Option<KernelUnit> {
    let out_row = |p: usize| out_slots.get(p).cloned();
    let in_row = |p: usize| in_slots.get(p).cloned();
    let kernel = match class {
        KernelClass::Source { out, start, konst } => Kernel::Source {
            out: out_row(*out)?,
            start: *start,
            konst: konst.clone(),
        },
        KernelClass::Sink { inp } => Kernel::Sink {
            inp: in_row(*inp)?,
            count: RtvId::from_index(rtvs.ensure("count", Datum::Int(0))),
        },
        KernelClass::Delay { inp, out, init } => Kernel::Delay {
            inp0: in_row(*inp)?.first().copied().flatten(),
            out: out_row(*out)?,
            state: init.clone(),
        },
        KernelClass::Latch { inp, out } => Kernel::Latch {
            inp: in_row(*inp)?,
            out: out_row(*out)?,
            state: Vec::new(),
        },
        KernelClass::Tee { inp, out } => Kernel::Tee {
            inp0: in_row(*inp)?.first().copied().flatten(),
            out: out_row(*out)?,
        },
        KernelClass::Queue {
            inp,
            out,
            credit,
            credit_in,
            depth,
            group,
            span,
        } => Kernel::Queue {
            inp: in_row(*inp)?,
            out: out_row(*out)?,
            credit: out_row(*credit)?,
            credit_in: in_row(*credit_in)?.first().copied().flatten(),
            depth: *depth,
            buf: VecDeque::new(),
            group: group.clone(),
            span: *span,
        },
        KernelClass::Alu {
            a,
            b,
            res,
            op,
            float,
        } => Kernel::Alu {
            a: in_row(*a)?,
            b: in_row(*b)?,
            res: out_row(*res)?,
            op: *op,
            float: *float,
        },
        KernelClass::Issue {
            inp,
            credit,
            out,
            fu_credit,
            complete,
            window_size,
            issue_width,
            in_order,
            classes,
            group,
            span,
        } => Kernel::Issue {
            inp: in_row(*inp)?,
            credit: out_row(*credit)?,
            out: out_row(*out)?,
            fu_credit: in_row(*fu_credit)?,
            complete: in_row(*complete)?,
            window_size: *window_size,
            issue_width: *issue_width,
            in_order: *in_order,
            classes: classes.clone(),
            window: VecDeque::new(),
            pending: HashMap::new(),
            picks: Vec::new(),
            group: group.clone(),
            span: *span,
        },
        KernelClass::Fu {
            inp,
            credit,
            done,
            grant_in,
            mem_req,
            mem_resp,
            pipelined,
            max_inflight,
            group,
            span,
        } => Kernel::Fu {
            inp: in_row(*inp)?,
            credit: out_row(*credit)?,
            done: out_row(*done)?,
            grant_in: in_row(*grant_in)?,
            mem_req: out_row(*mem_req)?,
            mem_resp: in_row(*mem_resp)?,
            pipelined: *pipelined,
            max_inflight: *max_inflight,
            agen: None,
            in_flight: Vec::new(),
            done_buf: VecDeque::new(),
            group: group.clone(),
            span: *span,
        },
    };
    Some(KernelUnit { comp, kernel })
}
