//! Waveform output from the firing log: IEEE-1364 VCD for external viewers
//! and a compact ASCII renderer for terminals — the "visualization" use of
//! the paper's instrumentation layer (§3, §4.5).

use std::collections::BTreeMap;
use std::fmt::Write;

use lss_types::Datum;

use crate::engine::FiringRecord;

/// A signal key: instance path, port, lane.
fn signal_name(record: &FiringRecord) -> String {
    format!("{}.{}[{}]", record.path, record.port, record.lane)
}

/// Renders a VCD (value change dump) document from a firing log.
///
/// Integers and booleans become scalar/vector signals; any other datum is
/// dumped as a real-converted value when possible and skipped otherwise.
/// `timescale` is cycles-per-tick text, e.g. `"1ns"`.
pub fn to_vcd(log: &[FiringRecord], timescale: &str) -> String {
    // Collect signals in stable order.
    let mut signals: BTreeMap<String, char> = BTreeMap::new();
    for record in log {
        let name = signal_name(record);
        if !signals.contains_key(&name) {
            // VCD identifiers: printable ASCII starting at '!'.
            let id = char::from(b'!' + (signals.len() as u8 % 94));
            signals.insert(name, id);
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "$timescale {timescale} $end");
    let _ = writeln!(out, "$scope module model $end");
    for (name, id) in &signals {
        let _ = writeln!(out, "$var wire 64 {id} {} $end", name.replace(' ', "_"));
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Group by cycle.
    let mut by_cycle: BTreeMap<u64, Vec<&FiringRecord>> = BTreeMap::new();
    for record in log {
        by_cycle.entry(record.cycle).or_default().push(record);
    }
    for (cycle, records) in by_cycle {
        let _ = writeln!(out, "#{cycle}");
        for record in records {
            let id = signals[&signal_name(record)];
            match &record.value {
                Datum::Int(v) => {
                    let _ = writeln!(out, "b{:b} {id}", *v as u64);
                }
                Datum::Bool(b) => {
                    let _ = writeln!(out, "{}{id}", if *b { 1 } else { 0 });
                }
                Datum::Float(v) => {
                    let _ = writeln!(out, "r{v} {id}");
                }
                other => {
                    // Structs/arrays: dump a hash-free compact numeric view
                    // where possible (first int field), else skip.
                    if let Some(v) = first_int(other) {
                        let _ = writeln!(out, "b{:b} {id}", v as u64);
                    }
                }
            }
        }
    }
    out
}

fn first_int(datum: &Datum) -> Option<i64> {
    match datum {
        Datum::Int(v) => Some(*v),
        Datum::Bool(b) => Some(*b as i64),
        Datum::Array(items) => items.iter().find_map(first_int),
        Datum::Struct(fields) => fields.iter().find_map(|(_, v)| first_int(v)),
        _ => None,
    }
}

/// Renders the firing log as an ASCII waveform table: one row per signal,
/// one column per cycle; `.` marks "no value this cycle".
pub fn to_ascii(log: &[FiringRecord], max_cycles: usize) -> String {
    let mut signals: BTreeMap<String, BTreeMap<u64, String>> = BTreeMap::new();
    let mut last_cycle = 0u64;
    for record in log {
        last_cycle = last_cycle.max(record.cycle);
        signals
            .entry(signal_name(record))
            .or_default()
            .insert(record.cycle, compact(&record.value));
    }
    let cycles = ((last_cycle + 1) as usize).min(max_cycles);
    let name_width = signals.keys().map(String::len).max().unwrap_or(6).max(6);
    // Column width per cycle: widest value in that column (min 2).
    let mut col_width = vec![2usize; cycles];
    for values in signals.values() {
        for (&cycle, v) in values {
            if (cycle as usize) < cycles {
                col_width[cycle as usize] = col_width[cycle as usize].max(v.len());
            }
        }
    }
    let mut out = String::new();
    let _ = write!(out, "{:<name_width$} |", "cycle");
    for (c, w) in col_width.iter().enumerate() {
        let _ = write!(out, " {c:>w$}");
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "{}-+-{}",
        "-".repeat(name_width),
        "-".repeat(out.len().saturating_sub(name_width + 4))
    );
    for (name, values) in &signals {
        let _ = write!(out, "{name:<name_width$} |");
        for (c, w) in col_width.iter().enumerate() {
            match values.get(&(c as u64)) {
                Some(v) => {
                    let _ = write!(out, " {v:>w$}");
                }
                None => {
                    let _ = write!(out, " {:>w$}", ".");
                }
            }
        }
        out.push('\n');
    }
    out
}

fn compact(datum: &Datum) -> String {
    match datum {
        Datum::Int(v) => v.to_string(),
        Datum::Bool(b) => if *b { "1" } else { "0" }.to_string(),
        Datum::Float(v) => format!("{v:.1}"),
        Datum::Str(s) => format!("\"{}\"", &s[..s.len().min(4)]),
        other => first_int(other)
            .map(|v| format!("#{v}"))
            .unwrap_or_else(|| "∗".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycle: u64, path: &str, port: &str, lane: u32, value: Datum) -> FiringRecord {
        FiringRecord {
            cycle,
            path: path.into(),
            port: port.into(),
            lane,
            value,
        }
    }

    #[test]
    fn vcd_has_header_and_changes() {
        let log = vec![
            record(0, "a", "out", 0, Datum::Int(5)),
            record(1, "a", "out", 0, Datum::Int(6)),
            record(1, "b", "ok", 0, Datum::Bool(true)),
        ];
        let vcd = to_vcd(&log, "1ns");
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$var wire 64 ! a.out[0] $end"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("b101 !"));
        assert!(vcd.contains("#1"));
        assert!(vcd.contains("b110 !"));
        assert!(
            vcd.contains("1\""),
            "bool change should use scalar form: {vcd}"
        );
    }

    #[test]
    fn vcd_structs_use_first_int_field() {
        let log = vec![record(
            2,
            "f",
            "out",
            0,
            Datum::Struct(vec![("pc".into(), Datum::Int(3))]),
        )];
        let vcd = to_vcd(&log, "1ns");
        assert!(vcd.contains("b11 !"));
    }

    #[test]
    fn ascii_renders_grid() {
        let log = vec![
            record(0, "a", "out", 0, Datum::Int(7)),
            record(2, "a", "out", 0, Datum::Int(9)),
        ];
        let text = to_ascii(&log, 10);
        assert!(text.contains("a.out[0]"));
        assert!(text.contains('7'));
        assert!(text.contains('9'));
        assert!(text.contains('.'), "missing-value marker expected:\n{text}");
    }

    #[test]
    fn ascii_caps_cycles() {
        let log = vec![
            record(0, "a", "out", 0, Datum::Int(1)),
            record(50, "a", "out", 0, Datum::Int(2)),
        ];
        let text = to_ascii(&log, 5);
        assert!(!text.contains(" 50"), "cycle 50 must be cut off:\n{text}");
    }

    #[test]
    fn empty_log_is_fine() {
        assert!(to_vcd(&[], "1ns").contains("$enddefinitions"));
        let ascii = to_ascii(&[], 5);
        assert!(ascii.contains("cycle"));
    }
}
