//! Simulation substrate for elaborated LSS netlists.
//!
//! This crate is the execution half of the Liberty Simulation Environment
//! reproduction: it turns a typed [`lss_netlist::Netlist`] into a runnable
//! clock-accurate simulator.
//!
//! * [`component`] — the [`Component`] behavior trait, [`CompSpec`]
//!   configuration, and the [`ComponentRegistry`] keyed by `tar_file`
//!   strings (our substitute for the paper's BSL `.tar` payloads);
//! * [`bsl`] — the interpreter for userpoint and collector BSL code;
//! * [`slots`] — flat name/value tables ([`SlotTable`]) that back runtime
//!   variables and collector state without per-cycle hashing;
//! * [`sched`] — static concurrency scheduling (topological order with
//!   fixpoint blocks for genuine combinational cycles), the LSE
//!   optimization of \[12\];
//! * [`engine`] — the cycle engine with both the static scheduler and a
//!   SystemC-style dynamic (worklist fixpoint) baseline, plus the
//!   aspect-oriented event/collector instrumentation of §4.5;
//! * [`kernel`] — devirtualized corelib behaviors for the compiled engine:
//!   monomorphized slot-level kernels lowered from
//!   [`lss_netlist::KernelClass`] metadata;
//! * [`exec`] — the compiled engine's staged plan, barrier-committed
//!   (optionally multi-threaded) settle loop, injected kernel mutations
//!   for the differential harness, and lockstep batch simulation;
//! * [`wave`] — VCD and ASCII waveform output from the firing log.

#![warn(missing_docs)]

pub mod bsl;
pub mod component;
pub mod engine;
pub mod exec;
pub mod kernel;
pub mod sched;
pub mod slots;
pub mod wave;

pub use bsl::{compile_bsl, datum_binary, exec, BslEnv, BslProgram};
pub use component::{
    BuildError, CompCtx, CompSpec, Component, ComponentRegistry, PortSpec, SimError,
};
pub use engine::{
    build, build_batch, comb_info, Engine, FiringRecord, Scheduler, SimOptions, SimStats, Simulator,
};
pub use exec::{BatchSim, CompiledPlan, KernelMutation};
pub use kernel::{Kernel, KernelUnit};
pub use sched::{schedule, Schedule, ScheduleStep};
pub use slots::SlotTable;
pub use wave::{to_ascii, to_vcd};
