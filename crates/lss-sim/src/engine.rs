//! The simulator: builds an executable model from a typed netlist and runs
//! it cycle by cycle.
//!
//! Each cycle has two phases, matching synchronous hardware (§2):
//!
//! 1. **Combinational settle** — every leaf component's `eval` computes its
//!    outputs from this cycle's inputs and current state. The *static*
//!    scheduler runs components once each in precomputed topological order
//!    (iterating genuine combinational cycles to a fixpoint); the *dynamic*
//!    scheduler is the SystemC-style baseline that re-evaluates components
//!    from a worklist until no output changes.
//! 2. **`end_of_timestep`** — synchronous state update, plus the
//!    system-defined `end_of_timestep` userpoint on every instance (§4.3).
//!
//! Instrumentation (§4.5): after the settle phase, every output port
//! instance that carries a value emits the implicit `<port>_fire` event;
//! declared events are emitted by behaviors via [`CompCtx::emit_by_id`].
//! Events are routed to the model's collectors, whose BSL bodies accumulate
//! statistics in per-collector state tables.
//!
//! # Data layout
//!
//! Everything touched per cycle is a dense vector indexed by integers:
//! signal values live in one flat slot array; runtime variables and
//! collector accumulators are [`SlotTable`]s addressed by [`RtvId`]-style
//! indices; event routing is precomputed at build time into
//! per-component listener tables (`fire_listeners` by output port,
//! `event_listeners` by declared [`EventId`]). Strings appear only at the
//! build boundary (resolving netlist [`lss_netlist::Symbol`]s) and in
//! error/report paths — the per-cycle path performs no string hashing,
//! comparison, or allocation for name lookup.

use std::collections::HashMap;
use std::collections::VecDeque;

use lss_netlist::{
    ActionDir, Dir, EventId, InstanceId, InstanceKind, Netlist, Role, RtvId, SrcSpan, Template,
    UserpointId,
};
use lss_types::{Budget, Datum, Ty};

use lss_analyze::{leaf_dep_graph, CombInfo};
use lss_netlist::PortId;

use crate::bsl::{compile_bsl, exec, BslEnv, BslProgram};
use crate::component::{
    BuildError, CompCtx, CompSpec, Component, ComponentRegistry, PortSpec, SimError,
};
use crate::exec::{
    commit_stage, eval_stage, BatchSim, CompiledPlan, KernelMutation, SerialStep, StageInfo,
};
use crate::kernel::{lower, KernelUnit};
use crate::sched::{Schedule, ScheduleStep};
use crate::slots::SlotTable;

/// Which combinational scheduler to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Precomputed topological order (LSE's approach \[12\]).
    #[default]
    Static,
    /// Worklist fixpoint (structural-OOP / SystemC-style baseline).
    Dynamic,
}

/// Which settle-loop engine executes the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Interpret boxed `Component`s through the vtable (the baseline; obeys
    /// [`SimOptions::scheduler`]).
    #[default]
    Interp,
    /// Lower the condensation into per-SCC compiled kernels executed stage
    /// by stage with barrier-committed writes (implies static scheduling;
    /// behaviors without a lowering fall back to the dyn path inline).
    Compiled,
}

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Scheduler choice.
    pub scheduler: Scheduler,
    /// Settle-loop engine choice.
    pub engine: Engine,
    /// Worker threads for the compiled engine's stage execution (1 =
    /// in-line). Traces are byte-identical for every value: kernels write
    /// through per-stage buffers committed at the stage barrier.
    pub threads: usize,
    /// Simulation seed, visible to behaviors via [`CompCtx::seed`] (the
    /// corelib source folds it into its counter). Batch lanes get one seed
    /// each; seed 0 reproduces unseeded runs exactly.
    pub seed: i64,
    /// Injected compiled-engine bug for differential testing
    /// ([`KernelMutation::None`] for correct execution).
    pub kernel_mutation: KernelMutation,
    /// Iteration cap for combinational-cycle fixpoints.
    pub max_fixpoint_iters: usize,
    /// Step budget per BSL invocation.
    pub bsl_max_steps: u64,
    /// Validate every value sent on a port against the port's inferred
    /// type, failing the cycle on a violation. Catches behaviors that
    /// disagree with the static types; costs a structural check per send.
    /// Disables kernel lowering (the check lives on the dyn write path).
    pub check_types: bool,
    /// Enforce declared port protocols (interface automata) at runtime,
    /// failing the cycle on a violated transition. The dynamic counterpart
    /// of the static `LSS105`/`LSS107` pass: role-flipped groups fail on
    /// their first send, concrete-credit producers fail when they exceed
    /// their granted budget, and custom automata fail on any move their
    /// declared transitions do not enable. Adaptive credit and handshake
    /// templates are left to the behaviors and the static checker (strict
    /// runtime stepping would reject legal pipelined traffic).
    pub check_protocols: bool,
    /// Cooperative resource budget. [`Simulator::step`] polls the cycle cap
    /// (`LSS408`) every cycle and the wall-clock deadline (`LSS401`) through
    /// the budget's own stride, so a runaway `--run` or daemon `simulate`
    /// request stops with a typed budget error instead of hanging. The
    /// default unlimited handle reduces every check to a `None` compare.
    pub budget: Budget,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            scheduler: Scheduler::Static,
            engine: Engine::Interp,
            threads: 1,
            seed: 0,
            kernel_mutation: KernelMutation::None,
            max_fixpoint_iters: 64,
            bsl_max_steps: 1_000_000,
            check_types: false,
            check_protocols: false,
            budget: Budget::unlimited(),
        }
    }
}

/// Aggregate simulation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles executed (incremented once per completed [`Simulator::step`]).
    pub cycles: u64,
    /// Total component `eval` invocations. This is the static-vs-dynamic
    /// scheduler comparison metric: the static schedule evaluates each
    /// component once per cycle (plus fixpoint iterations inside genuine
    /// combinational cycles), while the dynamic baseline re-evaluates from
    /// a worklist until quiescence.
    pub comp_evals: u64,
    /// Collector invocations: one per (event, listening collector) pair.
    pub events_dispatched: u64,
    /// Output port instances observed carrying a value after settle, summed
    /// over cycles.
    pub port_firings: u64,
}

/// A compiled userpoint as the engine runs it: resolved argument names and
/// the BSL program, addressed by [`UserpointId`].
struct UserpointRt {
    name: String,
    arg_names: Vec<String>,
    program: BslProgram,
}

struct CompState {
    /// Runtime variables, indexed by [`RtvId`]; model-declared slots first,
    /// behavior-created slots appended.
    rtvs: SlotTable,
    /// Userpoints in declaration order, indexed by [`UserpointId`].
    userpoints: Vec<UserpointRt>,
    /// Declared event names, indexed by [`EventId`] (resolved from netlist
    /// symbols at build time; used for name resolution and errors only).
    event_names: Vec<String>,
    /// Events emitted by the most recent `eval` this cycle.
    eval_events: Vec<(EventId, Vec<Datum>)>,
    /// Events emitted during `end_of_timestep`.
    eot_events: Vec<(EventId, Vec<Datum>)>,
    /// True while `end_of_timestep` is running (routes `emit`).
    in_eot: bool,
    bsl_max_steps: u64,
    /// Cached ids of the system userpoints, resolved once at build.
    init_up: Option<UserpointId>,
    eot_up: Option<UserpointId>,
}

struct Core {
    cycle: u64,
    seed: i64,
    values: Vec<Option<Datum>>,
    /// Per-slot flag: written during the current component evaluation.
    written: Vec<bool>,
    states: Vec<CompState>,
    /// comp -> port -> lane -> global slot (output ports only).
    out_slots: Vec<Vec<Vec<usize>>>,
    /// comp -> port -> lane -> driving slot (input ports only).
    in_slots: Vec<Vec<Vec<Option<usize>>>>,
    /// comp -> port -> width.
    widths: Vec<Vec<u32>>,
    /// comp -> port -> (name, inferred type); populated only when checking.
    port_types: Vec<Vec<Option<(String, Ty)>>>,
    /// First type violation observed during the current eval, if any.
    type_violation: Option<String>,
}

struct Ctx<'a> {
    core: &'a mut Core,
    comp: usize,
}

impl CompCtx for Ctx<'_> {
    fn cycle(&self) -> u64 {
        self.core.cycle
    }

    fn seed(&self) -> i64 {
        self.core.seed
    }

    fn input(&self, port: usize, lane: u32) -> Option<Datum> {
        let slot = self.core.in_slots[self.comp]
            .get(port)?
            .get(lane as usize)?
            .as_ref()?;
        self.core.values[*slot].clone()
    }

    fn set_output(&mut self, port: usize, lane: u32, value: Datum) {
        let Some(&slot) = self.core.out_slots[self.comp]
            .get(port)
            .and_then(|p| p.get(lane as usize))
        else {
            // Writing an unconnected lane is a no-op (unconnected-port
            // semantics: nobody is listening).
            return;
        };
        if let Some(Some((name, ty))) = self
            .core
            .port_types
            .get(self.comp)
            .and_then(|ps| ps.get(port))
        {
            if !value.conforms_to(ty) && self.core.type_violation.is_none() {
                self.core.type_violation =
                    Some(format!("port `{name}` expects {ty}, behavior sent {value}"));
            }
        }
        self.core.values[slot] = Some(value);
        self.core.written[slot] = true;
    }

    fn output(&self, port: usize, lane: u32) -> Option<Datum> {
        let slot = *self.core.out_slots[self.comp]
            .get(port)?
            .get(lane as usize)?;
        self.core.values[slot].clone()
    }

    fn width(&self, port: usize) -> u32 {
        self.core.widths[self.comp].get(port).copied().unwrap_or(0)
    }

    fn rtv_id(&self, name: &str) -> Option<RtvId> {
        self.core.states[self.comp]
            .rtvs
            .index_of(name)
            .map(RtvId::from_index)
    }

    fn ensure_rtv(&mut self, name: &str, default: Datum) -> RtvId {
        RtvId::from_index(self.core.states[self.comp].rtvs.ensure(name, default))
    }

    fn rtv_by_id(&self, id: RtvId) -> Datum {
        self.core.states[self.comp].rtvs.value(id.index()).clone()
    }

    fn set_rtv_by_id(&mut self, id: RtvId, value: Datum) {
        self.core.states[self.comp].rtvs.set(id.index(), value);
    }

    fn userpoint_id(&self, name: &str) -> Option<UserpointId> {
        self.core.states[self.comp]
            .userpoints
            .iter()
            .position(|up| up.name == name)
            .map(UserpointId::from_index)
    }

    fn call_userpoint_by_id(&mut self, id: UserpointId, args: &[Datum]) -> Result<Datum, SimError> {
        let state = &mut self.core.states[self.comp];
        let Some(up) = state.userpoints.get(id.index()) else {
            return Err(SimError::new(format!(
                "userpoint {id} does not exist on this instance"
            )));
        };
        if up.arg_names.len() != args.len() {
            return Err(SimError::new(format!(
                "userpoint `{}` expects {} argument(s), got {}",
                up.name,
                up.arg_names.len(),
                args.len()
            )));
        }
        let mut env = BslEnv::bound(&up.arg_names, args.to_vec(), &mut state.rtvs);
        match exec(&up.program, &mut env, state.bsl_max_steps)? {
            Some(v) => Ok(v),
            None => Ok(Datum::Int(0)),
        }
    }

    fn event_id(&self, name: &str) -> Option<EventId> {
        self.core.states[self.comp]
            .event_names
            .iter()
            .position(|e| e == name)
            .map(EventId::from_index)
    }

    fn emit_by_id(&mut self, event: EventId, args: Vec<Datum>) {
        let state = &mut self.core.states[self.comp];
        if state.in_eot {
            state.eot_events.push((event, args));
        } else {
            state.eval_events.push((event, args));
        }
    }
}

struct CollectorRt {
    comp: usize,
    /// Resolved event name (reports and errors only).
    event: String,
    program: BslProgram,
    state: SlotTable,
}

/// Selects a precomputed listener table for [`Simulator::dispatch`].
#[derive(Clone, Copy)]
enum Listeners {
    /// `<port>_fire` listeners of the given output port.
    Fire(usize),
    /// Listeners of a declared event.
    Declared(EventId),
}

/// A runnable simulation built from a typed netlist.
pub struct Simulator {
    core: Core,
    comps: Vec<Box<dyn Component>>,
    paths: Vec<String>,
    /// Sorted `(path, comp)` pairs; binary-searched at the API boundary.
    path_index: Vec<(String, usize)>,
    port_names: Vec<Vec<String>>,
    static_schedule: Schedule,
    /// Flattened schedule: `(start, len, is_fixpoint)` windows into
    /// `sched_order`, so settling iterates without cloning step vectors.
    sched_steps: Vec<(usize, usize, bool)>,
    sched_order: Vec<usize>,
    /// Compiled-engine plan (empty stages unless [`Engine::Compiled`]).
    plan: CompiledPlan,
    /// Lowered kernels, contiguous per stage ([`StageInfo`] windows).
    kernels: Vec<KernelUnit>,
    /// comp -> index into `kernels` for kernel-executed components.
    kernel_of: Vec<Option<usize>>,
    /// Scratch buffer for staged kernel writes, reused across stages.
    kernel_buf: Vec<(usize, Datum)>,
    /// comp -> all output slots, flattened (eval bookkeeping).
    out_flat: Vec<Vec<usize>>,
    /// Scratch buffer for eval change detection, reused across evals.
    prev_scratch: Vec<Option<Datum>>,
    /// comp -> downstream comps (for the dynamic scheduler).
    consumers: Vec<Vec<usize>>,
    collectors: Vec<CollectorRt>,
    /// comp -> output port -> collector indices listening on `<port>_fire`.
    fire_listeners: Vec<Vec<Vec<usize>>>,
    /// comp -> declared event -> collector indices.
    event_listeners: Vec<Vec<Vec<usize>>>,
    /// Argument names bound for `<port>_fire` dispatch.
    fire_arg_names: Vec<String>,
    /// Argument-name tables for declared events, indexed by argument count:
    /// `event_arg_names[n]` = `["arg0", ..., "arg{n-2}", "cycle"]`.
    event_arg_names: Vec<Vec<String>>,
    opts: SimOptions,
    stats: SimStats,
    initialized: bool,
    /// Protocol-enforcement state (empty unless `check_protocols`).
    monitors: Vec<ProtocolMonitor>,
    /// Firing-log filter: record values from instance paths starting with
    /// any of these prefixes (empty = logging disabled).
    watch_prefixes: Vec<String>,
    firing_log: Vec<FiringRecord>,
    firing_log_cap: usize,
}

/// One recorded port firing (see [`Simulator::watch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FiringRecord {
    /// Cycle the value was carried.
    pub cycle: u64,
    /// Instance path.
    pub path: String,
    /// Port name.
    pub port: String,
    /// Port-instance lane.
    pub lane: u32,
    /// The value.
    pub value: Datum,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("components", &self.comps.len())
            .field("cycle", &self.core.cycle)
            .field("scheduler", &self.opts.scheduler)
            .finish()
    }
}

/// How the runtime monitor enforces one protocol binding.
enum MonitorKind {
    /// A consumer-role group whose primary port is an *output*: the first
    /// value it drives is a violation (consumers have no send transition
    /// on the data channel).
    ConsumerDrives,
    /// A producer with a concrete `credit(n)` budget and no wired credit
    /// return: its total sends may never exceed `budget`. (With a wired
    /// return channel the corelib's absolute-credit discipline applies and
    /// consumer behaviors enforce it via their overflow checks.)
    ProducerBudget { budget: i64, sent: i64 },
    /// A custom automaton stepped on observed traffic: data on the primary
    /// port must match an enabled transition of the right direction, as
    /// must traffic on the reverse port.
    Custom {
        /// Reverse port and whether it is an output on this instance.
        rev: Option<(usize, bool)>,
        state: u32,
    },
}

/// Runtime enforcement state for one declared protocol binding
/// ([`SimOptions::check_protocols`]).
struct ProtocolMonitor {
    comp: usize,
    group: String,
    span: Option<SrcSpan>,
    /// Primary (data) port index and whether it is an output here.
    port: usize,
    port_out: bool,
    states: Vec<String>,
    transitions: Vec<(u32, ActionDir, String, u32)>,
    kind: MonitorKind,
}

struct Placeholder;
impl Component for Placeholder {
    fn eval(&mut self, _ctx: &mut dyn CompCtx) -> Result<(), SimError> {
        Ok(())
    }
}

/// Records a leaf behavior's dependency contract into a [`CombInfo`]:
/// which inputs are registered (`input_is_combinational`) and which
/// output/input pairs run on independent paths (`output_depends_on`).
fn fill_comb_info(comb: &mut CombInfo, inst: &lss_netlist::Instance, comp: &dyn Component) {
    for (i_idx, input) in inst.ports.iter().enumerate() {
        if input.dir != Dir::In {
            continue;
        }
        if !comp.input_is_combinational(i_idx) {
            comb.set_non_combinational(inst.id, PortId::from_index(i_idx));
            continue;
        }
        for (o_idx, output) in inst.ports.iter().enumerate() {
            if output.dir == Dir::Out && !comp.output_depends_on(o_idx, i_idx) {
                comb.set_independent(
                    inst.id,
                    PortId::from_index(o_idx),
                    PortId::from_index(i_idx),
                );
            }
        }
    }
}

/// Computes which leaf inputs are *not* combinational by instantiating each
/// leaf's behavior and asking it (`Component::input_is_combinational`).
///
/// This is the behavioral half of the static analyzer's zero-delay
/// dependency graph: `lss-analyze` owns the graph and its condensation, but
/// only the component registry knows whether a given input is consumed in
/// `eval` (combinational) or in `end_of_timestep` (registered, cycle
/// breaking). Leaves whose behavior cannot be instantiated — unknown
/// `tar_file`, missing port types, userpoints that do not compile — are left
/// at the combinational default, which errs toward *reporting* cycles rather
/// than hiding them.
pub fn comb_info(netlist: &Netlist, registry: &ComponentRegistry) -> lss_analyze::CombInfo {
    let mut comb = CombInfo::all_combinational();
    for inst in &netlist.instances {
        let InstanceKind::Leaf { tar_file } = &inst.kind else {
            continue;
        };
        let mut ports = Vec::with_capacity(inst.ports.len());
        for p in &inst.ports {
            ports.push(PortSpec {
                name: netlist.name(p.name).to_string(),
                dir: p.dir,
                width: p.width,
                ty: p.ty.clone().unwrap_or(lss_types::Ty::Int),
            });
        }
        let mut userpoints = HashMap::new();
        let mut compiled_all = true;
        for up in &inst.userpoints {
            match compile_bsl(&up.code) {
                Ok(program) => {
                    userpoints.insert(netlist.name(up.name).to_string(), program);
                }
                Err(_) => {
                    compiled_all = false;
                    break;
                }
            }
        }
        if !compiled_all {
            continue;
        }
        let spec = CompSpec {
            path: inst.path.clone(),
            module: netlist.name(inst.module).to_string(),
            params: inst
                .params
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            ports,
            userpoints,
            runtime_vars: inst
                .runtime_vars
                .iter()
                .map(|rv| (netlist.name(rv.name).to_string(), rv.init.clone()))
                .collect(),
            protocols: inst.protocols.clone(),
        };
        let Ok(comp) = registry.build(tar_file, &spec) else {
            continue;
        };
        fill_comb_info(&mut comb, inst, comp.as_ref());
    }
    comb
}

/// Builds a simulator from a typed netlist.
///
/// # Errors
///
/// * ports without inferred types (run type inference first);
/// * unknown `tar_file` behaviors;
/// * collectors targeting non-leaf instances;
/// * BSL code in userpoints/collectors that does not compile.
pub fn build(
    netlist: &Netlist,
    registry: &ComponentRegistry,
    opts: SimOptions,
) -> Result<Simulator, BuildError> {
    // Enumerate leaves.
    let mut comp_of_inst: HashMap<InstanceId, usize> = HashMap::new();
    let mut leaf_ids: Vec<InstanceId> = Vec::new();
    for inst in &netlist.instances {
        if inst.is_leaf() {
            comp_of_inst.insert(inst.id, leaf_ids.len());
            leaf_ids.push(inst.id);
        }
    }
    let n = leaf_ids.len();

    // Assign output slots; map inputs through flattened wires.
    let mut out_slots: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n];
    let mut in_slots: Vec<Vec<Vec<Option<usize>>>> = vec![Vec::new(); n];
    let mut widths: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut slot_count = 0usize;
    for (c, &id) in leaf_ids.iter().enumerate() {
        let inst = netlist.instance(id);
        for port in &inst.ports {
            widths[c].push(port.width);
            match port.dir {
                Dir::Out => {
                    let lanes = (0..port.width)
                        .map(|_| {
                            let s = slot_count;
                            slot_count += 1;
                            s
                        })
                        .collect();
                    out_slots[c].push(lanes);
                    in_slots[c].push(Vec::new());
                }
                Dir::In => {
                    out_slots[c].push(Vec::new());
                    in_slots[c].push(vec![None; port.width as usize]);
                }
            }
        }
    }
    let wires = netlist.flatten();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    // (dst comp, dst port, lane) resolved after components exist for
    // comb-dependency queries; first fill slot mapping.
    for wire in &wires {
        let src_comp = comp_of_inst[&wire.src.inst];
        let dst_comp = comp_of_inst[&wire.dst.inst];
        let slot = out_slots[src_comp][wire.src.port.index()][wire.src.index as usize];
        in_slots[dst_comp][wire.dst.port.index()][wire.dst.index as usize] = Some(slot);
        if !consumers[src_comp].contains(&dst_comp) {
            consumers[src_comp].push(dst_comp);
        }
    }

    // Build behaviors. Names cross the string->ID boundary here: everything
    // the per-cycle path needs is resolved from netlist symbols into dense
    // per-component tables.
    let mut comps: Vec<Box<dyn Component>> = Vec::with_capacity(n);
    let mut states: Vec<CompState> = Vec::with_capacity(n);
    let mut paths = Vec::with_capacity(n);
    let mut port_names = Vec::with_capacity(n);
    for &id in &leaf_ids {
        let inst = netlist.instance(id);
        let InstanceKind::Leaf { tar_file } = &inst.kind else {
            unreachable!("leaves only")
        };
        let mut ports = Vec::with_capacity(inst.ports.len());
        for p in &inst.ports {
            let Some(ty) = p.ty.clone() else {
                return Err(BuildError::new(format!(
                    "{}.{}: port has no inferred type; run type inference before building",
                    inst.path,
                    netlist.name(p.name)
                )));
            };
            ports.push(PortSpec {
                name: netlist.name(p.name).to_string(),
                dir: p.dir,
                width: p.width,
                ty,
            });
        }
        let mut userpoints_src = HashMap::new();
        let mut userpoints_rt = Vec::with_capacity(inst.userpoints.len());
        for up in &inst.userpoints {
            let up_name = netlist.name(up.name);
            let program = compile_bsl(&up.code).map_err(|e| {
                BuildError::new(format!(
                    "{}: userpoint `{up_name}` does not compile:\n{e}",
                    inst.path
                ))
            })?;
            let arg_names: Vec<String> = up
                .args
                .iter()
                .map(|(s, _)| netlist.name(*s).to_string())
                .collect();
            userpoints_src.insert(up_name.to_string(), program.clone());
            userpoints_rt.push(UserpointRt {
                name: up_name.to_string(),
                arg_names,
                program,
            });
        }
        let init_up = userpoints_rt
            .iter()
            .position(|up| up.name == "init")
            .map(UserpointId::from_index);
        let eot_up = userpoints_rt
            .iter()
            .position(|up| up.name == "end_of_timestep")
            .map(UserpointId::from_index);
        let rtvs = SlotTable::from_pairs(
            inst.runtime_vars
                .iter()
                .map(|rv| (netlist.name(rv.name), rv.init.clone())),
        );
        let spec = CompSpec {
            path: inst.path.clone(),
            module: netlist.name(inst.module).to_string(),
            params: inst
                .params
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            ports,
            userpoints: userpoints_src,
            runtime_vars: rtvs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            protocols: inst.protocols.clone(),
        };
        let comp = registry.build(tar_file, &spec)?;
        comps.push(comp);
        states.push(CompState {
            rtvs,
            userpoints: userpoints_rt,
            event_names: inst
                .events
                .iter()
                .map(|e| netlist.name(e.name).to_string())
                .collect(),
            eval_events: Vec::new(),
            eot_events: Vec::new(),
            in_eot: false,
            bsl_max_steps: opts.bsl_max_steps,
            init_up,
            eot_up,
        });
        paths.push(inst.path.clone());
        port_names.push(
            inst.ports
                .iter()
                .map(|p| netlist.name(p.name).to_string())
                .collect::<Vec<_>>(),
        );
    }

    // Static schedule: ask the behaviors which inputs their eval reads,
    // then execute the analyzer's dependency-graph condensation — the same
    // graph `lssc check`'s cycle detector reports on, built once here.
    let mut comb = CombInfo::all_combinational();
    for (c, &id) in leaf_ids.iter().enumerate() {
        fill_comb_info(&mut comb, netlist.instance(id), comps[c].as_ref());
    }
    let deps = leaf_dep_graph(netlist, &wires, &comb);
    debug_assert_eq!(deps.leaves, leaf_ids, "analyzer and engine leaf order");
    let cond = deps.graph.condense();
    let static_schedule = Schedule::from_condensation(&cond);
    let mut sched_steps = Vec::with_capacity(static_schedule.steps.len());
    let mut sched_order = Vec::with_capacity(n);
    for step in &static_schedule.steps {
        match step {
            ScheduleStep::Single(comp) => {
                sched_steps.push((sched_order.len(), 1, false));
                sched_order.push(*comp);
            }
            ScheduleStep::Fixpoint(block) => {
                sched_steps.push((sched_order.len(), block.len(), true));
                sched_order.extend_from_slice(block);
            }
        }
    }

    // Compiled plan: group the condensation's SCCs into dependency stages
    // (mutually independent units per stage) and lower each acyclic
    // singleton whose behavior describes a kernel. Everything else — dyn
    // behaviors, fixpoint blocks, instances with userpoints — stays on the
    // serial interpreter path inside its stage. Type checking lives on the
    // dyn write path, so `check_types` disables lowering wholesale.
    let mut plan = CompiledPlan::default();
    let mut kernels: Vec<KernelUnit> = Vec::new();
    let mut kernel_of: Vec<Option<usize>> = vec![None; n];
    if opts.engine == Engine::Compiled {
        for stage_sccs in cond.stages(&deps.graph) {
            let kstart = kernels.len();
            let sstart = plan.serial_steps.len();
            for &si in &stage_sccs {
                let scc = &cond.sccs[si];
                let cyclic = cond.cyclic[si];
                let lowered = if !cyclic && scc.len() == 1 && !opts.check_types {
                    let c = scc[0];
                    if states[c].userpoints.is_empty() {
                        comps[c].kernel_class().and_then(|class| {
                            lower(c, &class, &out_slots[c], &in_slots[c], &mut states[c].rtvs)
                        })
                    } else {
                        None
                    }
                } else {
                    None
                };
                match lowered {
                    Some(unit) => {
                        kernel_of[unit.comp] = Some(kernels.len());
                        kernels.push(unit);
                    }
                    None => {
                        plan.serial_steps.push(SerialStep {
                            start: plan.serial_order.len(),
                            len: scc.len(),
                            fixpoint: cyclic,
                        });
                        plan.serial_order.extend_from_slice(scc);
                    }
                }
            }
            plan.stages.push(StageInfo {
                kstart,
                klen: kernels.len() - kstart,
                sstart,
                slen: plan.serial_steps.len() - sstart,
            });
        }
    }

    // Collectors: resolve each onto its precomputed listener table —
    // declared events index `event_listeners`, implicit `<port>_fire`
    // events index `fire_listeners` by output port.
    let mut collectors = Vec::new();
    let mut fire_listeners: Vec<Vec<Vec<usize>>> = (0..n)
        .map(|c| vec![Vec::new(); out_slots[c].len()])
        .collect();
    let mut event_listeners: Vec<Vec<Vec<usize>>> = (0..n)
        .map(|c| vec![Vec::new(); states[c].event_names.len()])
        .collect();
    for coll in &netlist.collectors {
        let Some(&comp) = comp_of_inst.get(&coll.inst) else {
            let path = netlist.instance(coll.inst).path.clone();
            return Err(BuildError::new(format!(
                "collector on `{path}`: collectors must target leaf instances"
            )));
        };
        let event_name = netlist.name(coll.event);
        let program = compile_bsl(&coll.code).map_err(|e| {
            BuildError::new(format!(
                "collector on `{}` event `{event_name}` does not compile:\n{e}",
                paths[comp]
            ))
        })?;
        let idx = collectors.len();
        collectors.push(CollectorRt {
            comp,
            event: event_name.to_string(),
            program,
            state: SlotTable::new(),
        });
        let inst = netlist.instance(coll.inst);
        if let Some(eid) = inst.events.iter().position(|e| e.name == coll.event) {
            event_listeners[comp][eid].push(idx);
        } else if let Some(pidx) = inst
            .ports
            .iter()
            .position(|p| event_name == format!("{}_fire", netlist.name(p.name)))
        {
            fire_listeners[comp][pidx].push(idx);
        }
        // Anything else can never fire; elaboration rejects such
        // collectors, and hand-built netlists get the old no-op semantics.
    }

    let mut path_index: Vec<(String, usize)> = paths
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, p)| (p, i))
        .collect();
    path_index.sort();
    let port_types: Vec<Vec<Option<(String, Ty)>>> = if opts.check_types {
        leaf_ids
            .iter()
            .map(|&id| {
                netlist
                    .instance(id)
                    .ports
                    .iter()
                    .map(|p| {
                        p.ty.clone()
                            .map(|ty| (netlist.name(p.name).to_string(), ty))
                    })
                    .collect()
            })
            .collect()
    } else {
        vec![Vec::new(); n]
    };
    let out_flat: Vec<Vec<usize>> = out_slots
        .iter()
        .map(|ports| ports.iter().flatten().copied().collect())
        .collect();

    // Protocol monitors: one per enforceable declared binding.
    let mut monitors = Vec::new();
    if opts.check_protocols {
        for (c, &id) in leaf_ids.iter().enumerate() {
            let inst = netlist.instance(id);
            for b in &inst.protocols {
                let primary = b.primary().index();
                let Some(pport) = inst.ports.get(primary) else {
                    continue;
                };
                let port_out = pport.dir == Dir::Out;
                let s = &b.span;
                let span = if s.file == u32::MAX || (s.file == 0 && s.start == 0 && s.end == 0) {
                    None
                } else {
                    Some(*s)
                };
                let kind = match (&b.automaton.template, b.role) {
                    (Template::Custom(_), _) => {
                        let rev = b.reverse().and_then(|r| {
                            inst.ports
                                .get(r.index())
                                .map(|p| (r.index(), p.dir == Dir::Out))
                        });
                        MonitorKind::Custom { rev, state: 0 }
                    }
                    (_, Role::Consumer) if port_out => MonitorKind::ConsumerDrives,
                    (Template::Credit(Some(count)), Role::Producer) if port_out => {
                        let rev_wired = b
                            .reverse()
                            .and_then(|r| inst.ports.get(r.index()))
                            .is_some_and(|p| p.width > 0);
                        if rev_wired {
                            continue;
                        }
                        MonitorKind::ProducerBudget {
                            budget: *count as i64,
                            sent: 0,
                        }
                    }
                    _ => continue,
                };
                monitors.push(ProtocolMonitor {
                    comp: c,
                    group: b.group.clone(),
                    span,
                    port: primary,
                    port_out,
                    states: b.automaton.states.clone(),
                    transitions: b
                        .automaton
                        .transitions
                        .iter()
                        .map(|t| (t.from, t.dir, t.action.clone(), t.to))
                        .collect(),
                    kind,
                });
            }
        }
    }
    Ok(Simulator {
        core: Core {
            cycle: 0,
            seed: opts.seed,
            values: vec![None; slot_count],
            written: vec![false; slot_count],
            states,
            port_types,
            type_violation: None,
            out_slots,
            in_slots,
            widths,
        },
        comps,
        paths,
        path_index,
        port_names,
        static_schedule,
        sched_steps,
        sched_order,
        plan,
        kernels,
        kernel_of,
        kernel_buf: Vec::new(),
        out_flat,
        prev_scratch: Vec::new(),
        consumers,
        collectors,
        fire_listeners,
        event_listeners,
        fire_arg_names: vec!["value".to_string(), "lane".to_string(), "cycle".to_string()],
        event_arg_names: Vec::new(),
        opts,
        stats: SimStats::default(),
        initialized: false,
        monitors,
        watch_prefixes: Vec::new(),
        firing_log: Vec::new(),
        firing_log_cap: 100_000,
    })
}

/// Builds a lockstep batch: one netlist, `seeds.len()` lanes, lane `k`
/// simulated with `SimOptions::seed = seeds[k]` (every other option shared).
/// Lane traces are byte-identical to solo runs with the matching seed.
///
/// # Errors
///
/// Same conditions as [`build`].
pub fn build_batch(
    netlist: &Netlist,
    registry: &ComponentRegistry,
    opts: SimOptions,
    seeds: &[i64],
) -> Result<BatchSim, BuildError> {
    let mut lanes = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let mut lane_opts = opts.clone();
        lane_opts.seed = seed;
        lanes.push(build(netlist, registry, lane_opts)?);
    }
    Ok(BatchSim::new(lanes, seeds.to_vec()))
}

impl Simulator {
    /// Number of leaf components.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Number of components executing as compiled kernels (0 on the interp
    /// engine).
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Number of dependency stages in the compiled plan (0 on the interp
    /// engine).
    pub fn stage_count(&self) -> usize {
        self.plan.stages.len()
    }

    /// Per-leaf lowering outcome: `(path, lowered_to_kernel)`, in component
    /// order. Diagnostics for tooling and the equivalence suite.
    pub fn kernel_report(&self) -> Vec<(&str, bool)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(c, p)| (p.as_str(), self.kernel_of[c].is_some()))
            .collect()
    }

    /// Current cycle (number of completed cycles).
    pub fn cycle(&self) -> u64 {
        self.core.cycle
    }

    /// Simulation counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The static schedule (inspectable for tests/benches).
    pub fn static_schedule(&self) -> &Schedule {
        &self.static_schedule
    }

    fn with_comp<R>(
        &mut self,
        comp: usize,
        f: impl FnOnce(&mut Box<dyn Component>, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut boxed = std::mem::replace(&mut self.comps[comp], Box::new(Placeholder));
        let mut ctx = Ctx {
            core: &mut self.core,
            comp,
        };
        let result = f(&mut boxed, &mut ctx);
        self.comps[comp] = boxed;
        result
    }

    fn eval_comp(&mut self, comp: usize) -> Result<bool, SimError> {
        self.stats.comp_evals += 1;
        self.core.states[comp].eval_events.clear();
        // During eval the component still *sees* the outputs of its previous
        // evaluation (self-loops observe their own last value), but any
        // output lane it does not write this time is retracted afterwards —
        // that keeps fixpoint re-evaluation able to withdraw stale values
        // (essential for credit networks).
        let mut before = std::mem::take(&mut self.prev_scratch);
        before.clear();
        before.extend(
            self.out_flat[comp]
                .iter()
                .map(|&s| self.core.values[s].clone()),
        );
        for &s in &self.out_flat[comp] {
            self.core.written[s] = false;
        }
        self.with_comp(comp, |c, ctx| c.eval(ctx))
            .map_err(|e| self.locate(comp, e))?;
        if let Some(violation) = self.core.type_violation.take() {
            return Err(self.locate(comp, SimError::new(violation)));
        }
        for &s in &self.out_flat[comp] {
            if !self.core.written[s] {
                self.core.values[s] = None;
            }
        }
        let changed = self.out_flat[comp]
            .iter()
            .zip(&before)
            .any(|(&s, prev)| self.core.values[s] != *prev);
        self.prev_scratch = before;
        Ok(changed)
    }

    fn locate(&self, comp: usize, e: SimError) -> SimError {
        SimError {
            message: format!("{}: {}", self.paths[comp], e.message),
            span: e.span,
            budget: e.budget,
        }
    }

    /// Number of lanes of `port` carrying a value after settle.
    fn port_item_count(&self, comp: usize, port: usize, out: bool) -> usize {
        if out {
            self.core.out_slots[comp].get(port).map_or(0, |lanes| {
                lanes
                    .iter()
                    .filter(|&&s| self.core.values[s].is_some())
                    .count()
            })
        } else {
            self.core.in_slots[comp].get(port).map_or(0, |lanes| {
                lanes
                    .iter()
                    .filter(|s| s.is_some_and(|s| self.core.values[s].is_some()))
                    .count()
            })
        }
    }

    /// Steps every protocol monitor on this cycle's observed traffic
    /// ([`SimOptions::check_protocols`]), failing on a violated transition.
    fn enforce_protocols(&mut self) -> Result<(), SimError> {
        for i in 0..self.monitors.len() {
            let (comp, port, port_out, rev_info) = {
                let m = &self.monitors[i];
                let rev = match &m.kind {
                    MonitorKind::Custom { rev, .. } => *rev,
                    _ => None,
                };
                (m.comp, m.port, m.port_out, rev)
            };
            let primary_items = self.port_item_count(comp, port, port_out);
            let rev_items = rev_info.map_or(0, |(rp, ro)| self.port_item_count(comp, rp, ro));
            let m = &mut self.monitors[i];
            let mut violation: Option<SimError> = None;
            match &mut m.kind {
                MonitorKind::ConsumerDrives => {
                    if primary_items > 0 {
                        violation = Some(SimError::protocol_violation(
                            &m.group,
                            "consumer-role group drove its data port; \
                             a consumer has no enabled send transition",
                            m.span,
                        ));
                    }
                }
                MonitorKind::ProducerBudget { budget, sent } => {
                    *sent += primary_items as i64;
                    if *sent > *budget {
                        violation = Some(SimError::protocol_violation(
                            &m.group,
                            format!(
                                "send `item` is not enabled in state `{budget} in flight`: \
                                 credit budget {budget} exhausted with no return channel"
                            ),
                            m.span,
                        ));
                    }
                }
                MonitorKind::Custom { rev, state } => {
                    // Receive-direction moves first: a credit or ack that
                    // arrives this cycle enables the send it pays for.
                    let prim_dir = if port_out {
                        ActionDir::Send
                    } else {
                        ActionDir::Recv
                    };
                    let rev_dir =
                        rev.map(|(_, ro)| if ro { ActionDir::Send } else { ActionDir::Recv });
                    let mut ordered: Vec<(ActionDir, usize)> = Vec::new();
                    for want in [ActionDir::Recv, ActionDir::Send] {
                        if rev_dir == Some(want) && rev_items > 0 {
                            ordered.push((want, rev_items));
                        }
                        if prim_dir == want && primary_items > 0 {
                            ordered.push((want, primary_items));
                        }
                    }
                    'moves: for (dir, count) in ordered {
                        for _ in 0..count {
                            match m.transitions.iter().find(|t| t.0 == *state && t.1 == dir) {
                                Some(t) => *state = t.3,
                                None => {
                                    let name = m
                                        .states
                                        .get(*state as usize)
                                        .cloned()
                                        .unwrap_or_else(|| format!("s{state}"));
                                    violation = Some(SimError::protocol_violation(
                                        &m.group,
                                        format!(
                                            "no {} transition is enabled in state `{name}`",
                                            match dir {
                                                ActionDir::Send => "send",
                                                ActionDir::Recv => "receive",
                                            }
                                        ),
                                        m.span,
                                    ));
                                    break 'moves;
                                }
                            }
                        }
                    }
                }
            }
            if let Some(e) = violation {
                return Err(self.locate(comp, e));
            }
        }
        Ok(())
    }

    /// One-time initialization: `init` hooks plus `init` userpoints.
    pub fn init(&mut self) -> Result<(), SimError> {
        assert!(!self.initialized, "init() called twice");
        for comp in 0..self.comps.len() {
            self.with_comp(comp, |c, ctx| c.init(ctx))
                .map_err(|e| self.locate(comp, e))?;
            if let Some(up) = self.core.states[comp].init_up {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    comp,
                };
                ctx.call_userpoint_by_id(up, &[])
                    .map_err(|e| self.locate(comp, e))?;
            }
        }
        self.initialized = true;
        Ok(())
    }

    /// Runs one clock cycle.
    pub fn step(&mut self) -> Result<(), SimError> {
        // Budget gate: the cycle cap is a plain `Option` compare, and the
        // deadline poll is strided inside the budget handle, so unlimited
        // runs pay two branches per cycle (benched <1% on the Table 3
        // sweep). Checked before any work so a shed cycle leaves state at
        // the previous cycle boundary.
        self.opts
            .budget
            .check_cycles(self.core.cycle + 1, "simulate")
            .map_err(SimError::budget)?;
        self.opts
            .budget
            .check_deadline("simulate")
            .map_err(SimError::budget)?;
        if !self.initialized {
            self.init()?;
        }
        // New cycle: all port values start absent.
        for v in &mut self.core.values {
            *v = None;
        }
        match (self.opts.engine, self.opts.scheduler) {
            (Engine::Compiled, _) => self.settle_compiled()?,
            (Engine::Interp, Scheduler::Static) => self.settle_static()?,
            (Engine::Interp, Scheduler::Dynamic) => self.settle_dynamic()?,
        }
        self.fire_port_events()?;
        if self.opts.check_protocols {
            self.enforce_protocols()?;
        }
        // Synchronous state update. Kernel-executed components update their
        // devirtualized state directly (their runtime variables stay in the
        // shared per-component table so `state_lines()` sees them); the
        // rest take the dyn path. Lowering is gated on the instance having
        // no userpoints, so the `end_of_timestep` userpoint hook cannot be
        // skipped by a kernel.
        for comp in 0..self.comps.len() {
            if let Some(k) = self.kernel_of[comp] {
                self.kernels[k]
                    .kernel
                    .end_of_timestep(&self.core.values, &mut self.core.states[comp].rtvs)
                    .map_err(|e| self.locate(comp, e))?;
                continue;
            }
            self.core.states[comp].in_eot = true;
            self.with_comp(comp, |c, ctx| c.end_of_timestep(ctx))
                .map_err(|e| self.locate(comp, e))?;
            if let Some(up) = self.core.states[comp].eot_up {
                let mut ctx = Ctx {
                    core: &mut self.core,
                    comp,
                };
                ctx.call_userpoint_by_id(up, &[])
                    .map_err(|e| self.locate(comp, e))?;
            }
            self.core.states[comp].in_eot = false;
        }
        self.dispatch_declared_events()?;
        self.core.cycle += 1;
        self.stats.cycles += 1;
        Ok(())
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    fn settle_static(&mut self) -> Result<(), SimError> {
        for si in 0..self.sched_steps.len() {
            let (start, len, fixpoint) = self.sched_steps[si];
            self.settle_window(start, len, fixpoint, false)?;
        }
        Ok(())
    }

    /// The component id at position `j` of the active order array: the
    /// static schedule's, or the compiled plan's serial order.
    fn window_comp(&self, serial: bool, j: usize) -> usize {
        if serial {
            self.plan.serial_order[j]
        } else {
            self.sched_order[j]
        }
    }

    /// Evaluates one schedule window through the interpreter: a single
    /// component, or a combinational-cycle fixpoint block iterated until
    /// its outputs stop changing.
    fn settle_window(
        &mut self,
        start: usize,
        len: usize,
        fixpoint: bool,
        serial: bool,
    ) -> Result<(), SimError> {
        if !fixpoint {
            let comp = self.window_comp(serial, start);
            self.eval_comp(comp)?;
            return Ok(());
        }
        let mut iters = 0;
        loop {
            let mut any = false;
            for j in start..start + len {
                let comp = self.window_comp(serial, j);
                any |= self.eval_comp(comp)?;
            }
            if !any {
                break;
            }
            iters += 1;
            if iters > self.opts.max_fixpoint_iters {
                let names: Vec<&str> = (start..start + len)
                    .map(|j| self.paths[self.window_comp(serial, j)].as_str())
                    .collect();
                return Err(SimError::new(format!(
                    "combinational cycle did not settle after {} iterations: {}",
                    self.opts.max_fixpoint_iters,
                    names.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// The compiled settle loop: per dependency stage, evaluate the
    /// stage's kernels (in parallel when configured) with writes buffered
    /// and committed at the stage barrier, then run the stage's serial
    /// units through the interpreter. Stage members are mutually
    /// independent, so the barrier commit makes the result identical to
    /// the interpreted static schedule — at every thread count.
    fn settle_compiled(&mut self) -> Result<(), SimError> {
        let mut held: VecDeque<(usize, Datum)> = VecDeque::new();
        for si in 0..self.plan.stages.len() {
            let stage = self.plan.stages[si];
            if stage.klen > 0 {
                let mut buf = std::mem::take(&mut self.kernel_buf);
                buf.clear();
                let res = eval_stage(
                    &mut self.kernels[stage.kstart..stage.kstart + stage.klen],
                    &self.core.values,
                    self.core.cycle,
                    self.core.seed,
                    self.opts.threads,
                    &mut buf,
                );
                if let Err((comp, e)) = res {
                    self.kernel_buf = buf;
                    return Err(self.locate(comp, e));
                }
                self.stats.comp_evals += stage.klen as u64;
                commit_stage(
                    &mut buf,
                    &mut self.core.values,
                    self.opts.kernel_mutation,
                    &mut held,
                );
                self.kernel_buf = buf;
            }
            for sj in stage.sstart..stage.sstart + stage.slen {
                let SerialStep {
                    start,
                    len,
                    fixpoint,
                } = self.plan.serial_steps[sj];
                self.settle_window(start, len, fixpoint, true)?;
            }
        }
        // Only the skipped-barrier mutation holds writes back this long.
        for (slot, v) in held {
            self.core.values[slot] = Some(v);
        }
        Ok(())
    }

    fn settle_dynamic(&mut self) -> Result<(), SimError> {
        let n = self.comps.len();
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut queued = vec![true; n];
        let mut safety = 0u64;
        let cap = (n as u64 + 1) * (self.opts.max_fixpoint_iters as u64 + 1) * 4;
        while let Some(comp) = queue.pop_front() {
            queued[comp] = false;
            let changed = self.eval_comp(comp)?;
            if changed {
                for &consumer in &self.consumers[comp] {
                    if !queued[consumer] {
                        queued[consumer] = true;
                        queue.push_back(consumer);
                    }
                }
            }
            safety += 1;
            if safety > cap {
                return Err(SimError::new(
                    "dynamic scheduler did not reach a fixpoint (oscillating model?)",
                ));
            }
        }
        Ok(())
    }

    fn fire_port_events(&mut self) -> Result<(), SimError> {
        for comp in 0..self.comps.len() {
            let watched = !self.watch_prefixes.is_empty()
                && self
                    .watch_prefixes
                    .iter()
                    .any(|p| self.paths[comp].starts_with(p.as_str()));
            for port in 0..self.core.out_slots[comp].len() {
                let lanes = self.core.out_slots[comp][port].len();
                if lanes == 0 {
                    continue;
                }
                let has_listeners = !self.fire_listeners[comp][port].is_empty();
                for lane in 0..lanes {
                    let slot = self.core.out_slots[comp][port][lane];
                    // Values are cloned only on the observation paths; the
                    // common unobserved firing just bumps the counter.
                    if self.core.values[slot].is_none() {
                        continue;
                    }
                    self.stats.port_firings += 1;
                    if watched && self.firing_log.len() < self.firing_log_cap {
                        let value = self.core.values[slot].clone().expect("checked above");
                        self.firing_log.push(FiringRecord {
                            cycle: self.core.cycle,
                            path: self.paths[comp].clone(),
                            port: self.port_names[comp][port].clone(),
                            lane: lane as u32,
                            value,
                        });
                    }
                    if has_listeners {
                        let args = vec![
                            self.core.values[slot].clone().expect("checked above"),
                            Datum::Int(lane as i64),
                            Datum::Int(self.core.cycle as i64),
                        ];
                        self.dispatch(comp, Listeners::Fire(port), args)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn dispatch_declared_events(&mut self) -> Result<(), SimError> {
        for comp in 0..self.comps.len() {
            if self.core.states[comp].eval_events.is_empty()
                && self.core.states[comp].eot_events.is_empty()
            {
                continue;
            }
            let mut events = std::mem::take(&mut self.core.states[comp].eval_events);
            events.extend(std::mem::take(&mut self.core.states[comp].eot_events));
            for (eid, mut args) in events {
                if self.event_listeners[comp][eid.index()].is_empty() {
                    continue;
                }
                self.ensure_event_arg_names(args.len() + 1);
                args.push(Datum::Int(self.core.cycle as i64));
                self.dispatch(comp, Listeners::Declared(eid), args)?;
            }
        }
        Ok(())
    }

    /// Grows the cached `["arg0", ..., "cycle"]` name tables to cover
    /// dispatches with `total` bound arguments.
    fn ensure_event_arg_names(&mut self, total: usize) {
        while self.event_arg_names.len() <= total {
            let n = self.event_arg_names.len();
            let mut names: Vec<String> = (0..n.saturating_sub(1))
                .map(|i| format!("arg{i}"))
                .collect();
            if n > 0 {
                names.push("cycle".to_string());
            }
            self.event_arg_names.push(names);
        }
    }

    fn dispatch(
        &mut self,
        comp: usize,
        which: Listeners,
        args: Vec<Datum>,
    ) -> Result<(), SimError> {
        let (listeners, arg_names): (&[usize], &[String]) = match which {
            Listeners::Fire(port) => (&self.fire_listeners[comp][port], &self.fire_arg_names),
            Listeners::Declared(eid) => (
                &self.event_listeners[comp][eid.index()],
                &self.event_arg_names[args.len()],
            ),
        };
        for &idx in listeners {
            self.stats.events_dispatched += 1;
            let coll = &mut self.collectors[idx];
            let mut env = BslEnv {
                arg_names,
                args: args.clone(),
                vars: &mut coll.state,
                implicit_zero: true,
            };
            exec(&coll.program, &mut env, self.opts.bsl_max_steps).map_err(|e| {
                SimError::new(format!(
                    "collector on {} event {}: {}",
                    self.paths[comp], coll.event, e.message
                ))
            })?;
        }
        Ok(())
    }

    /// Reads the value an output port instance carried in the most recently
    /// completed cycle.
    pub fn peek(&self, path: &str, port: &str, lane: u32) -> Option<Datum> {
        let comp = self.comp_of_path(path)?;
        let pidx = self.port_names[comp].iter().position(|p| p == port)?;
        let slot = *self.core.out_slots[comp].get(pidx)?.get(lane as usize)?;
        self.core.values[slot].clone()
    }

    /// Reads a component's runtime variable.
    pub fn rtv(&self, path: &str, name: &str) -> Option<Datum> {
        let comp = self.comp_of_path(path)?;
        self.core.states[comp].rtvs.get(name).cloned()
    }

    fn comp_of_path(&self, path: &str) -> Option<usize> {
        self.path_index
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
            .ok()
            .map(|i| self.path_index[i].1)
    }

    /// Iterates over collector results: (instance path, event, state table).
    pub fn collector_reports(&self) -> Vec<(String, String, &SlotTable)> {
        self.collectors
            .iter()
            .map(|c| (self.paths[c.comp].clone(), c.event.clone(), &c.state))
            .collect()
    }

    /// Starts recording a firing log for instances whose path starts with
    /// `prefix` (visualization/debugging support, §4.5). Call before
    /// stepping; multiple prefixes accumulate. At most `cap` records are
    /// kept (default 100 000).
    pub fn watch(&mut self, prefix: impl Into<String>) {
        self.watch_prefixes.push(prefix.into());
    }

    /// Caps the firing log length.
    pub fn set_firing_log_cap(&mut self, cap: usize) {
        self.firing_log_cap = cap;
    }

    /// The recorded firing log (empty unless [`Simulator::watch`] was used).
    pub fn firing_log(&self) -> &[FiringRecord] {
        &self.firing_log
    }

    /// A canonical, sorted dump of everything observable after the most
    /// recently completed [`Simulator::step`]: every output port instance
    /// carrying a value, every runtime variable, and every collector
    /// accumulator, one line each.
    ///
    /// The format is the differential-testing contract shared with the
    /// reference simulator in `lss-verify`, which diffs the two line sets
    /// cycle by cycle:
    ///
    /// ```text
    /// port <path>.<port>[<lane>] = <value>
    /// rtv <path>::<name> = <value>
    /// collector <path>/<event>::<name> = <value>
    /// ```
    pub fn state_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for comp in 0..self.comps.len() {
            let path = &self.paths[comp];
            for (port, lanes) in self.core.out_slots[comp].iter().enumerate() {
                for (lane, &slot) in lanes.iter().enumerate() {
                    if let Some(value) = &self.core.values[slot] {
                        out.push(format!(
                            "port {path}.{}[{lane}] = {value}",
                            self.port_names[comp][port]
                        ));
                    }
                }
            }
            for (name, value) in self.core.states[comp].rtvs.iter() {
                out.push(format!("rtv {path}::{name} = {value}"));
            }
        }
        for coll in &self.collectors {
            let path = &self.paths[coll.comp];
            for (name, value) in coll.state.iter() {
                out.push(format!("collector {path}/{}::{name} = {value}", coll.event));
            }
        }
        out.sort();
        out
    }

    /// Convenience: the value of statistic `name` in the first collector on
    /// `path`/`event`.
    pub fn collector_stat(&self, path: &str, event: &str, name: &str) -> Option<Datum> {
        self.collectors
            .iter()
            .find(|c| self.paths[c.comp] == path && c.event == event)
            .and_then(|c| c.state.get(name).cloned())
    }
}
