//! The simulator: builds an executable model from a typed netlist and runs
//! it cycle by cycle.
//!
//! Each cycle has two phases, matching synchronous hardware (§2):
//!
//! 1. **Combinational settle** — every leaf component's `eval` computes its
//!    outputs from this cycle's inputs and current state. The *static*
//!    scheduler runs components once each in precomputed topological order
//!    (iterating genuine combinational cycles to a fixpoint); the *dynamic*
//!    scheduler is the SystemC-style baseline that re-evaluates components
//!    from a worklist until no output changes.
//! 2. **`end_of_timestep`** — synchronous state update, plus the
//!    system-defined `end_of_timestep` userpoint on every instance (§4.3).
//!
//! Instrumentation (§4.5): after the settle phase, every output port
//! instance that carries a value emits the implicit `<port>_fire` event;
//! declared events are emitted by behaviors via [`CompCtx::emit`]. Events
//! are routed to the model's collectors, whose BSL bodies accumulate
//! statistics in per-collector state tables.

use std::collections::HashMap;
use std::collections::VecDeque;

use lss_netlist::{Dir, InstanceId, InstanceKind, Netlist};
use lss_types::Datum;

use crate::bsl::{compile_bsl, exec, BslEnv, BslProgram};
use crate::component::{
    BuildError, CompCtx, CompSpec, Component, ComponentRegistry, PortSpec, SimError,
};
use crate::sched::{schedule, Schedule, ScheduleStep};

/// Which combinational scheduler to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Precomputed topological order (LSE's approach \[12\]).
    #[default]
    Static,
    /// Worklist fixpoint (structural-OOP / SystemC-style baseline).
    Dynamic,
}

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Scheduler choice.
    pub scheduler: Scheduler,
    /// Iteration cap for combinational-cycle fixpoints.
    pub max_fixpoint_iters: usize,
    /// Step budget per BSL invocation.
    pub bsl_max_steps: u64,
    /// Validate every value sent on a port against the port's inferred
    /// type, failing the cycle on a violation. Catches behaviors that
    /// disagree with the static types; costs a structural check per send.
    pub check_types: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            scheduler: Scheduler::Static,
            max_fixpoint_iters: 64,
            bsl_max_steps: 1_000_000,
            check_types: false,
        }
    }
}

/// Aggregate simulation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles executed.
    pub cycles: u64,
    /// Total component `eval` invocations (the static-vs-dynamic metric).
    pub comp_evals: u64,
    /// Events dispatched to collectors.
    pub events_dispatched: u64,
    /// Port firings observed.
    pub port_firings: u64,
}

struct CompState {
    rtvs: HashMap<String, Datum>,
    userpoints: HashMap<String, (Vec<String>, BslProgram)>,
    /// Events emitted by the most recent `eval` this cycle.
    eval_events: Vec<(String, Vec<Datum>)>,
    /// Events emitted during `end_of_timestep`.
    eot_events: Vec<(String, Vec<Datum>)>,
    /// True while `end_of_timestep` is running (routes `emit`).
    in_eot: bool,
    bsl_max_steps: u64,
}

struct Core {
    cycle: u64,
    values: Vec<Option<Datum>>,
    /// Per-slot flag: written during the current component evaluation.
    written: Vec<bool>,
    states: Vec<CompState>,
    /// comp -> port -> lane -> global slot (output ports only).
    out_slots: Vec<Vec<Vec<usize>>>,
    /// comp -> port -> lane -> driving slot (input ports only).
    in_slots: Vec<Vec<Vec<Option<usize>>>>,
    /// comp -> port -> width.
    widths: Vec<Vec<u32>>,
    /// comp -> port -> inferred type (only populated when checking).
    port_types: Vec<Vec<Option<lss_netlist::netlist::Port>>>,
    /// First type violation observed during the current eval, if any.
    type_violation: Option<String>,
}

struct Ctx<'a> {
    core: &'a mut Core,
    comp: usize,
}

impl CompCtx for Ctx<'_> {
    fn cycle(&self) -> u64 {
        self.core.cycle
    }

    fn input(&self, port: usize, lane: u32) -> Option<Datum> {
        let slot = self.core.in_slots[self.comp].get(port)?.get(lane as usize)?.as_ref()?;
        self.core.values[*slot].clone()
    }

    fn set_output(&mut self, port: usize, lane: u32, value: Datum) {
        let Some(&slot) =
            self.core.out_slots[self.comp].get(port).and_then(|p| p.get(lane as usize))
        else {
            // Writing an unconnected lane is a no-op (unconnected-port
            // semantics: nobody is listening).
            return;
        };
        if let Some(Some(port)) =
            self.core.port_types.get(self.comp).and_then(|ps| ps.get(port))
        {
            if let Some(ty) = &port.ty {
                if !value.conforms_to(ty) && self.core.type_violation.is_none() {
                    self.core.type_violation = Some(format!(
                        "port `{}` expects {ty}, behavior sent {value}",
                        port.name
                    ));
                }
            }
        }
        self.core.values[slot] = Some(value);
        self.core.written[slot] = true;
    }

    fn output(&self, port: usize, lane: u32) -> Option<Datum> {
        let slot =
            *self.core.out_slots[self.comp].get(port)?.get(lane as usize)?;
        self.core.values[slot].clone()
    }

    fn width(&self, port: usize) -> u32 {
        self.core.widths[self.comp].get(port).copied().unwrap_or(0)
    }

    fn rtv(&self, name: &str) -> Datum {
        self.core.states[self.comp]
            .rtvs
            .get(name)
            .unwrap_or_else(|| panic!("runtime variable `{name}` was never declared"))
            .clone()
    }

    fn set_rtv(&mut self, name: &str, value: Datum) {
        self.core.states[self.comp].rtvs.insert(name.to_string(), value);
    }

    fn has_userpoint(&self, name: &str) -> bool {
        self.core.states[self.comp].userpoints.contains_key(name)
    }

    fn call_userpoint(&mut self, name: &str, args: &[Datum]) -> Result<Datum, SimError> {
        let state = &mut self.core.states[self.comp];
        let Some((arg_names, program)) = state.userpoints.get(name).cloned() else {
            return Err(SimError::new(format!("no userpoint `{name}` on this instance")));
        };
        if arg_names.len() != args.len() {
            return Err(SimError::new(format!(
                "userpoint `{name}` expects {} argument(s), got {}",
                arg_names.len(),
                args.len()
            )));
        }
        let mut env = BslEnv {
            args: arg_names.iter().cloned().zip(args.iter().cloned()).collect(),
            vars: &mut state.rtvs,
            implicit_zero: false,
        };
        let max = state.bsl_max_steps;
        match exec(&program, &mut env, max)? {
            Some(v) => Ok(v),
            None => Ok(Datum::Int(0)),
        }
    }

    fn emit(&mut self, event: &str, args: Vec<Datum>) {
        let state = &mut self.core.states[self.comp];
        if state.in_eot {
            state.eot_events.push((event.to_string(), args));
        } else {
            state.eval_events.push((event.to_string(), args));
        }
    }
}

struct CollectorRt {
    comp: usize,
    event: String,
    program: BslProgram,
    state: HashMap<String, Datum>,
}

/// A runnable simulation built from a typed netlist.
pub struct Simulator {
    core: Core,
    comps: Vec<Box<dyn Component>>,
    paths: Vec<String>,
    path_index: HashMap<String, usize>,
    port_names: Vec<Vec<String>>,
    static_schedule: Schedule,
    /// comp -> downstream comps (for the dynamic scheduler).
    consumers: Vec<Vec<usize>>,
    collectors: Vec<CollectorRt>,
    /// (comp, event) -> collector indices.
    coll_index: HashMap<(usize, String), Vec<usize>>,
    opts: SimOptions,
    stats: SimStats,
    initialized: bool,
    /// Firing-log filter: record values from instance paths starting with
    /// any of these prefixes (empty = logging disabled).
    watch_prefixes: Vec<String>,
    firing_log: Vec<FiringRecord>,
    firing_log_cap: usize,
}

/// One recorded port firing (see [`Simulator::watch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FiringRecord {
    /// Cycle the value was carried.
    pub cycle: u64,
    /// Instance path.
    pub path: String,
    /// Port name.
    pub port: String,
    /// Port-instance lane.
    pub lane: u32,
    /// The value.
    pub value: Datum,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("components", &self.comps.len())
            .field("cycle", &self.core.cycle)
            .field("scheduler", &self.opts.scheduler)
            .finish()
    }
}

struct Placeholder;
impl Component for Placeholder {
    fn eval(&mut self, _ctx: &mut dyn CompCtx) -> Result<(), SimError> {
        Ok(())
    }
}

/// Builds a simulator from a typed netlist.
///
/// # Errors
///
/// * ports without inferred types (run type inference first);
/// * unknown `tar_file` behaviors;
/// * collectors targeting non-leaf instances;
/// * BSL code in userpoints/collectors that does not compile.
pub fn build(
    netlist: &Netlist,
    registry: &ComponentRegistry,
    opts: SimOptions,
) -> Result<Simulator, BuildError> {
    // Enumerate leaves.
    let mut comp_of_inst: HashMap<InstanceId, usize> = HashMap::new();
    let mut leaf_ids: Vec<InstanceId> = Vec::new();
    for inst in netlist.leaves() {
        comp_of_inst.insert(inst.id, leaf_ids.len());
        leaf_ids.push(inst.id);
    }
    let n = leaf_ids.len();

    // Assign output slots; map inputs through flattened wires.
    let mut out_slots: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n];
    let mut in_slots: Vec<Vec<Vec<Option<usize>>>> = vec![Vec::new(); n];
    let mut widths: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut slot_count = 0usize;
    for (c, &id) in leaf_ids.iter().enumerate() {
        let inst = netlist.instance(id);
        for port in &inst.ports {
            widths[c].push(port.width);
            match port.dir {
                Dir::Out => {
                    let lanes = (0..port.width)
                        .map(|_| {
                            let s = slot_count;
                            slot_count += 1;
                            s
                        })
                        .collect();
                    out_slots[c].push(lanes);
                    in_slots[c].push(Vec::new());
                }
                Dir::In => {
                    out_slots[c].push(Vec::new());
                    in_slots[c].push(vec![None; port.width as usize]);
                }
            }
        }
    }
    let wires = netlist.flatten();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut comb_edges: Vec<(usize, usize)> = Vec::new();
    // (dst comp, dst port, lane) resolved after components exist for
    // comb-dependency queries; first fill slot mapping.
    for wire in &wires {
        let src_comp = comp_of_inst[&wire.src.inst];
        let dst_comp = comp_of_inst[&wire.dst.inst];
        let slot = out_slots[src_comp][wire.src.port as usize][wire.src.index as usize];
        in_slots[dst_comp][wire.dst.port as usize][wire.dst.index as usize] = Some(slot);
        if !consumers[src_comp].contains(&dst_comp) {
            consumers[src_comp].push(dst_comp);
        }
    }

    // Build behaviors.
    let mut comps: Vec<Box<dyn Component>> = Vec::with_capacity(n);
    let mut states: Vec<CompState> = Vec::with_capacity(n);
    let mut paths = Vec::with_capacity(n);
    let mut port_names = Vec::with_capacity(n);
    for &id in &leaf_ids {
        let inst = netlist.instance(id);
        let InstanceKind::Leaf { tar_file } = &inst.kind else { unreachable!("leaves only") };
        let mut ports = Vec::with_capacity(inst.ports.len());
        for p in &inst.ports {
            let Some(ty) = p.ty.clone() else {
                return Err(BuildError::new(format!(
                    "{}.{}: port has no inferred type; run type inference before building",
                    inst.path, p.name
                )));
            };
            ports.push(PortSpec { name: p.name.clone(), dir: p.dir, width: p.width, ty });
        }
        let mut userpoints_src = HashMap::new();
        let mut userpoints_rt = HashMap::new();
        for up in &inst.userpoints {
            let program = compile_bsl(&up.code).map_err(|e| {
                BuildError::new(format!(
                    "{}: userpoint `{}` does not compile:\n{e}",
                    inst.path, up.name
                ))
            })?;
            let arg_names: Vec<String> = up.args.iter().map(|(n, _)| n.clone()).collect();
            userpoints_src.insert(up.name.clone(), program.clone());
            userpoints_rt.insert(up.name.clone(), (arg_names, program));
        }
        let spec = CompSpec {
            path: inst.path.clone(),
            module: inst.module.clone(),
            params: inst.params.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            ports,
            userpoints: userpoints_src,
            runtime_vars: inst.runtime_vars.iter().map(|rv| (rv.name.clone(), rv.init.clone())).collect(),
        };
        let comp = registry.build(tar_file, &spec)?;
        comps.push(comp);
        states.push(CompState {
            rtvs: inst
                .runtime_vars
                .iter()
                .map(|rv| (rv.name.clone(), rv.init.clone()))
                .collect(),
            userpoints: userpoints_rt,
            eval_events: Vec::new(),
            eot_events: Vec::new(),
            in_eot: false,
            bsl_max_steps: opts.bsl_max_steps,
        });
        paths.push(inst.path.clone());
        port_names.push(inst.ports.iter().map(|p| p.name.clone()).collect::<Vec<_>>());
    }

    // Combinational edges for the static schedule (now that behaviors can
    // tell us which inputs their eval reads).
    for wire in &wires {
        let src_comp = comp_of_inst[&wire.src.inst];
        let dst_comp = comp_of_inst[&wire.dst.inst];
        if comps[dst_comp].input_is_combinational(wire.dst.port as usize) {
            comb_edges.push((src_comp, dst_comp));
        }
    }
    let static_schedule = schedule(n, &comb_edges);

    // Collectors.
    let mut collectors = Vec::new();
    let mut coll_index: HashMap<(usize, String), Vec<usize>> = HashMap::new();
    for coll in &netlist.collectors {
        let Some(&comp) = comp_of_inst.get(&coll.inst) else {
            let path = netlist.instance(coll.inst).path.clone();
            return Err(BuildError::new(format!(
                "collector on `{path}`: collectors must target leaf instances"
            )));
        };
        let program = compile_bsl(&coll.code).map_err(|e| {
            BuildError::new(format!(
                "collector on `{}` event `{}` does not compile:\n{e}",
                paths[comp], coll.event
            ))
        })?;
        let idx = collectors.len();
        collectors.push(CollectorRt {
            comp,
            event: coll.event.clone(),
            program,
            state: HashMap::new(),
        });
        coll_index.entry((comp, coll.event.clone())).or_default().push(idx);
    }

    let path_index = paths.iter().cloned().enumerate().map(|(i, p)| (p, i)).collect();
    let port_types: Vec<Vec<Option<lss_netlist::netlist::Port>>> = if opts.check_types {
        leaf_ids
            .iter()
            .map(|&id| netlist.instance(id).ports.iter().map(|p| Some(p.clone())).collect())
            .collect()
    } else {
        vec![Vec::new(); n]
    };
    Ok(Simulator {
        core: Core {
            cycle: 0,
            values: vec![None; slot_count],
            written: vec![false; slot_count],
            states,
            port_types,
            type_violation: None,
            out_slots,
            in_slots,
            widths,
        },
        comps,
        paths,
        path_index,
        port_names,
        static_schedule,
        consumers,
        collectors,
        coll_index,
        opts,
        stats: SimStats::default(),
        initialized: false,
        watch_prefixes: Vec::new(),
        firing_log: Vec::new(),
        firing_log_cap: 100_000,
    })
}

impl Simulator {
    /// Number of leaf components.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Current cycle (number of completed cycles).
    pub fn cycle(&self) -> u64 {
        self.core.cycle
    }

    /// Simulation counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The static schedule (inspectable for tests/benches).
    pub fn static_schedule(&self) -> &Schedule {
        &self.static_schedule
    }

    fn with_comp<R>(
        &mut self,
        comp: usize,
        f: impl FnOnce(&mut Box<dyn Component>, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut boxed = std::mem::replace(&mut self.comps[comp], Box::new(Placeholder));
        let mut ctx = Ctx { core: &mut self.core, comp };
        let result = f(&mut boxed, &mut ctx);
        self.comps[comp] = boxed;
        result
    }

    fn eval_comp(&mut self, comp: usize) -> Result<bool, SimError> {
        self.stats.comp_evals += 1;
        self.core.states[comp].eval_events.clear();
        // During eval the component still *sees* the outputs of its previous
        // evaluation (self-loops observe their own last value), but any
        // output lane it does not write this time is retracted afterwards —
        // that keeps fixpoint re-evaluation able to withdraw stale values
        // (essential for credit networks).
        let slots: Vec<usize> =
            self.core.out_slots[comp].iter().flatten().copied().collect();
        let before: Vec<Option<Datum>> =
            slots.iter().map(|&s| self.core.values[s].clone()).collect();
        for &s in &slots {
            self.core.written[s] = false;
        }
        self.with_comp(comp, |c, ctx| c.eval(ctx)).map_err(|e| self.locate(comp, e))?;
        if let Some(violation) = self.core.type_violation.take() {
            return Err(self.locate(comp, SimError::new(violation)));
        }
        for &s in &slots {
            if !self.core.written[s] {
                self.core.values[s] = None;
            }
        }
        let changed =
            slots.iter().zip(&before).any(|(&s, prev)| self.core.values[s] != *prev);
        Ok(changed)
    }

    fn locate(&self, comp: usize, e: SimError) -> SimError {
        SimError::new(format!("{}: {}", self.paths[comp], e.message))
    }

    /// One-time initialization: `init` hooks plus `init` userpoints.
    pub fn init(&mut self) -> Result<(), SimError> {
        assert!(!self.initialized, "init() called twice");
        for comp in 0..self.comps.len() {
            self.with_comp(comp, |c, ctx| c.init(ctx))
                .map_err(|e| self.locate(comp, e))?;
            let has_init = self.core.states[comp].userpoints.contains_key("init");
            if has_init {
                let mut ctx = Ctx { core: &mut self.core, comp };
                ctx.call_userpoint("init", &[]).map_err(|e| self.locate(comp, e))?;
            }
        }
        self.initialized = true;
        Ok(())
    }

    /// Runs one clock cycle.
    pub fn step(&mut self) -> Result<(), SimError> {
        if !self.initialized {
            self.init()?;
        }
        // New cycle: all port values start absent.
        for v in &mut self.core.values {
            *v = None;
        }
        match self.opts.scheduler {
            Scheduler::Static => self.settle_static()?,
            Scheduler::Dynamic => self.settle_dynamic()?,
        }
        self.fire_port_events()?;
        // Synchronous state update.
        for comp in 0..self.comps.len() {
            self.core.states[comp].in_eot = true;
            self.with_comp(comp, |c, ctx| c.end_of_timestep(ctx))
                .map_err(|e| self.locate(comp, e))?;
            let has_eot = self.core.states[comp].userpoints.contains_key("end_of_timestep");
            if has_eot {
                let mut ctx = Ctx { core: &mut self.core, comp };
                ctx.call_userpoint("end_of_timestep", &[]).map_err(|e| self.locate(comp, e))?;
            }
            self.core.states[comp].in_eot = false;
        }
        self.dispatch_declared_events()?;
        self.core.cycle += 1;
        self.stats.cycles += 1;
        Ok(())
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    fn settle_static(&mut self) -> Result<(), SimError> {
        let steps = self.static_schedule.steps.clone();
        for step in &steps {
            match step {
                ScheduleStep::Single(comp) => {
                    self.eval_comp(*comp)?;
                }
                ScheduleStep::Fixpoint(block) => {
                    let mut iters = 0;
                    loop {
                        let mut any = false;
                        for &comp in block {
                            any |= self.eval_comp(comp)?;
                        }
                        if !any {
                            break;
                        }
                        iters += 1;
                        if iters > self.opts.max_fixpoint_iters {
                            let names: Vec<&str> =
                                block.iter().map(|&c| self.paths[c].as_str()).collect();
                            return Err(SimError::new(format!(
                                "combinational cycle did not settle after {} iterations: {}",
                                self.opts.max_fixpoint_iters,
                                names.join(", ")
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn settle_dynamic(&mut self) -> Result<(), SimError> {
        let n = self.comps.len();
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut queued = vec![true; n];
        let mut safety = 0u64;
        let cap = (n as u64 + 1) * (self.opts.max_fixpoint_iters as u64 + 1) * 4;
        while let Some(comp) = queue.pop_front() {
            queued[comp] = false;
            let changed = self.eval_comp(comp)?;
            if changed {
                for &consumer in &self.consumers[comp].clone() {
                    if !queued[consumer] {
                        queued[consumer] = true;
                        queue.push_back(consumer);
                    }
                }
            }
            safety += 1;
            if safety > cap {
                return Err(SimError::new(
                    "dynamic scheduler did not reach a fixpoint (oscillating model?)",
                ));
            }
        }
        Ok(())
    }

    fn fire_port_events(&mut self) -> Result<(), SimError> {
        for comp in 0..self.comps.len() {
            for port in 0..self.core.out_slots[comp].len() {
                if self.core.out_slots[comp][port].is_empty() {
                    continue;
                }
                let port_name = self.port_names[comp][port].clone();
                let event = format!("{port_name}_fire");
                let has_listeners = self.coll_index.contains_key(&(comp, event.clone()));
                let watched = !self.watch_prefixes.is_empty()
                    && self
                        .watch_prefixes
                        .iter()
                        .any(|p| self.paths[comp].starts_with(p.as_str()));
                for lane in 0..self.core.out_slots[comp][port].len() {
                    let slot = self.core.out_slots[comp][port][lane];
                    let Some(value) = self.core.values[slot].clone() else { continue };
                    self.stats.port_firings += 1;
                    if watched && self.firing_log.len() < self.firing_log_cap {
                        self.firing_log.push(FiringRecord {
                            cycle: self.core.cycle,
                            path: self.paths[comp].clone(),
                            port: port_name.clone(),
                            lane: lane as u32,
                            value: value.clone(),
                        });
                    }
                    if has_listeners {
                        let args = [
                            ("value".to_string(), value),
                            ("lane".to_string(), Datum::Int(lane as i64)),
                            ("cycle".to_string(), Datum::Int(self.core.cycle as i64)),
                        ];
                        self.dispatch(comp, &event, args.to_vec())?;
                    }
                }
            }
        }
        Ok(())
    }

    fn dispatch_declared_events(&mut self) -> Result<(), SimError> {
        for comp in 0..self.comps.len() {
            let mut events = std::mem::take(&mut self.core.states[comp].eval_events);
            events.extend(std::mem::take(&mut self.core.states[comp].eot_events));
            for (event, args) in events {
                let mut named: Vec<(String, Datum)> = args
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (format!("arg{i}"), v))
                    .collect();
                named.push(("cycle".to_string(), Datum::Int(self.core.cycle as i64)));
                self.dispatch(comp, &event, named)?;
            }
        }
        Ok(())
    }

    fn dispatch(
        &mut self,
        comp: usize,
        event: &str,
        args: Vec<(String, Datum)>,
    ) -> Result<(), SimError> {
        let Some(indices) = self.coll_index.get(&(comp, event.to_string())) else {
            return Ok(());
        };
        for &idx in &indices.clone() {
            self.stats.events_dispatched += 1;
            let coll = &mut self.collectors[idx];
            let mut env = BslEnv {
                args: args.iter().cloned().collect(),
                vars: &mut coll.state,
                implicit_zero: true,
            };
            exec(&coll.program, &mut env, self.opts.bsl_max_steps).map_err(|e| {
                SimError::new(format!(
                    "collector on {} event {event}: {}",
                    self.paths[comp], e.message
                ))
            })?;
        }
        Ok(())
    }

    /// Reads the value an output port instance carried in the most recently
    /// completed cycle.
    pub fn peek(&self, path: &str, port: &str, lane: u32) -> Option<Datum> {
        let comp = *self.path_index.get(path)?;
        let pidx = self.port_names[comp].iter().position(|p| p == port)?;
        let slot = *self.core.out_slots[comp].get(pidx)?.get(lane as usize)?;
        self.core.values[slot].clone()
    }

    /// Reads a component's runtime variable.
    pub fn rtv(&self, path: &str, name: &str) -> Option<Datum> {
        let comp = *self.path_index.get(path)?;
        self.core.states[comp].rtvs.get(name).cloned()
    }

    /// Iterates over collector results: (instance path, event, state table).
    pub fn collector_reports(&self) -> Vec<(String, String, &HashMap<String, Datum>)> {
        self.collectors
            .iter()
            .map(|c| (self.paths[c.comp].clone(), c.event.clone(), &c.state))
            .collect()
    }

    /// Starts recording a firing log for instances whose path starts with
    /// `prefix` (visualization/debugging support, §4.5). Call before
    /// stepping; multiple prefixes accumulate. At most `cap` records are
    /// kept (default 100 000).
    pub fn watch(&mut self, prefix: impl Into<String>) {
        self.watch_prefixes.push(prefix.into());
    }

    /// Caps the firing log length.
    pub fn set_firing_log_cap(&mut self, cap: usize) {
        self.firing_log_cap = cap;
    }

    /// The recorded firing log (empty unless [`Simulator::watch`] was used).
    pub fn firing_log(&self) -> &[FiringRecord] {
        &self.firing_log
    }

    /// Convenience: the value of statistic `name` in the first collector on
    /// `path`/`event`.
    pub fn collector_stat(&self, path: &str, event: &str, name: &str) -> Option<Datum> {
        self.collectors
            .iter()
            .find(|c| self.paths[c.comp] == path && c.event == event)
            .and_then(|c| c.state.get(name).cloned())
    }
}
