//! The leaf-component model and behavior registry.
//!
//! In the paper, leaf module behavior lives in BSL `.tar` payloads compiled
//! by LSE's code generator. Our substitute (documented in DESIGN.md) keys
//! Rust implementations of [`Component`] by the module's `tar_file` string
//! in a [`ComponentRegistry`]. The interface preserved from the paper:
//! resolved parameters are forwarded to the behavior, ports carry inferred
//! widths and types, userpoint code customizes computation, and runtime
//! variables hold cross-invocation state.

use std::collections::HashMap;
use std::fmt;

use lss_netlist::{Dir, EventId, KernelClass, ProtocolBinding, RtvId, SrcSpan, UserpointId};
use lss_types::{BudgetError, BudgetKind, Datum, Ty};

use crate::bsl::BslProgram;

/// A port as seen by a component factory: name, direction, inferred width
/// and basic type.
#[derive(Debug, Clone)]
pub struct PortSpec {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: Dir,
    /// Inferred width (number of connected port instances).
    pub width: u32,
    /// Inferred basic type.
    pub ty: Ty,
}

/// Everything a component factory needs to configure a behavior instance.
#[derive(Debug, Clone)]
pub struct CompSpec {
    /// Hierarchical path of the instance (for error messages).
    pub path: String,
    /// Module name the instance came from.
    pub module: String,
    /// Resolved parameter values (after use-based specialization).
    pub params: HashMap<String, Datum>,
    /// Ports in declaration order.
    pub ports: Vec<PortSpec>,
    /// Userpoints compiled to executable BSL.
    pub userpoints: HashMap<String, BslProgram>,
    /// Runtime variables with initial values.
    pub runtime_vars: Vec<(String, Datum)>,
    /// Declared port-protocol contracts (interface automata), in
    /// declaration order. Behaviors consult these for diagnostic context
    /// (group name, annotation span); the engine's opt-in monitor
    /// (`SimOptions::check_protocols`) enforces them.
    pub protocols: Vec<ProtocolBinding>,
}

impl CompSpec {
    /// Index of the named port.
    pub fn port_index(&self, name: &str) -> Result<usize, BuildError> {
        self.ports
            .iter()
            .position(|p| p.name == name)
            .ok_or_else(|| {
                BuildError::new(format!("{}: behavior expects a port `{name}`", self.path))
            })
    }

    /// The named port's spec.
    pub fn port(&self, name: &str) -> Result<&PortSpec, BuildError> {
        Ok(&self.ports[self.port_index(name)?])
    }

    /// Integer parameter accessor with a build-time error on mismatch.
    pub fn int_param(&self, name: &str) -> Result<i64, BuildError> {
        match self.params.get(name) {
            Some(Datum::Int(v)) => Ok(*v),
            Some(other) => Err(BuildError::new(format!(
                "{}: parameter `{name}` should be int, got {other}",
                self.path
            ))),
            None => Err(BuildError::new(format!(
                "{}: missing parameter `{name}`",
                self.path
            ))),
        }
    }

    /// Integer parameter with a fallback.
    pub fn int_param_or(&self, name: &str, default: i64) -> Result<i64, BuildError> {
        match self.params.get(name) {
            None => Ok(default),
            Some(_) => self.int_param(name),
        }
    }

    /// String parameter accessor.
    pub fn str_param_or(&self, name: &str, default: &str) -> Result<String, BuildError> {
        match self.params.get(name) {
            Some(Datum::Str(s)) => Ok(s.clone()),
            Some(other) => Err(BuildError::new(format!(
                "{}: parameter `{name}` should be string, got {other}",
                self.path
            ))),
            None => Ok(default.to_string()),
        }
    }

    /// Boolean parameter (declared `int` in LSS; nonzero = true).
    pub fn flag_param(&self, name: &str, default: bool) -> Result<bool, BuildError> {
        Ok(self.int_param_or(name, default as i64)? != 0)
    }

    /// The protocol binding whose *primary* (data) port is `port`, if the
    /// instance declares one. Behaviors use this to name the violated
    /// group and carry the annotation's source span in runtime protocol
    /// diagnostics.
    pub fn protocol_for_port(&self, port: usize) -> Option<&ProtocolBinding> {
        self.protocols.iter().find(|b| b.primary().index() == port)
    }

    /// Diagnostic context for protocol violations observed on `port`: the
    /// declared group name and annotation span, falling back to the port's
    /// own name (and no span) when the instance declares no contract
    /// there. Feed the result to [`SimError::protocol_violation`].
    pub fn protocol_context(&self, port: usize) -> (String, Option<SrcSpan>) {
        match self.protocol_for_port(port) {
            Some(b) => {
                let s = &b.span;
                let span = if s.file == u32::MAX || (s.file == 0 && s.start == 0 && s.end == 0) {
                    None
                } else {
                    Some(*s)
                };
                (b.group.clone(), span)
            }
            None => (
                self.ports
                    .get(port)
                    .map(|p| p.name.clone())
                    .unwrap_or_else(|| format!("port{port}")),
                None,
            ),
        }
    }
}

/// An error while constructing a simulator from a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError {
    /// What went wrong.
    pub message: String,
}

impl BuildError {
    /// Creates a build error.
    pub fn new(message: impl Into<String>) -> Self {
        BuildError {
            message: message.into(),
        }
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for BuildError {}

/// A runtime error during simulation (userpoint failures, type violations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// What went wrong.
    pub message: String,
    /// Source span of the declaration this error traces back to (today:
    /// the `protocol` annotation a violation breaches), when known.
    pub span: Option<SrcSpan>,
    /// The exhausted resource class when this error is a budget stop
    /// (`LSS4xx`), `None` for ordinary runtime failures. Lets callers —
    /// the `lssc` exit-code contract, the `lssd` response mapper — tell
    /// "your model is wrong" from "give this run a bigger allowance"
    /// without string matching.
    pub budget: Option<BudgetKind>,
}

impl SimError {
    /// Creates a simulation error.
    pub fn new(message: impl Into<String>) -> Self {
        SimError {
            message: message.into(),
            span: None,
            budget: None,
        }
    }

    /// Wraps a resource-budget stop, preserving its `LSS4xx` kind and
    /// appending the raise-the-limit hint.
    pub fn budget(e: BudgetError) -> Self {
        SimError {
            message: format!("{} [{}]; {}", e, e.code(), e.hint()),
            span: None,
            budget: Some(e.kind),
        }
    }

    /// The stable `LSS4xx` code when this error is a budget stop.
    pub fn budget_code(&self) -> Option<&'static str> {
        self.budget.map(BudgetKind::code)
    }

    /// The uniform protocol-violation diagnostic — the runtime counterpart
    /// of the static checker's `LSS105`/`LSS107`. Every credit/handshake
    /// breach, whether raised by a behavior (buffer overflow) or by the
    /// engine's protocol monitor, renders through this constructor so the
    /// message shape is greppable and names the violated transition.
    ///
    /// `group` labels the port group (`<group>` from the annotation, or a
    /// port name when the instance declares no contract); `violated` says
    /// which transition of the discipline was broken.
    pub fn protocol_violation(
        group: impl fmt::Display,
        violated: impl fmt::Display,
        span: Option<SrcSpan>,
    ) -> Self {
        SimError {
            message: format!("protocol violation on group `{group}`: {violated}"),
            span,
            budget: None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SimError {}

/// The per-cycle interface a component uses to talk to the engine.
///
/// Implemented by the engine; a trait keeps `Component` implementations
/// decoupled and easily unit-testable with a mock.
///
/// Named state is addressed two ways. The **dense-ID methods**
/// ([`CompCtx::rtv_by_id`], [`CompCtx::emit_by_id`], ...) index
/// precomputed per-instance tables and do no string work — behaviors
/// resolve names once in [`Component::init`] (via [`CompCtx::rtv_id`],
/// [`CompCtx::event_id`], [`CompCtx::userpoint_id`]) and use the IDs every
/// cycle. The **name-based methods** ([`CompCtx::rtv`], [`CompCtx::emit`],
/// ...) are thin default shims over the ID methods, kept for one-shot
/// access and existing code.
pub trait CompCtx {
    /// Current cycle number (0-based).
    fn cycle(&self) -> u64;
    /// The simulation seed (`SimOptions::seed` in the engine; batch lanes
    /// get one seed each). Behaviors fold it into generated stimulus so
    /// lanes diverge deterministically; contexts without a seed concept
    /// keep the default of 0.
    fn seed(&self) -> i64 {
        0
    }
    /// Reads input `port` lane `lane`. `None` when nothing was sent.
    fn input(&self, port: usize, lane: u32) -> Option<Datum>;
    /// Writes output `port` lane `lane` for this cycle.
    fn set_output(&mut self, port: usize, lane: u32, value: Datum);
    /// Reads back an output lane written earlier this cycle.
    fn output(&self, port: usize, lane: u32) -> Option<Datum>;
    /// The inferred width of `port`.
    fn width(&self, port: usize) -> u32;

    /// Resolves a runtime-variable name to its dense slot, if declared.
    fn rtv_id(&self, name: &str) -> Option<RtvId>;
    /// Resolves a runtime-variable name, creating the slot with `default`
    /// if the model did not declare it (an existing slot keeps its value).
    fn ensure_rtv(&mut self, name: &str, default: Datum) -> RtvId;
    /// Reads a runtime variable by slot.
    fn rtv_by_id(&self, id: RtvId) -> Datum;
    /// Writes a runtime variable by slot.
    fn set_rtv_by_id(&mut self, id: RtvId, value: Datum);

    /// Resolves a userpoint name to its dense index, if the instance
    /// carries it.
    fn userpoint_id(&self, name: &str) -> Option<UserpointId>;
    /// Invokes a userpoint by index with positional arguments (bound to the
    /// declared argument names).
    fn call_userpoint_by_id(&mut self, id: UserpointId, args: &[Datum]) -> Result<Datum, SimError>;

    /// Resolves an event name against the instance's event table (declared
    /// events). `None` means nothing can listen — emission is a no-op.
    fn event_id(&self, name: &str) -> Option<EventId>;
    /// Emits a declared event by table index. Emissions from `eval` are
    /// kept only from the final evaluation of the cycle (fixpoint
    /// re-evaluations discard earlier emissions); emissions from
    /// `end_of_timestep` always stand.
    fn emit_by_id(&mut self, event: EventId, args: Vec<Datum>);

    /// Reads a runtime variable by name.
    ///
    /// # Panics
    ///
    /// Panics if `name` was never declared.
    fn rtv(&self, name: &str) -> Datum {
        match self.rtv_id(name) {
            Some(id) => self.rtv_by_id(id),
            None => panic!("runtime variable `{name}` was never declared"),
        }
    }
    /// Writes a runtime variable by name, creating it if undeclared.
    fn set_rtv(&mut self, name: &str, value: Datum) {
        let id = self.ensure_rtv(name, Datum::Int(0));
        self.set_rtv_by_id(id, value);
    }
    /// True if the instance carries the named userpoint.
    fn has_userpoint(&self, name: &str) -> bool {
        self.userpoint_id(name).is_some()
    }
    /// Invokes a userpoint by name.
    fn call_userpoint(&mut self, name: &str, args: &[Datum]) -> Result<Datum, SimError> {
        match self.userpoint_id(name) {
            Some(id) => self.call_userpoint_by_id(id, args),
            None => Err(SimError::new(format!(
                "no userpoint `{name}` on this instance"
            ))),
        }
    }
    /// Emits a declared event by name. Unknown events are dropped (nothing
    /// could be listening — collectors may only name declared events).
    fn emit(&mut self, event: &str, args: Vec<Datum>) {
        if let Some(id) = self.event_id(event) {
            self.emit_by_id(id, args);
        }
    }
}

/// A leaf hardware behavior.
///
/// The engine drives each cycle in two phases: `eval` computes outputs from
/// inputs and current state (and may run several times until the
/// combinational network settles — it must be a pure function of inputs and
/// state), then `end_of_timestep` commits synchronous state updates once.
pub trait Component {
    /// One-time initialization before cycle 0.
    fn init(&mut self, _ctx: &mut dyn CompCtx) -> Result<(), SimError> {
        Ok(())
    }

    /// Combinational evaluation.
    fn eval(&mut self, ctx: &mut dyn CompCtx) -> Result<(), SimError>;

    /// Synchronous state update at the end of the cycle.
    fn end_of_timestep(&mut self, _ctx: &mut dyn CompCtx) -> Result<(), SimError> {
        Ok(())
    }

    /// Whether `eval` reads the given input port.
    ///
    /// Ports consumed only in `end_of_timestep` (like a register's data
    /// input) should return `false`; this is what lets the static scheduler
    /// break feedback loops at state elements.
    fn input_is_combinational(&self, _port: usize) -> bool {
        true
    }

    /// Whether `eval`'s value on `output` reads the given (combinational)
    /// input port.
    ///
    /// Defaults to "every output reads every combinational input" — the
    /// safe over-approximation. Behaviors whose port paths are independent
    /// (a credit output computed from buffer occupancy alone, a cache
    /// `lower_req` that never reads `lower_resp`) should override this:
    /// the static analyzer's port-granularity cycle detector uses it to
    /// tell a convergent credit handshake from a genuinely unbroken
    /// zero-delay loop.
    fn output_depends_on(&self, _output: usize, input: usize) -> bool {
        self.input_is_combinational(input)
    }

    /// The behavior's kernel lowering for the compiled engine, if any.
    ///
    /// Returning a [`KernelClass`] lets the compiled engine devirtualize
    /// this instance into direct slot reads/writes over the flat value
    /// arena (no vtable, no change-detection snapshots). The description
    /// must mirror `eval`/`end_of_timestep` *exactly* — the kernel
    /// equivalence suite and the differential fuzzer pin the two
    /// implementations against each other. `None` (the default) keeps the
    /// instance on the dyn path; the engine also declines lowerings for
    /// instances inside combinational cycles or carrying userpoints.
    fn kernel_class(&self) -> Option<KernelClass> {
        None
    }
}

/// Factory producing a configured behavior from a spec.
pub type Factory = Box<dyn Fn(&CompSpec) -> Result<Box<dyn Component>, BuildError> + Send + Sync>;

/// Maps `tar_file` keys to behavior factories.
#[derive(Default)]
pub struct ComponentRegistry {
    factories: HashMap<String, Factory>,
}

impl ComponentRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory for `tar_file`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered (two behaviors for one
    /// `tar_file` is a programming error).
    pub fn register(
        &mut self,
        tar_file: impl Into<String>,
        factory: impl Fn(&CompSpec) -> Result<Box<dyn Component>, BuildError> + Send + Sync + 'static,
    ) {
        let key = tar_file.into();
        let prev = self.factories.insert(key.clone(), Box::new(factory));
        assert!(prev.is_none(), "behavior `{key}` registered twice");
    }

    /// Instantiates the behavior for `tar_file`.
    pub fn build(&self, tar_file: &str, spec: &CompSpec) -> Result<Box<dyn Component>, BuildError> {
        match self.factories.get(tar_file) {
            Some(f) => f(spec),
            None => {
                let mut known: Vec<&String> = self.factories.keys().collect();
                known.sort();
                Err(BuildError::new(format!(
                    "{}: no behavior registered for `{tar_file}` (known: {})",
                    spec.path,
                    known
                        .iter()
                        .take(8)
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )))
            }
        }
    }

    /// Number of registered behaviors.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// True if no behaviors are registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

impl fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentRegistry")
            .field("behaviors", &self.factories.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CompSpec {
        CompSpec {
            path: "x".into(),
            module: "m".into(),
            params: [
                ("n".to_string(), Datum::Int(4)),
                ("s".to_string(), Datum::Str("hi".into())),
            ]
            .into_iter()
            .collect(),
            ports: vec![PortSpec {
                name: "in".into(),
                dir: Dir::In,
                width: 2,
                ty: Ty::Int,
            }],
            userpoints: HashMap::new(),
            runtime_vars: vec![],
            protocols: vec![],
        }
    }

    #[test]
    fn spec_accessors() {
        let s = spec();
        assert_eq!(s.port_index("in").unwrap(), 0);
        assert!(s.port_index("out").is_err());
        assert_eq!(s.int_param("n").unwrap(), 4);
        assert_eq!(s.int_param_or("missing", 7).unwrap(), 7);
        assert!(s.int_param("s").is_err());
        assert_eq!(s.str_param_or("s", "d").unwrap(), "hi");
        assert_eq!(s.str_param_or("t", "d").unwrap(), "d");
        assert!(s.flag_param("n", false).unwrap());
        assert!(!s.flag_param("missing", false).unwrap());
    }

    struct Nop;
    impl Component for Nop {
        fn eval(&mut self, _ctx: &mut dyn CompCtx) -> Result<(), SimError> {
            Ok(())
        }
    }

    #[test]
    fn registry_builds_and_reports_unknown() {
        let mut reg = ComponentRegistry::new();
        assert!(reg.is_empty());
        reg.register("corelib/nop.tar", |_spec| {
            Ok(Box::new(Nop) as Box<dyn Component>)
        });
        assert_eq!(reg.len(), 1);
        assert!(reg.build("corelib/nop.tar", &spec()).is_ok());
        let Err(err) = reg.build("corelib/missing.tar", &spec()) else {
            panic!("expected a build error for an unregistered behavior");
        };
        assert!(err.message.contains("no behavior registered"));
        assert!(err.message.contains("corelib/nop.tar"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = ComponentRegistry::new();
        reg.register("a", |_s| Ok(Box::new(Nop) as Box<dyn Component>));
        reg.register("a", |_s| Ok(Box::new(Nop) as Box<dyn Component>));
    }
}
