//! Recursive-descent parser for LSS.
//!
//! The grammar follows the paper's examples:
//!
//! ```text
//! program   := import* (module | stmt)* EOF
//! import    := 'import' (STRING | IDENT) ';'
//! module    := 'module' IDENT '{' stmt* '}' ';'?
//! stmt      := 'parameter' IDENT ('=' expr)? ':' type ';'
//!            | ('inport' | 'outport') IDENT ':' type ';'
//!            | 'instance' IDENT ':' IDENT ';'
//!            | 'var' IDENT (':' type)? ('=' expr)? ';'
//!            | 'runtime' 'var' IDENT ':' type ('=' expr)? ';'
//!            | 'event' IDENT '(' type,* ')' ';'
//!            | 'collector' expr ':' IDENT '=' expr ';'
//!            | 'if' '(' expr ')' block ('else' (block | if))?
//!            | 'for' '(' simple? ';' expr? ';' simple? ')' block
//!            | 'while' '(' expr ')' block
//!            | 'fun' IDENT '(' IDENT,* ')' block
//!            | 'return' expr? ';'
//!            | 'protocol' IDENT '{' protobody '}' ';'?
//!            | 'protocol' IDENT ':' role pspec 'on' expr,* ';'
//!            | block
//!            | simple ';'
//! protobody := ('state' IDENT ';' | IDENT '->' IDENT ':' ('send'|'recv') IDENT ';')*
//! role      := 'producer' | 'consumer'
//! pspec     := 'valid_ready' | 'credit' ('(' expr ')')? | 'req_resp' | IDENT
//! simple    := expr ('=' expr | '->' expr (':' type)? | '::' type)?
//! type      := tprim ('|' tprim)*
//! tprim     := ('int'|'bool'|'float'|'string'|TYPEVAR|structty|instref|upoint|'(' type ')') ('[' expr? ']')*
//! ```

use crate::ast::*;
use crate::diag::{Diagnostic, DiagnosticBag};
use crate::lexer::lex;
use crate::span::{FileId, Span};
use crate::token::{Token, TokenKind};

/// Parses LSS source text into a [`Program`].
///
/// All lex and parse errors are reported into `diags`; the returned program
/// contains whatever could be recovered (callers should check
/// [`DiagnosticBag::has_errors`] before using it).
pub fn parse(file: FileId, text: &str, diags: &mut DiagnosticBag) -> Program {
    let tokens = lex(file, text, diags);
    Parser {
        tokens,
        pos: 0,
        depth: 0,
        diags,
    }
    .program()
}

/// Maximum statement/expression/type nesting depth. Recursive descent
/// recurses roughly ten stack frames per level, so without a cap an
/// adversarial input like `((((...))))` overflows the Rust stack instead
/// of reporting an error. 64 levels fits comfortably inside a 2 MiB
/// thread stack (debug builds included) while real specs stay below 20.
const MAX_NESTING: u32 = 64;

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
    diags: &'a mut DiagnosticBag,
}

impl<'a> Parser<'a> {
    // ---- token-stream helpers -------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> bool {
        if self.eat(kind) {
            true
        } else {
            self.error_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            ));
            false
        }
    }

    fn error_here(&mut self, msg: String) {
        let span = self.span();
        self.diags.push(Diagnostic::error(msg, span));
    }

    fn ident(&mut self) -> Option<Ident> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                Some(Ident::new(name, span))
            }
            other => {
                self.error_here(format!("expected identifier, found {}", other.describe()));
                None
            }
        }
    }

    /// Skips forward past the next `;` (or to a `}` / EOF) for recovery.
    fn recover_to_stmt_end(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::RBrace if depth == 0 => return,
                TokenKind::LBrace | TokenKind::LParen | TokenKind::LBracket => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace | TokenKind::RParen | TokenKind::RBracket => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- grammar productions --------------------------------------------

    fn program(mut self) -> Program {
        let mut program = Program::default();
        while !self.at(&TokenKind::Eof) {
            if self.at(&TokenKind::Import) {
                if !program.modules.is_empty() || !program.top.is_empty() {
                    self.error_here(
                        "`import` declarations must appear before any module or statement"
                            .to_string(),
                    );
                }
                match self.import_decl() {
                    Some(i) => program.imports.push(i),
                    None => self.recover_to_stmt_end(),
                }
            } else if self.at(&TokenKind::Module) {
                if let Some(m) = self.module_decl() {
                    program.modules.push(m);
                }
            } else {
                match self.stmt() {
                    Some(s) => program.top.push(s),
                    None => {
                        self.recover_to_stmt_end();
                        // A stray `}` at top level would stall recovery
                        // forever (recovery stops *at* braces for the sake
                        // of enclosing blocks); consume it here.
                        if self.at(&TokenKind::RBrace) {
                            self.error_here("unmatched `}`".to_string());
                            self.bump();
                        }
                    }
                }
            }
        }
        program
    }

    fn import_decl(&mut self) -> Option<ImportDecl> {
        let start = self.span();
        self.expect(&TokenKind::Import);
        let path = match self.peek().clone() {
            TokenKind::Str(s) => {
                if s.is_empty() {
                    self.error_here("import path must not be empty".to_string());
                    return None;
                }
                self.bump();
                ImportPath::File(s)
            }
            TokenKind::Ident(name) => {
                self.bump();
                ImportPath::Name(name)
            }
            other => {
                self.error_here(format!(
                    "expected a file path string or module file name after `import`, found {}",
                    other.describe()
                ));
                return None;
            }
        };
        let end = self.prev_span();
        if !self.expect(&TokenKind::Semi) {
            return None;
        }
        Some(ImportDecl {
            path,
            span: start.merge(end),
        })
    }

    fn module_decl(&mut self) -> Option<ModuleDecl> {
        let start = self.span();
        self.expect(&TokenKind::Module);
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace);
        let body = self.stmt_list_until_rbrace();
        let end = self.prev_span();
        self.eat(&TokenKind::Semi); // trailing `;` after `}` is optional
        Some(ModuleDecl {
            name,
            body,
            span: start.merge(end),
        })
    }

    fn stmt_list_until_rbrace(&mut self) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            match self.stmt() {
                Some(s) => stmts.push(s),
                None => self.recover_to_stmt_end(),
            }
        }
        self.expect(&TokenKind::RBrace);
        stmts
    }

    fn block(&mut self) -> Vec<Stmt> {
        if !self.expect(&TokenKind::LBrace) {
            return Vec::new();
        }
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            match self.stmt() {
                Some(s) => stmts.push(s),
                None => self.recover_to_stmt_end(),
            }
        }
        self.expect(&TokenKind::RBrace);
        stmts
    }

    /// Enters one nesting level; reports an error and refuses once the
    /// input is deeper than [`MAX_NESTING`].
    fn enter_nested(&mut self) -> bool {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            self.error_here(format!("nesting exceeds {MAX_NESTING} levels"));
            false
        } else {
            true
        }
    }

    fn stmt(&mut self) -> Option<Stmt> {
        if !self.enter_nested() {
            self.depth -= 1;
            return None;
        }
        let stmt = self.stmt_inner();
        self.depth -= 1;
        stmt
    }

    fn stmt_inner(&mut self) -> Option<Stmt> {
        let start = self.span();
        match self.peek() {
            TokenKind::Parameter => self.parameter_stmt(),
            TokenKind::Inport | TokenKind::Outport => self.port_stmt(),
            TokenKind::Instance => self.instance_stmt(),
            TokenKind::Var => self.var_stmt(false),
            TokenKind::Runtime => {
                self.bump();
                self.var_stmt(true)
            }
            TokenKind::Event => self.event_stmt(),
            TokenKind::Collector => self.collector_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::Fun => self.fun_stmt(),
            TokenKind::Protocol => self.protocol_stmt(),
            TokenKind::Return => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi);
                Some(Stmt::Return(value, start.merge(self.prev_span())))
            }
            TokenKind::LBrace => {
                self.bump();
                let body = self.stmt_list_until_rbrace();
                Some(Stmt::Block(body, start.merge(self.prev_span())))
            }
            TokenKind::Semi => {
                self.bump();
                Some(Stmt::Block(Vec::new(), start))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&TokenKind::Semi);
                Some(s)
            }
        }
    }

    fn parameter_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // parameter
        let name = self.ident()?;
        let default = if self.eat(&TokenKind::Eq) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Colon);
        let ty = self.type_expr()?;
        self.expect(&TokenKind::Semi);
        Some(Stmt::Parameter(ParamDecl {
            name,
            default,
            ty,
            span: start.merge(self.prev_span()),
        }))
    }

    fn port_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        let dir = if self.eat(&TokenKind::Inport) {
            PortDir::In
        } else {
            self.expect(&TokenKind::Outport);
            PortDir::Out
        };
        let name = self.ident()?;
        self.expect(&TokenKind::Colon);
        let ty = self.type_expr()?;
        self.expect(&TokenKind::Semi);
        Some(Stmt::Port(PortDecl {
            dir,
            name,
            ty,
            span: start.merge(self.prev_span()),
        }))
    }

    fn instance_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // instance
        let name = self.ident()?;
        self.expect(&TokenKind::Colon);
        let module = self.ident()?;
        self.expect(&TokenKind::Semi);
        Some(Stmt::Instance(InstanceDecl {
            name,
            module,
            span: start.merge(self.prev_span()),
        }))
    }

    fn var_stmt(&mut self, runtime: bool) -> Option<Stmt> {
        let start = self.span();
        self.expect(&TokenKind::Var);
        let name = self.ident()?;
        let ty = if self.eat(&TokenKind::Colon) {
            Some(self.type_expr()?)
        } else {
            None
        };
        let init = if self.eat(&TokenKind::Eq) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi);
        let span = start.merge(self.prev_span());
        if runtime {
            let Some(ty) = ty else {
                self.diags.push(Diagnostic::error(
                    "runtime variables must declare a type",
                    span,
                ));
                return None;
            };
            Some(Stmt::RuntimeVar(RuntimeVarDecl {
                name,
                ty,
                init,
                span,
            }))
        } else {
            Some(Stmt::Var(VarDecl {
                name,
                ty,
                init,
                span,
            }))
        }
    }

    fn event_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // event
        let name = self.ident()?;
        self.expect(&TokenKind::LParen);
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.type_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen);
        self.expect(&TokenKind::Semi);
        Some(Stmt::Event(EventDecl {
            name,
            args,
            span: start.merge(self.prev_span()),
        }))
    }

    fn collector_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // collector
        let target = self.expr()?;
        self.expect(&TokenKind::Colon);
        let event = self.ident()?;
        self.expect(&TokenKind::Eq);
        let body = self.expr()?;
        self.expect(&TokenKind::Semi);
        Some(Stmt::Collector(CollectorDecl {
            target,
            event,
            body,
            span: start.merge(self.prev_span()),
        }))
    }

    fn if_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // if
        self.expect(&TokenKind::LParen);
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen);
        let then_body = self.block();
        let else_body = if self.eat(&TokenKind::Else) {
            if self.at(&TokenKind::If) {
                match self.if_stmt() {
                    Some(s) => vec![s],
                    None => Vec::new(),
                }
            } else {
                self.block()
            }
        } else {
            Vec::new()
        };
        Some(Stmt::If(IfStmt {
            cond,
            then_body,
            else_body,
            span: start.merge(self.prev_span()),
        }))
    }

    fn for_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // for
        self.expect(&TokenKind::LParen);
        let init = if self.at(&TokenKind::Semi) {
            None
        } else if self.at(&TokenKind::Var) {
            let s = self.var_stmt(false)?; // consumes `;`
            Some(Box::new(s))
        } else {
            let s = self.simple_stmt()?;
            self.expect(&TokenKind::Semi);
            Some(Box::new(s))
        };
        if init.is_none() {
            self.expect(&TokenKind::Semi);
        }
        let cond = if self.at(&TokenKind::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&TokenKind::Semi);
        let step = if self.at(&TokenKind::RParen) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(&TokenKind::RParen);
        let body = self.block();
        Some(Stmt::For(ForStmt {
            init,
            cond,
            step,
            body,
            span: start.merge(self.prev_span()),
        }))
    }

    fn while_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // while
        self.expect(&TokenKind::LParen);
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen);
        let body = self.block();
        Some(Stmt::While(WhileStmt {
            cond,
            body,
            span: start.merge(self.prev_span()),
        }))
    }

    fn fun_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // fun
        let name = self.ident()?;
        self.expect(&TokenKind::LParen);
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen);
        let body = self.block();
        Some(Stmt::Fun(FunDecl {
            name,
            params,
            body,
            span: start.merge(self.prev_span()),
        }))
    }

    /// `protocol name { .. }` (automaton declaration) or
    /// `protocol group : role spec on ports;` (port-group annotation).
    /// `state`, `send`, `recv`, `producer`, `consumer`, and `on` are
    /// contextual identifiers, not keywords.
    fn protocol_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        self.bump(); // protocol
        let name = self.ident()?;
        if self.at(&TokenKind::LBrace) {
            self.bump();
            let (states, transitions) = self.protocol_body()?;
            let end = self.prev_span();
            self.eat(&TokenKind::Semi); // trailing `;` after `}` is optional
            return Some(Stmt::ProtocolDecl(ProtocolDecl {
                name,
                states,
                transitions,
                span: start.merge(end),
            }));
        }
        self.expect(&TokenKind::Colon);
        let role_id = self.ident()?;
        let role = match role_id.name.as_str() {
            "producer" => ProtocolRole::Producer,
            "consumer" => ProtocolRole::Consumer,
            other => {
                self.diags.push(Diagnostic::error(
                    format!("expected `producer` or `consumer`, found `{other}`"),
                    role_id.span,
                ));
                return None;
            }
        };
        let spec = self.protocol_spec()?;
        let on_id = self.ident()?;
        if on_id.name != "on" {
            self.diags.push(Diagnostic::error(
                format!("expected `on`, found `{}`", on_id.name),
                on_id.span,
            ));
            return None;
        }
        let mut ports = Vec::new();
        loop {
            ports.push(self.expr()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semi);
        Some(Stmt::ProtocolAnnot(ProtocolAnnot {
            group: name,
            role,
            spec,
            ports,
            span: start.merge(self.prev_span()),
        }))
    }

    fn protocol_spec(&mut self) -> Option<ProtocolSpecExpr> {
        let id = self.ident()?;
        Some(match id.name.as_str() {
            "valid_ready" => ProtocolSpecExpr::ValidReady,
            "req_resp" => ProtocolSpecExpr::ReqResp,
            "credit" => {
                if self.eat(&TokenKind::LParen) {
                    let count = self.expr()?;
                    self.expect(&TokenKind::RParen);
                    ProtocolSpecExpr::Credit(Some(count))
                } else {
                    ProtocolSpecExpr::Credit(None)
                }
            }
            _ => ProtocolSpecExpr::Named(id),
        })
    }

    fn protocol_body(&mut self) -> Option<(Vec<Ident>, Vec<TransitionDecl>)> {
        let mut states = Vec::new();
        let mut transitions = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let first = self.ident()?;
            if first.name == "state" && matches!(self.peek(), TokenKind::Ident(_)) {
                states.push(self.ident()?);
                self.expect(&TokenKind::Semi);
                continue;
            }
            let tr_start = first.span;
            self.expect(&TokenKind::Arrow);
            let to = self.ident()?;
            self.expect(&TokenKind::Colon);
            let dir_id = self.ident()?;
            let dir = match dir_id.name.as_str() {
                "send" => ProtocolActionDir::Send,
                "recv" => ProtocolActionDir::Recv,
                other => {
                    self.diags.push(Diagnostic::error(
                        format!("expected `send` or `recv`, found `{other}`"),
                        dir_id.span,
                    ));
                    return None;
                }
            };
            let action = self.ident()?;
            self.expect(&TokenKind::Semi);
            transitions.push(TransitionDecl {
                from: first,
                to,
                dir,
                action,
                span: tr_start.merge(self.prev_span()),
            });
        }
        self.expect(&TokenKind::RBrace);
        Some((states, transitions))
    }

    /// An expression statement, assignment, connection, or explicit type
    /// instantiation — everything that starts with an expression.
    fn simple_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        let first = self.expr()?;
        if self.eat(&TokenKind::Eq) {
            let value = self.expr()?;
            return Some(Stmt::Assign(AssignStmt {
                target: first,
                value,
                span: start.merge(self.prev_span()),
            }));
        }
        if self.eat(&TokenKind::Arrow) {
            let dst = self.expr()?;
            let ty = if self.eat(&TokenKind::Colon) {
                Some(self.type_expr()?)
            } else {
                None
            };
            return Some(Stmt::Connect(ConnectStmt {
                src: first,
                dst,
                ty,
                span: start.merge(self.prev_span()),
            }));
        }
        if self.eat(&TokenKind::ColonColon) {
            let ty = self.type_expr()?;
            return Some(Stmt::TypeInstantiation(TypeInstStmt {
                target: first,
                ty,
                span: start.merge(self.prev_span()),
            }));
        }
        Some(Stmt::Expr(first))
    }

    // ---- types ------------------------------------------------------------

    fn type_expr(&mut self) -> Option<TypeExpr> {
        let first = self.type_primary()?;
        if !self.at(&TokenKind::Pipe) {
            return Some(first);
        }
        let mut alts = vec![first];
        while self.eat(&TokenKind::Pipe) {
            alts.push(self.type_primary()?);
        }
        Some(TypeExpr::Disjunction(alts))
    }

    fn type_primary(&mut self) -> Option<TypeExpr> {
        if !self.enter_nested() {
            self.depth -= 1;
            return None;
        }
        let ty = self.type_primary_inner();
        self.depth -= 1;
        ty
    }

    fn type_primary_inner(&mut self) -> Option<TypeExpr> {
        let mut ty = match self.peek().clone() {
            TokenKind::IntTy => {
                self.bump();
                TypeExpr::Int
            }
            TokenKind::BoolTy => {
                self.bump();
                TypeExpr::Bool
            }
            TokenKind::FloatTy => {
                self.bump();
                TypeExpr::Float
            }
            TokenKind::StringTy => {
                self.bump();
                TypeExpr::String
            }
            TokenKind::TypeVar(name) => {
                let span = self.span();
                self.bump();
                TypeExpr::Var(Ident::new(name, span))
            }
            TokenKind::Struct => self.struct_type()?,
            TokenKind::Instance => {
                self.bump();
                self.expect(&TokenKind::Ref);
                let array =
                    if self.at(&TokenKind::LBracket) && self.peek_at(1) == &TokenKind::RBracket {
                        self.bump();
                        self.bump();
                        true
                    } else {
                        false
                    };
                return Some(TypeExpr::InstanceRef { array });
            }
            TokenKind::Userpoint => self.userpoint_type()?,
            TokenKind::LParen => {
                self.bump();
                let inner = self.type_expr()?;
                self.expect(&TokenKind::RParen);
                inner
            }
            other => {
                self.error_here(format!("expected a type, found {}", other.describe()));
                return None;
            }
        };
        // Array suffixes: `t[n]` (fixed length) — may be repeated.
        while self.at(&TokenKind::LBracket) {
            self.bump();
            if self.eat(&TokenKind::RBracket) {
                // `t[]` — dynamically sized compile-time array.
                let len = Expr::new(ExprKind::Int(-1), self.prev_span());
                ty = TypeExpr::Array(Box::new(ty), Box::new(len));
                continue;
            }
            let len = self.expr()?;
            self.expect(&TokenKind::RBracket);
            ty = TypeExpr::Array(Box::new(ty), Box::new(len));
        }
        Some(ty)
    }

    fn struct_type(&mut self) -> Option<TypeExpr> {
        self.expect(&TokenKind::Struct);
        self.expect(&TokenKind::LBrace);
        let mut fields = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let name = self.ident()?;
            self.expect(&TokenKind::Colon);
            let ty = self.type_expr()?;
            self.expect(&TokenKind::Semi);
            fields.push((name, ty));
        }
        self.expect(&TokenKind::RBrace);
        Some(TypeExpr::Struct(fields))
    }

    fn userpoint_type(&mut self) -> Option<TypeExpr> {
        self.expect(&TokenKind::Userpoint);
        self.expect(&TokenKind::LParen);
        let mut args = Vec::new();
        if !self.at(&TokenKind::FatArrow) {
            loop {
                let name = self.ident()?;
                self.expect(&TokenKind::Colon);
                let ty = self.type_expr()?;
                args.push((name, ty));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::FatArrow);
        let ret = self.type_expr()?;
        self.expect(&TokenKind::RParen);
        Some(TypeExpr::Userpoint(UserpointSig {
            args,
            ret: Box::new(ret),
        }))
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Option<Expr> {
        if !self.enter_nested() {
            self.depth -= 1;
            return None;
        }
        let expr = self.ternary();
        self.depth -= 1;
        expr
    }

    fn ternary(&mut self) -> Option<Expr> {
        let cond = self.or_expr()?;
        if !self.eat(&TokenKind::Question) {
            return Some(cond);
        }
        let then = self.expr()?;
        self.expect(&TokenKind::Colon);
        let els = self.expr()?;
        let span = cond.span.merge(els.span);
        Some(Expr::new(
            ExprKind::Ternary(Box::new(cond), Box::new(then), Box::new(els)),
            span,
        ))
    }

    fn binary_level(
        &mut self,
        next: fn(&mut Self) -> Option<Expr>,
        ops: &[(TokenKind, BinOp)],
    ) -> Option<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.at(tok) {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span.merge(rhs.span);
                    lhs = Expr::new(ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)), span);
                    continue 'outer;
                }
            }
            return Some(lhs);
        }
    }

    fn or_expr(&mut self) -> Option<Expr> {
        self.binary_level(Self::and_expr, &[(TokenKind::OrOr, BinOp::Or)])
    }

    fn and_expr(&mut self) -> Option<Expr> {
        self.binary_level(Self::equality, &[(TokenKind::AndAnd, BinOp::And)])
    }

    fn equality(&mut self) -> Option<Expr> {
        self.binary_level(
            Self::relational,
            &[(TokenKind::EqEq, BinOp::Eq), (TokenKind::NotEq, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> Option<Expr> {
        self.binary_level(
            Self::additive,
            &[
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Ge, BinOp::Ge),
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Gt, BinOp::Gt),
            ],
        )
    }

    fn additive(&mut self) -> Option<Expr> {
        self.binary_level(
            Self::multiplicative,
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
        )
    }

    fn multiplicative(&mut self) -> Option<Expr> {
        self.binary_level(
            Self::unary,
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary(&mut self) -> Option<Expr> {
        let start = self.span();
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            let span = start.merge(inner.span);
            return Some(Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(inner)), span));
        }
        if self.eat(&TokenKind::Bang) {
            let inner = self.unary()?;
            let span = start.merge(inner.span);
            return Some(Expr::new(ExprKind::Unary(UnOp::Not, Box::new(inner)), span));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Option<Expr> {
        let mut expr = self.primary()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let field = self.ident()?;
                let span = expr.span.merge(field.span);
                expr = Expr::new(ExprKind::Field(Box::new(expr), field), span);
            } else if self.at(&TokenKind::LBracket) {
                self.bump();
                let index = self.expr()?;
                self.expect(&TokenKind::RBracket);
                let span = expr.span.merge(self.prev_span());
                expr = Expr::new(ExprKind::Index(Box::new(expr), Box::new(index)), span);
            } else if self.at(&TokenKind::LParen) {
                self.bump();
                let mut args = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen);
                let span = expr.span.merge(self.prev_span());
                expr = Expr::new(ExprKind::Call(Box::new(expr), args), span);
            } else {
                return Some(expr);
            }
        }
    }

    fn primary(&mut self) -> Option<Expr> {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                ExprKind::Int(v)
            }
            TokenKind::Float(v) => {
                self.bump();
                ExprKind::Float(v)
            }
            TokenKind::Str(s) => {
                self.bump();
                ExprKind::Str(s)
            }
            TokenKind::True => {
                self.bump();
                ExprKind::Bool(true)
            }
            TokenKind::False => {
                self.bump();
                ExprKind::Bool(false)
            }
            TokenKind::Ident(name) => {
                self.bump();
                ExprKind::Ident(Ident::new(name, start))
            }
            TokenKind::New => return self.new_instance_array(),
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen);
                return Some(inner);
            }
            TokenKind::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket);
                return Some(Expr::new(
                    ExprKind::ArrayLit(elems),
                    start.merge(self.prev_span()),
                ));
            }
            other => {
                self.error_here(format!(
                    "expected an expression, found {}",
                    other.describe()
                ));
                return None;
            }
        };
        Some(Expr::new(kind, start))
    }

    /// `new instance[len](module, "basename")`
    fn new_instance_array(&mut self) -> Option<Expr> {
        let start = self.span();
        self.expect(&TokenKind::New);
        self.expect(&TokenKind::Instance);
        self.expect(&TokenKind::LBracket);
        let len = self.expr()?;
        self.expect(&TokenKind::RBracket);
        self.expect(&TokenKind::LParen);
        let module = self.ident()?;
        self.expect(&TokenKind::Comma);
        let name = self.expr()?;
        self.expect(&TokenKind::RParen);
        let span = start.merge(self.prev_span());
        Some(Expr::new(
            ExprKind::NewInstanceArray {
                len: Box::new(len),
                module,
                name: Box::new(name),
            },
            span,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SourceMap;

    fn parse_ok(src: &str) -> Program {
        let mut map = SourceMap::new();
        let id = map.add_file("t.lss", src);
        let mut diags = DiagnosticBag::new();
        let prog = parse(id, src, &mut diags);
        assert!(!diags.has_errors(), "parse errors:\n{}", diags.render(&map));
        prog
    }

    fn parse_err(src: &str) -> DiagnosticBag {
        let mut map = SourceMap::new();
        let id = map.add_file("t.lss", src);
        let mut diags = DiagnosticBag::new();
        let _ = parse(id, src, &mut diags);
        assert!(diags.has_errors(), "expected parse errors for: {src}");
        diags
    }

    #[test]
    fn parses_both_import_forms() {
        let prog = parse_ok("import \"lib/alu.lss\";\nimport helpers;\ninstance a:alu;\n");
        assert_eq!(prog.imports.len(), 2);
        assert_eq!(
            prog.imports[0].path,
            ImportPath::File("lib/alu.lss".to_string())
        );
        assert_eq!(
            prog.imports[1].path,
            ImportPath::Name("helpers".to_string())
        );
        assert_eq!(prog.imports[1].path.rel_path(), "helpers.lss");
    }

    #[test]
    fn imports_must_precede_declarations() {
        let diags = parse_err("instance a:alu;\nimport \"lib/alu.lss\";\n");
        let rendered = format!("{diags:?}");
        assert!(
            rendered.contains("before any module or statement"),
            "unexpected diagnostics: {rendered}"
        );
    }

    #[test]
    fn empty_and_malformed_import_paths_are_errors() {
        parse_err("import \"\";\n");
        parse_err("import 42;\n");
        parse_err("import \"a.lss\"\n");
    }

    #[test]
    fn parses_figure5_leaf_module() {
        let prog = parse_ok(
            r#"
            module delay {
                parameter initial_state = 0:int;
                inport in:int;
                outport out:int;
                tar_file = "corelib/delay.tar";
            };
            "#,
        );
        assert_eq!(prog.modules.len(), 1);
        let m = &prog.modules[0];
        assert_eq!(m.name.name, "delay");
        assert_eq!(m.body.len(), 4);
        match &m.body[0] {
            Stmt::Parameter(p) => {
                assert_eq!(p.name.name, "initial_state");
                assert!(p.default.is_some());
                assert_eq!(p.ty, TypeExpr::Int);
            }
            other => panic!("expected parameter, got {other:?}"),
        }
        assert!(matches!(&m.body[1], Stmt::Port(p) if p.dir == PortDir::In));
        assert!(matches!(&m.body[2], Stmt::Port(p) if p.dir == PortDir::Out));
        assert!(matches!(&m.body[3], Stmt::Assign(_)));
    }

    #[test]
    fn parses_figure6_instantiation_and_connection() {
        let prog = parse_ok(
            "instance d1:delay;\ninstance d2:delay;\nd1.initial_state = 1;\nd1.out -> d2.in;\n",
        );
        assert_eq!(prog.top.len(), 4);
        assert!(matches!(&prog.top[0], Stmt::Instance(i) if i.name.name == "d1"));
        assert!(matches!(&prog.top[2], Stmt::Assign(_)));
        match &prog.top[3] {
            Stmt::Connect(c) => assert!(c.ty.is_none()),
            other => panic!("expected connect, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure8_delayn() {
        let prog = parse_ok(
            r#"
            module delayn {
                parameter n:int;
                inport in: 'a;
                outport out: 'a;
                var delays:instance ref[];
                delays = new instance[n](delay, "delays");
                var i:int;
                in -> delays[0].in;
                for (i = 1; i < n; i = i + 1) {
                    delays[i-1].out -> delays[i].in;
                }
                delays[n-1].out -> out;
            };
            "#,
        );
        let m = &prog.modules[0];
        assert_eq!(m.name.name, "delayn");
        // parameter, inport, outport, var, assign(new), var, connect, for, connect
        assert_eq!(m.body.len(), 9);
        match &m.body[1] {
            Stmt::Port(p) => assert!(matches!(&p.ty, TypeExpr::Var(v) if v.name == "a")),
            other => panic!("expected port, got {other:?}"),
        }
        match &m.body[3] {
            Stmt::Var(v) => {
                assert_eq!(v.ty, Some(TypeExpr::InstanceRef { array: true }));
            }
            other => panic!("expected var, got {other:?}"),
        }
        match &m.body[4] {
            Stmt::Assign(a) => {
                assert!(matches!(&a.value.kind, ExprKind::NewInstanceArray { .. }));
            }
            other => panic!("expected assign, got {other:?}"),
        }
        assert!(matches!(&m.body[7], Stmt::For(_)));
    }

    #[test]
    fn parses_disjunctive_port_type() {
        let prog = parse_ok("module alu { inport a: int|float; };");
        match &prog.modules[0].body[0] {
            Stmt::Port(p) => match &p.ty {
                TypeExpr::Disjunction(alts) => {
                    assert_eq!(alts, &vec![TypeExpr::Int, TypeExpr::Float]);
                }
                other => panic!("expected disjunction, got {other:?}"),
            },
            other => panic!("expected port, got {other:?}"),
        }
    }

    #[test]
    fn parses_userpoint_parameter() {
        let prog =
            parse_ok("module arb { parameter policy: userpoint(reqs: int, count: int => int); };");
        match &prog.modules[0].body[0] {
            Stmt::Parameter(p) => match &p.ty {
                TypeExpr::Userpoint(sig) => {
                    assert_eq!(sig.args.len(), 2);
                    assert_eq!(sig.args[0].0.name, "reqs");
                    assert_eq!(*sig.ret, TypeExpr::Int);
                }
                other => panic!("expected userpoint type, got {other:?}"),
            },
            other => panic!("expected parameter, got {other:?}"),
        }
    }

    #[test]
    fn parses_struct_and_array_types() {
        let prog = parse_ok("module m { inport a: struct { x:int; y:float[4]; }; };");
        match &prog.modules[0].body[0] {
            Stmt::Port(p) => match &p.ty {
                TypeExpr::Struct(fields) => {
                    assert_eq!(fields.len(), 2);
                    assert!(matches!(&fields[1].1, TypeExpr::Array(..)));
                }
                other => panic!("expected struct, got {other:?}"),
            },
            other => panic!("expected port, got {other:?}"),
        }
    }

    #[test]
    fn parses_connection_annotation_and_explicit_instantiation() {
        let prog = parse_ok("a.out -> b.in : int;\nb.out :: float;\n");
        match &prog.top[0] {
            Stmt::Connect(c) => assert_eq!(c.ty, Some(TypeExpr::Int)),
            other => panic!("expected connect, got {other:?}"),
        }
        match &prog.top[1] {
            Stmt::TypeInstantiation(t) => assert_eq!(t.ty, TypeExpr::Float),
            other => panic!("expected type instantiation, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain_and_while() {
        let prog = parse_ok(
            "module m { var x:int = 0; if (x < 1) { x = 1; } else if (x < 2) { x = 2; } else { x = 3; } while (x > 0) { x = x - 1; } };",
        );
        let m = &prog.modules[0];
        assert!(matches!(&m.body[1], Stmt::If(i) if i.else_body.len() == 1));
        assert!(matches!(&m.body[2], Stmt::While(_)));
    }

    #[test]
    fn parses_runtime_var_event_collector() {
        let prog = parse_ok(
            r#"
            module bp {
                runtime var hits:int = 0;
                event predicted(int, bool);
            };
            instance b:bp;
            collector b : predicted = "hits = hits + 1";
            "#,
        );
        let m = &prog.modules[0];
        assert!(matches!(&m.body[0], Stmt::RuntimeVar(v) if v.name.name == "hits"));
        assert!(matches!(&m.body[1], Stmt::Event(e) if e.args.len() == 2));
        assert!(matches!(&prog.top[1], Stmt::Collector(_)));
    }

    #[test]
    fn parses_operator_precedence() {
        let prog = parse_ok("var x:int = 1 + 2 * 3 < 7 && true ? 1 : 0;");
        match &prog.top[0] {
            Stmt::Var(v) => {
                let init = v.init.as_ref().unwrap();
                // Top node must be the ternary.
                assert!(matches!(&init.kind, ExprKind::Ternary(..)));
            }
            other => panic!("expected var, got {other:?}"),
        }
    }

    #[test]
    fn parses_fun_and_return() {
        let prog = parse_ok("fun twice(x) { return x * 2; }\nvar y:int = twice(21);");
        assert!(matches!(&prog.top[0], Stmt::Fun(f) if f.params.len() == 1));
    }

    #[test]
    fn parses_calls_and_paths() {
        let prog = parse_ok("LSS_connect_bus(gen.out, delay3.in, 5);");
        match &prog.top[0] {
            Stmt::Expr(e) => match &e.kind {
                ExprKind::Call(callee, args) => {
                    assert_eq!(callee.as_ident().unwrap().name, "LSS_connect_bus");
                    assert_eq!(args.len(), 3);
                }
                other => panic!("expected call, got {other:?}"),
            },
            other => panic!("expected expr stmt, got {other:?}"),
        }
    }

    #[test]
    fn error_on_missing_semicolon_recovers() {
        let diags = parse_err("instance a:delay\ninstance b:delay;");
        assert!(diags.iter().any(|d| d.message.contains("expected `;`")));
    }

    #[test]
    fn error_on_bad_type() {
        parse_err("module m { inport a: 3; };");
    }

    #[test]
    fn error_on_unclosed_module_body() {
        parse_err("module m { inport a: int;");
    }

    #[test]
    fn parses_port_index_connection() {
        let prog = parse_ok("a.out[2] -> b.in[0];");
        match &prog.top[0] {
            Stmt::Connect(c) => {
                assert!(matches!(&c.src.kind, ExprKind::Index(..)));
                assert!(matches!(&c.dst.kind, ExprKind::Index(..)));
            }
            other => panic!("expected connect, got {other:?}"),
        }
    }

    #[test]
    fn parses_width_access() {
        let prog =
            parse_ok("module m { inport in:'a; outport out:'a; if (out.width < in.width) { } };");
        assert!(matches!(&prog.modules[0].body[2], Stmt::If(_)));
    }

    #[test]
    fn empty_statement_is_tolerated() {
        let prog = parse_ok(";;");
        assert_eq!(prog.top.len(), 2);
    }

    #[test]
    fn deep_expression_nesting_errors_instead_of_overflowing() {
        let depth = 5_000;
        let src = format!("var x:int = {}1{};", "(".repeat(depth), ")".repeat(depth));
        let diags = parse_err(&src);
        assert!(
            diags.iter().any(|d| d.message.contains("nesting exceeds")),
            "expected a nesting diagnostic"
        );
    }

    #[test]
    fn deep_statement_nesting_errors_instead_of_overflowing() {
        let depth = 5_000;
        let src = format!(
            "{}var x:int = 1;{}",
            "if (true) { ".repeat(depth),
            "}".repeat(depth)
        );
        let diags = parse_err(&src);
        assert!(diags.iter().any(|d| d.message.contains("nesting exceeds")));
    }

    #[test]
    fn deep_type_nesting_errors_instead_of_overflowing() {
        let depth = 5_000;
        let src = format!(
            "var x:{}int{} = 1;",
            "struct { f: ".repeat(depth),
            "; }".repeat(depth)
        );
        let diags = parse_err(&src);
        assert!(diags.iter().any(|d| d.message.contains("nesting exceeds")));
    }

    #[test]
    fn parses_protocol_declaration() {
        let prog = parse_ok(
            r#"
            protocol handshake {
                state idle;
                state sent;
                idle -> sent : send item;
                sent -> idle : recv ack;
            };
            "#,
        );
        match &prog.top[0] {
            Stmt::ProtocolDecl(p) => {
                assert_eq!(p.name.name, "handshake");
                assert_eq!(p.states.len(), 2);
                assert_eq!(p.states[0].name, "idle");
                assert_eq!(p.transitions.len(), 2);
                assert_eq!(p.transitions[0].dir, ProtocolActionDir::Send);
                assert_eq!(p.transitions[0].action.name, "item");
                assert_eq!(p.transitions[1].dir, ProtocolActionDir::Recv);
            }
            other => panic!("expected protocol decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_protocol_annotations() {
        let prog = parse_ok(
            r#"
            module queue {
                parameter depth = 8:int;
                inport in:'a;
                outport credit:int;
                protocol ins : consumer credit(depth) on in, credit;
                protocol outs : producer credit on out, credit_in;
            };
            protocol flood : producer valid_ready on q.in;
            protocol mem : consumer req_resp on c.req, c.resp;
            protocol custom : producer loopy on q.out;
            "#,
        );
        let m = &prog.modules[0];
        match &m.body[3] {
            Stmt::ProtocolAnnot(a) => {
                assert_eq!(a.group.name, "ins");
                assert_eq!(a.role, ProtocolRole::Consumer);
                assert!(matches!(&a.spec, ProtocolSpecExpr::Credit(Some(_))));
                assert_eq!(a.ports.len(), 2);
            }
            other => panic!("expected protocol annot, got {other:?}"),
        }
        assert!(matches!(
            &m.body[4],
            Stmt::ProtocolAnnot(a) if matches!(a.spec, ProtocolSpecExpr::Credit(None))
        ));
        assert!(matches!(
            &prog.top[0],
            Stmt::ProtocolAnnot(a) if a.spec == ProtocolSpecExpr::ValidReady && a.ports.len() == 1
        ));
        assert!(matches!(
            &prog.top[1],
            Stmt::ProtocolAnnot(a) if a.spec == ProtocolSpecExpr::ReqResp
        ));
        assert!(matches!(
            &prog.top[2],
            Stmt::ProtocolAnnot(a)
                if matches!(&a.spec, ProtocolSpecExpr::Named(n) if n.name == "loopy")
        ));
    }

    #[test]
    fn error_on_bad_protocol_role_and_direction() {
        let diags = parse_err("protocol g : router credit on a.b;");
        assert!(diags
            .iter()
            .any(|d| d.message.contains("expected `producer` or `consumer`")));
        let diags = parse_err("protocol p { state s; s -> s : push x; };");
        assert!(diags
            .iter()
            .any(|d| d.message.contains("expected `send` or `recv`")));
    }

    #[test]
    fn nesting_under_the_cap_still_parses() {
        let depth = 50;
        let src = format!("var x:int = {}1{};", "(".repeat(depth), ")".repeat(depth));
        parse_ok(&src);
    }
}
