//! Abstract syntax tree for LSS programs.
//!
//! The shapes here follow the paper's figures: module declarations with
//! `parameter` / `inport` / `outport` / `userpoint` interfaces (Figures 5, 8,
//! 10, 12), instance creation and nominal parameter assignment (Figures 6,
//! 9, 11), connections with `->`, imperative control flow, and
//! `new instance[n](mod, "name")` instance arrays.

use crate::span::Span;

/// An identifier with its source location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The identifier text.
    pub name: String,
    /// Where it appeared.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier.
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }
}

impl std::fmt::Display for Ident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// How an `import` names the file it pulls in.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ImportPath {
    /// `import "lib/foo.lss";` — a (relative) file path, verbatim.
    File(String),
    /// `import foo;` — shorthand for `import "foo.lss";` next to the
    /// importing file.
    Name(String),
}

impl ImportPath {
    /// The relative file path the import resolves against, e.g.
    /// `"lib/foo.lss"` or `"foo.lss"`.
    pub fn rel_path(&self) -> String {
        match self {
            ImportPath::File(p) => p.clone(),
            ImportPath::Name(n) => format!("{n}.lss"),
        }
    }
}

impl std::fmt::Display for ImportPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportPath::File(p) => write!(f, "\"{p}\""),
            ImportPath::Name(n) => write!(f, "{n}"),
        }
    }
}

/// An `import "path";` / `import name;` declaration. Imports bring the
/// target file's module templates (and top-level `fun` / `protocol`
/// declarations) into scope; they do not run its top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportDecl {
    /// What is imported.
    pub path: ImportPath,
    /// Where the declaration appeared.
    pub span: Span,
}

/// A complete LSS specification: module declarations plus the top-level
/// statement list (the "main" elaboration body, `S0` in the paper's §6.2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Files this program imports (multi-file projects).
    pub imports: Vec<ImportDecl>,
    /// Module templates declared in this program.
    pub modules: Vec<ModuleDecl>,
    /// Top-level statements executed to elaborate the model.
    pub top: Vec<Stmt>,
}

/// A module template declaration (`module name { ... };`).
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleDecl {
    /// Template name.
    pub name: Ident,
    /// Constructor body: interface declarations and elaboration code.
    pub body: Vec<Stmt>,
    /// Span of the whole declaration.
    pub span: Span,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// `inport`
    In,
    /// `outport`
    Out,
}

impl std::fmt::Display for PortDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortDir::In => write!(f, "inport"),
            PortDir::Out => write!(f, "outport"),
        }
    }
}

/// A statement inside a module body or at top level.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `parameter name = default : type;` — `default` optional.
    Parameter(ParamDecl),
    /// `inport name : scheme;` / `outport name : scheme;`
    Port(PortDecl),
    /// `instance name : module;`
    Instance(InstanceDecl),
    /// `var name : type = init;` — compile-time variable.
    Var(VarDecl),
    /// `runtime var name : type = init;` — simulation-time state (§4.3).
    RuntimeVar(RuntimeVarDecl),
    /// `event name(type, ...);` — declared instrumentation event (§4.5).
    Event(EventDecl),
    /// `collector path : event = "bsl";` — aspect-style probe (§4.5).
    Collector(CollectorDecl),
    /// `lvalue = expr;`
    Assign(AssignStmt),
    /// `src -> dst;` or `src -> dst : scheme;`
    Connect(ConnectStmt),
    /// `path :: type;` — explicit type instantiation.
    TypeInstantiation(TypeInstStmt),
    /// Bare expression statement (typically a builtin call).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If(IfStmt),
    /// `for (init; cond; step) { .. }`
    For(ForStmt),
    /// `while (cond) { .. }`
    While(WhileStmt),
    /// `{ .. }`
    Block(Vec<Stmt>, Span),
    /// `return expr;` — only inside `fun` bodies.
    Return(Option<Expr>, Span),
    /// `fun name(a, b) { .. }` — compile-time helper function.
    Fun(FunDecl),
    /// `protocol name { state s; s -> t : send a; .. }` — automaton decl.
    ProtocolDecl(ProtocolDecl),
    /// `protocol group : role spec on ports;` — port-group annotation.
    ProtocolAnnot(ProtocolAnnot),
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Parameter(d) => d.span,
            Stmt::Port(d) => d.span,
            Stmt::Instance(d) => d.span,
            Stmt::Var(d) => d.span,
            Stmt::RuntimeVar(d) => d.span,
            Stmt::Event(d) => d.span,
            Stmt::Collector(d) => d.span,
            Stmt::Assign(d) => d.span,
            Stmt::Connect(d) => d.span,
            Stmt::TypeInstantiation(d) => d.span,
            Stmt::Expr(e) => e.span,
            Stmt::If(d) => d.span,
            Stmt::For(d) => d.span,
            Stmt::While(d) => d.span,
            Stmt::Block(_, s) => *s,
            Stmt::Return(_, s) => *s,
            Stmt::Fun(d) => d.span,
            Stmt::ProtocolDecl(d) => d.span,
            Stmt::ProtocolAnnot(d) => d.span,
        }
    }
}

/// Direction of a protocol transition's action: the side declaring the
/// automaton either sends (`!`/`send`) or receives (`?`/`recv`) the action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolActionDir {
    /// The declaring side emits the action.
    Send,
    /// The declaring side consumes the action.
    Recv,
}

impl std::fmt::Display for ProtocolActionDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolActionDir::Send => write!(f, "send"),
            ProtocolActionDir::Recv => write!(f, "recv"),
        }
    }
}

/// One transition in an explicit protocol automaton:
/// `from -> to : send action;` (or `recv`).
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionDecl {
    /// Source state.
    pub from: Ident,
    /// Destination state.
    pub to: Ident,
    /// Whether the declaring side sends or receives.
    pub dir: ProtocolActionDir,
    /// The named action carried on the channel.
    pub action: Ident,
    /// Whole-transition span.
    pub span: Span,
}

/// A named interface automaton declaration:
/// `protocol name { state s0; state s1; s0 -> s1 : send item; ... };`
/// The first declared state is the initial state.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolDecl {
    /// Automaton name, referenced by annotations.
    pub name: Ident,
    /// Declared states (first is initial).
    pub states: Vec<Ident>,
    /// Transitions between declared states.
    pub transitions: Vec<TransitionDecl>,
    /// Whole-declaration span.
    pub span: Span,
}

/// The protocol specification an annotation attaches to a port group:
/// a built-in template or a reference to a declared automaton.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolSpecExpr {
    /// `valid_ready` — one item per ready handshake.
    ValidReady,
    /// `credit` (adaptive) or `credit(n)` — credit-based flow control with
    /// an optional compile-time credit count.
    Credit(Option<Expr>),
    /// `req_resp` — strictly alternating request/response.
    ReqResp,
    /// A named `protocol { .. }` automaton declared elsewhere.
    Named(Ident),
}

/// A port-group protocol annotation:
/// `protocol group : producer credit(depth) on in, credit;`
/// The first port is the group's primary (data) port; any further ports
/// form the reverse channel (credit return / ready).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolAnnot {
    /// Group name (diagnostic label; unique per instance).
    pub group: Ident,
    /// `producer` or `consumer`.
    pub role: ProtocolRole,
    /// The automaton template or named automaton.
    pub spec: ProtocolSpecExpr,
    /// Annotated ports (same-instance port expressions; first is primary).
    pub ports: Vec<Expr>,
    /// Whole-annotation span.
    pub span: Span,
}

/// Which side of a connection a protocol annotation describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolRole {
    /// The group drives data into the connection.
    Producer,
    /// The group accepts data from the connection.
    Consumer,
}

impl std::fmt::Display for ProtocolRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolRole::Producer => write!(f, "producer"),
            ProtocolRole::Consumer => write!(f, "consumer"),
        }
    }
}

/// `parameter name = default : type;`
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name (referenced nominally by users).
    pub name: Ident,
    /// Optional default value.
    pub default: Option<Expr>,
    /// Declared type (may be a `userpoint(..)` signature).
    pub ty: TypeExpr,
    /// Whole-declaration span.
    pub span: Span,
}

/// `inport` / `outport` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    /// Direction.
    pub dir: PortDir,
    /// Port name.
    pub name: Ident,
    /// Type scheme (may contain type variables and disjunctions).
    pub ty: TypeExpr,
    /// Whole-declaration span.
    pub span: Span,
}

/// `instance name : module;`
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceDecl {
    /// Instance name.
    pub name: Ident,
    /// Module template to instantiate.
    pub module: Ident,
    /// Whole-declaration span.
    pub span: Span,
}

/// Compile-time `var` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: Ident,
    /// Optional declared type (checked when present).
    pub ty: Option<TypeExpr>,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Whole-declaration span.
    pub span: Span,
}

/// `runtime var` declaration: state available during simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeVarDecl {
    /// Variable name (visible to userpoint BSL code).
    pub name: Ident,
    /// Value type.
    pub ty: TypeExpr,
    /// Optional initial-value expression (evaluated at compile time).
    pub init: Option<Expr>,
    /// Whole-declaration span.
    pub span: Span,
}

/// `event name(type, ...);`
#[derive(Debug, Clone, PartialEq)]
pub struct EventDecl {
    /// Event name.
    pub name: Ident,
    /// Types of the values sent with each emission.
    pub args: Vec<TypeExpr>,
    /// Whole-declaration span.
    pub span: Span,
}

/// `collector target : event = "bsl code";`
#[derive(Debug, Clone, PartialEq)]
pub struct CollectorDecl {
    /// Instance (path expression) whose events are observed.
    pub target: Expr,
    /// Event name on that instance; the implicit port-firing event for port
    /// `p` is named `p.fire` and written `: p_fire` — see interp docs.
    pub event: Ident,
    /// BSL code run on each emission.
    pub body: Expr,
    /// Whole-declaration span.
    pub span: Span,
}

/// `lvalue = expr;`
#[derive(Debug, Clone, PartialEq)]
pub struct AssignStmt {
    /// Assignment target (identifier, field path, or index).
    pub target: Expr,
    /// Value.
    pub value: Expr,
    /// Whole-statement span.
    pub span: Span,
}

/// `src -> dst;` with optional `: scheme` annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectStmt {
    /// Sending port expression.
    pub src: Expr,
    /// Receiving port expression.
    pub dst: Expr,
    /// Optional connection type annotation.
    pub ty: Option<TypeExpr>,
    /// Whole-statement span.
    pub span: Span,
}

/// `path :: type;` — pins a port's polymorphic type explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeInstStmt {
    /// The port being annotated.
    pub target: Expr,
    /// The annotation.
    pub ty: TypeExpr,
    /// Whole-statement span.
    pub span: Span,
}

/// `if` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct IfStmt {
    /// Condition.
    pub cond: Expr,
    /// Then-branch body.
    pub then_body: Vec<Stmt>,
    /// Else-branch body (empty if absent).
    pub else_body: Vec<Stmt>,
    /// Whole-statement span.
    pub span: Span,
}

/// C-style `for` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ForStmt {
    /// Initialization statement (assignment or var decl), if any.
    pub init: Option<Box<Stmt>>,
    /// Loop condition, if any (absent means `true`).
    pub cond: Option<Expr>,
    /// Step statement, if any.
    pub step: Option<Box<Stmt>>,
    /// Loop body.
    pub body: Vec<Stmt>,
    /// Whole-statement span.
    pub span: Span,
}

/// `while` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct WhileStmt {
    /// Loop condition.
    pub cond: Expr,
    /// Loop body.
    pub body: Vec<Stmt>,
    /// Whole-statement span.
    pub span: Span,
}

/// Compile-time helper function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDecl {
    /// Function name.
    pub name: Ident,
    /// Parameter names (dynamically typed at compile time).
    pub params: Vec<Ident>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Whole-declaration span.
    pub span: Span,
}

/// A type expression / type scheme (§5 grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `float`
    Float,
    /// `string`
    String,
    /// `t[n]` — element type plus compile-time length expression.
    Array(Box<TypeExpr>, Box<Expr>),
    /// `struct { name : type; ... }`
    Struct(Vec<(Ident, TypeExpr)>),
    /// `'a` — a type variable.
    Var(Ident),
    /// `t1 | t2 | ...` — a disjunctive type scheme (component overloading).
    Disjunction(Vec<TypeExpr>),
    /// `instance ref` (`array` true for `instance ref[]`).
    InstanceRef {
        /// Whether this is an array of instance references.
        array: bool,
    },
    /// `userpoint(arg : type, ... => type)` — algorithmic parameter (§4.3).
    Userpoint(UserpointSig),
}

impl TypeExpr {
    /// True if any type variable occurs in the expression.
    pub fn has_vars(&self) -> bool {
        match self {
            TypeExpr::Var(_) => true,
            TypeExpr::Array(t, _) => t.has_vars(),
            TypeExpr::Struct(fields) => fields.iter().any(|(_, t)| t.has_vars()),
            TypeExpr::Disjunction(ts) => ts.iter().any(TypeExpr::has_vars),
            _ => false,
        }
    }

    /// True if any disjunction occurs in the expression.
    pub fn has_disjunction(&self) -> bool {
        match self {
            TypeExpr::Disjunction(_) => true,
            TypeExpr::Array(t, _) => t.has_disjunction(),
            TypeExpr::Struct(fields) => fields.iter().any(|(_, t)| t.has_disjunction()),
            _ => false,
        }
    }
}

/// Signature of a userpoint parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct UserpointSig {
    /// Argument names and types available to the BSL body.
    pub args: Vec<(Ident, TypeExpr)>,
    /// Return type the BSL body must produce.
    pub ret: Box<TypeExpr>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// If this expression is a plain identifier, returns it.
    pub fn as_ident(&self) -> Option<&Ident> {
        match &self.kind {
            ExprKind::Ident(id) => Some(id),
            _ => None,
        }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Identifier reference.
    Ident(Ident),
    /// Field access `base.field` (sub-instance parameters/ports, `p.width`).
    Field(Box<Expr>, Ident),
    /// Index `base[i]` (port instances, arrays).
    Index(Box<Expr>, Box<Expr>),
    /// Call `callee(args)` — builtins and `fun` helpers.
    Call(Box<Expr>, Vec<Expr>),
    /// `new instance[len](module, name)` — instance array creation (Fig. 8).
    NewInstanceArray {
        /// Number of instances.
        len: Box<Expr>,
        /// Module template to instantiate.
        module: Ident,
        /// Base name for the created instances (a string expression).
        name: Box<Expr>,
    },
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `[a, b, c]`
    ArrayLit(Vec<Expr>),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Span {
        Span::synthetic()
    }

    #[test]
    fn type_expr_var_detection() {
        let plain = TypeExpr::Array(
            Box::new(TypeExpr::Int),
            Box::new(Expr::new(ExprKind::Int(4), s())),
        );
        assert!(!plain.has_vars());
        let var = TypeExpr::Struct(vec![(
            Ident::new("x", s()),
            TypeExpr::Var(Ident::new("a", s())),
        )]);
        assert!(var.has_vars());
        assert!(!var.has_disjunction());
        let disj = TypeExpr::Disjunction(vec![TypeExpr::Int, TypeExpr::Float]);
        assert!(disj.has_disjunction());
        assert!(!disj.has_vars());
    }

    #[test]
    fn expr_as_ident() {
        let e = Expr::new(ExprKind::Ident(Ident::new("d1", s())), s());
        assert_eq!(e.as_ident().unwrap().name, "d1");
        let e2 = Expr::new(ExprKind::Int(3), s());
        assert!(e2.as_ident().is_none());
    }

    #[test]
    fn stmt_span_dispatch() {
        let stmt = Stmt::Return(None, s());
        assert!(stmt.span().is_synthetic());
        let blk = Stmt::Block(vec![], s());
        assert!(blk.span().is_synthetic());
    }
}
