//! Hand-written lexer for LSS source text.
//!
//! Comments follow C conventions: `// ...` to end of line and `/* ... */`
//! (non-nesting). String literals support `\"`, `\\`, `\n`, `\t` escapes.

use crate::diag::{Diagnostic, DiagnosticBag};
use crate::span::{FileId, Span};
use crate::token::{Token, TokenKind};

/// Lexes `text` (registered as `file`) into a token vector ending in `Eof`.
///
/// Lexical errors are reported into `diags`; the offending characters are
/// skipped so parsing can continue and report more problems.
pub fn lex(file: FileId, text: &str, diags: &mut DiagnosticBag) -> Vec<Token> {
    Lexer {
        file,
        text,
        bytes: text.as_bytes(),
        pos: 0,
        diags,
    }
    .run()
}

struct Lexer<'a> {
    file: FileId,
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    diags: &'a mut DiagnosticBag,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(b) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: self.span_from(start),
                });
                return tokens;
            };
            let kind = match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'0'..=b'9' => self.number(),
                b'"' => self.string(),
                b'\'' => self.type_var(),
                _ => self.punct(),
            };
            match kind {
                Some(kind) => tokens.push(Token {
                    kind,
                    span: self.span_from(start),
                }),
                None => {
                    // Error already reported; skip one byte to make progress.
                    self.pos += 1;
                }
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn span_from(&self, start: usize) -> Span {
        Span::new(self.file, start as u32, self.pos as u32)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut closed = false;
                    while let Some(b) = self.peek() {
                        if b == b'*' && self.peek2() == Some(b'/') {
                            self.pos += 2;
                            closed = true;
                            break;
                        }
                        self.pos += 1;
                    }
                    if !closed {
                        self.diags.push(Diagnostic::error(
                            "unterminated block comment",
                            self.span_from(start),
                        ));
                    }
                }
                _ => return,
            }
        }
    }

    fn ident(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        while let Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') = self.peek() {
            self.pos += 1;
        }
        let text = &self.text[start..self.pos];
        Some(TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string())))
    }

    fn type_var(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        self.pos += 1; // consume '
        let name_start = self.pos;
        while let Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') = self.peek() {
            self.pos += 1;
        }
        if self.pos == name_start {
            self.diags.push(Diagnostic::error(
                "expected type variable name after `'`",
                self.span_from(start),
            ));
            return None;
        }
        Some(TokenKind::TypeVar(
            self.text[name_start..self.pos].to_string(),
        ))
    }

    fn number(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        // A float has a dot followed by a digit (so `3.x` lexes as `3` `.` `x`).
        let is_float = self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9'));
        if is_float {
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text = &self.text[start..self.pos];
        if is_float {
            match text.parse::<f64>() {
                Ok(v) => Some(TokenKind::Float(v)),
                Err(_) => {
                    self.diags.push(Diagnostic::error(
                        "invalid float literal",
                        self.span_from(start),
                    ));
                    None
                }
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => Some(TokenKind::Int(v)),
                Err(_) => {
                    self.diags.push(Diagnostic::error(
                        "integer literal out of range",
                        self.span_from(start),
                    ));
                    None
                }
            }
        }
    }

    fn string(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    self.diags.push(Diagnostic::error(
                        "unterminated string literal",
                        self.span_from(start),
                    ));
                    return None;
                }
                Some(b'"') => return Some(TokenKind::Str(value)),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => value.push('"'),
                    Some(b'\\') => value.push('\\'),
                    Some(b'n') => value.push('\n'),
                    Some(b't') => value.push('\t'),
                    other => {
                        self.diags.push(Diagnostic::error(
                            format!(
                                "unknown escape `\\{}`",
                                other.map(|b| b as char).unwrap_or(' ')
                            ),
                            self.span_from(start),
                        ));
                    }
                },
                Some(b) => {
                    // Collect UTF-8 continuation bytes verbatim.
                    value.push(b as char);
                }
            }
        }
    }

    fn punct(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        let b = self.bump().expect("punct called at eof");
        let two = |l: &mut Self, second: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == Some(second) {
                l.pos += 1;
                yes
            } else {
                no
            }
        };
        Some(match b {
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b'?' => TokenKind::Question,
            b'+' => TokenKind::Plus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b':' => two(self, b':', TokenKind::ColonColon, TokenKind::Colon),
            b'!' => two(self, b'=', TokenKind::NotEq, TokenKind::Bang),
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'-' => two(self, b'>', TokenKind::Arrow, TokenKind::Minus),
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::EqEq
                } else if self.peek() == Some(b'>') {
                    self.pos += 1;
                    TokenKind::FatArrow
                } else {
                    TokenKind::Eq
                }
            }
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.pos += 1;
                    TokenKind::AndAnd
                } else {
                    self.diags
                        .push(Diagnostic::error("expected `&&`", self.span_from(start)));
                    return None;
                }
            }
            b'|' => two(self, b'|', TokenKind::OrOr, TokenKind::Pipe),
            other => {
                self.diags.push(Diagnostic::error(
                    format!("unexpected character `{}`", other as char),
                    self.span_from(start),
                ));
                return None;
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SourceMap;

    fn lex_ok(src: &str) -> Vec<TokenKind> {
        let mut map = SourceMap::new();
        let id = map.add_file("t.lss", src);
        let mut diags = DiagnosticBag::new();
        let toks = lex(id, src, &mut diags);
        assert!(
            !diags.has_errors(),
            "unexpected lex errors: {}",
            diags.render(&map)
        );
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_module_header() {
        use TokenKind::*;
        let toks = lex_ok("module delay { inport in:int; }");
        assert_eq!(
            toks,
            vec![
                Module,
                Ident("delay".into()),
                LBrace,
                Inport,
                Ident("in".into()),
                Colon,
                IntTy,
                Semi,
                RBrace,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_connection_and_arrow() {
        use TokenKind::*;
        let toks = lex_ok("d1.out -> d2.in;");
        assert_eq!(
            toks,
            vec![
                Ident("d1".into()),
                Dot,
                Ident("out".into()),
                Arrow,
                Ident("d2".into()),
                Dot,
                Ident("in".into()),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_type_variables_and_disjunction() {
        use TokenKind::*;
        let toks = lex_ok("inport a: 'a | int;");
        assert_eq!(
            toks,
            vec![
                Inport,
                Ident("a".into()),
                Colon,
                TypeVar("a".into()),
                Pipe,
                IntTy,
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        use TokenKind::*;
        assert_eq!(lex_ok("42 3.5 0"), vec![Int(42), Float(3.5), Int(0), Eof]);
        // `3.x` must not be a float: it is member access on an int.
        assert_eq!(lex_ok("3.x"), vec![Int(3), Dot, Ident("x".into()), Eof]);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        use TokenKind::*;
        assert_eq!(
            lex_ok(r#""corelib/delay.tar" "a\"b\n""#),
            vec![Str("corelib/delay.tar".into()), Str("a\"b\n".into()), Eof]
        );
    }

    #[test]
    fn skips_comments() {
        use TokenKind::*;
        let toks = lex_ok("a // line\n /* block\n over lines */ b");
        assert_eq!(toks, vec![Ident("a".into()), Ident("b".into()), Eof]);
    }

    #[test]
    fn lexes_operators() {
        use TokenKind::*;
        assert_eq!(
            lex_ok("== != <= >= && || = < > ! :: => ? %"),
            vec![
                EqEq, NotEq, Le, Ge, AndAnd, OrOr, Eq, Lt, Gt, Bang, ColonColon, FatArrow,
                Question, Percent, Eof
            ]
        );
    }

    #[test]
    fn reports_unterminated_string() {
        let mut map = SourceMap::new();
        let id = map.add_file("t.lss", "\"abc");
        let mut diags = DiagnosticBag::new();
        let toks = lex(id, "\"abc", &mut diags);
        assert!(diags.has_errors());
        assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
    }

    #[test]
    fn reports_unknown_character_but_continues() {
        let mut map = SourceMap::new();
        let id = map.add_file("t.lss", "a # b");
        let mut diags = DiagnosticBag::new();
        let toks = lex(id, "a # b", &mut diags);
        assert!(diags.has_errors());
        let kinds: Vec<_> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_are_accurate() {
        let mut map = SourceMap::new();
        let src = "module  delay";
        let id = map.add_file("t.lss", src);
        let mut diags = DiagnosticBag::new();
        let toks = lex(id, src, &mut diags);
        assert_eq!(
            &src[toks[0].span.start as usize..toks[0].span.end as usize],
            "module"
        );
        assert_eq!(
            &src[toks[1].span.start as usize..toks[1].span.end as usize],
            "delay"
        );
    }
}
