//! Pretty-printer that renders an AST back to canonical LSS source.
//!
//! Used for debugging, golden tests, and the line-count experiment (§7),
//! which compares specification sizes in a normalized format.

use std::fmt::Write;

use crate::ast::*;

/// Renders a whole program as canonical LSS source.
pub fn program_to_string(program: &Program) -> String {
    let mut p = Printer::default();
    for import in &program.imports {
        let _ = writeln!(p.out, "import {};", import.path);
    }
    if !program.imports.is_empty() {
        p.out.push('\n');
    }
    for module in &program.modules {
        p.module(module);
        p.out.push('\n');
    }
    for stmt in &program.top {
        p.stmt(stmt);
    }
    p.out
}

/// Renders a single statement as canonical LSS source.
pub fn stmt_to_string(stmt: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(stmt);
    p.out
}

/// Renders an expression as canonical LSS source.
pub fn expr_to_string(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(expr);
    p.out
}

/// Renders a type expression as canonical LSS source.
pub fn type_to_string(ty: &TypeExpr) -> String {
    let mut p = Printer::default();
    p.ty(ty);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn module(&mut self, m: &ModuleDecl) {
        self.line_start();
        let _ = writeln!(self.out, "module {} {{", m.name);
        self.indent += 1;
        for stmt in &m.body {
            self.stmt(stmt);
        }
        self.indent -= 1;
        self.line_start();
        self.out.push_str("};\n");
    }

    fn body(&mut self, stmts: &[Stmt]) {
        self.out.push_str("{\n");
        self.indent += 1;
        for s in stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line_start();
        self.out.push('}');
    }

    fn stmt(&mut self, stmt: &Stmt) {
        self.line_start();
        match stmt {
            Stmt::Parameter(p) => {
                let _ = write!(self.out, "parameter {}", p.name);
                if let Some(d) = &p.default {
                    self.out.push_str(" = ");
                    self.expr(d);
                }
                self.out.push_str(" : ");
                self.ty(&p.ty);
                self.out.push_str(";\n");
            }
            Stmt::Port(p) => {
                let _ = write!(self.out, "{} {} : ", p.dir, p.name);
                self.ty(&p.ty);
                self.out.push_str(";\n");
            }
            Stmt::Instance(i) => {
                let _ = writeln!(self.out, "instance {} : {};", i.name, i.module);
            }
            Stmt::Var(v) => {
                let _ = write!(self.out, "var {}", v.name);
                if let Some(t) = &v.ty {
                    self.out.push_str(" : ");
                    self.ty(t);
                }
                if let Some(e) = &v.init {
                    self.out.push_str(" = ");
                    self.expr(e);
                }
                self.out.push_str(";\n");
            }
            Stmt::RuntimeVar(v) => {
                let _ = write!(self.out, "runtime var {} : ", v.name);
                self.ty(&v.ty);
                if let Some(e) = &v.init {
                    self.out.push_str(" = ");
                    self.expr(e);
                }
                self.out.push_str(";\n");
            }
            Stmt::Event(e) => {
                let _ = write!(self.out, "event {}(", e.name);
                for (i, t) in e.args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.ty(t);
                }
                self.out.push_str(");\n");
            }
            Stmt::Collector(c) => {
                self.out.push_str("collector ");
                self.expr(&c.target);
                let _ = write!(self.out, " : {} = ", c.event);
                self.expr(&c.body);
                self.out.push_str(";\n");
            }
            Stmt::Assign(a) => {
                self.expr(&a.target);
                self.out.push_str(" = ");
                self.expr(&a.value);
                self.out.push_str(";\n");
            }
            Stmt::Connect(c) => {
                self.expr(&c.src);
                self.out.push_str(" -> ");
                self.expr(&c.dst);
                if let Some(t) = &c.ty {
                    self.out.push_str(" : ");
                    self.ty(t);
                }
                self.out.push_str(";\n");
            }
            Stmt::TypeInstantiation(t) => {
                self.expr(&t.target);
                self.out.push_str(" :: ");
                self.ty(&t.ty);
                self.out.push_str(";\n");
            }
            Stmt::Expr(e) => {
                self.expr(e);
                self.out.push_str(";\n");
            }
            Stmt::If(i) => {
                self.out.push_str("if (");
                self.expr(&i.cond);
                self.out.push_str(") ");
                self.body(&i.then_body);
                if !i.else_body.is_empty() {
                    self.out.push_str(" else ");
                    self.body(&i.else_body);
                }
                self.out.push('\n');
            }
            Stmt::For(f) => {
                self.out.push_str("for (");
                if let Some(init) = &f.init {
                    let s = stmt_to_string(init);
                    self.out.push_str(s.trim_end().trim_end_matches(';'));
                }
                self.out.push_str("; ");
                if let Some(c) = &f.cond {
                    self.expr(c);
                }
                self.out.push_str("; ");
                if let Some(step) = &f.step {
                    let s = stmt_to_string(step);
                    self.out.push_str(s.trim_end().trim_end_matches(';'));
                }
                self.out.push_str(") ");
                self.body(&f.body);
                self.out.push('\n');
            }
            Stmt::While(w) => {
                self.out.push_str("while (");
                self.expr(&w.cond);
                self.out.push_str(") ");
                self.body(&w.body);
                self.out.push('\n');
            }
            Stmt::Block(stmts, _) => {
                self.body(stmts);
                self.out.push('\n');
            }
            Stmt::Return(e, _) => {
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e);
                }
                self.out.push_str(";\n");
            }
            Stmt::Fun(f) => {
                let _ = write!(self.out, "fun {}(", f.name);
                for (i, p) in f.params.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    let _ = write!(self.out, "{p}");
                }
                self.out.push_str(") ");
                self.body(&f.body);
                self.out.push('\n');
            }
            Stmt::ProtocolDecl(p) => {
                let _ = writeln!(self.out, "protocol {} {{", p.name);
                self.indent += 1;
                for s in &p.states {
                    self.line_start();
                    let _ = writeln!(self.out, "state {s};");
                }
                for t in &p.transitions {
                    self.line_start();
                    let _ = writeln!(self.out, "{} -> {} : {} {};", t.from, t.to, t.dir, t.action);
                }
                self.indent -= 1;
                self.line_start();
                self.out.push_str("};\n");
            }
            Stmt::ProtocolAnnot(a) => {
                let _ = write!(self.out, "protocol {} : {} ", a.group, a.role);
                match &a.spec {
                    ProtocolSpecExpr::ValidReady => self.out.push_str("valid_ready"),
                    ProtocolSpecExpr::ReqResp => self.out.push_str("req_resp"),
                    ProtocolSpecExpr::Credit(None) => self.out.push_str("credit"),
                    ProtocolSpecExpr::Credit(Some(n)) => {
                        self.out.push_str("credit(");
                        self.expr(n);
                        self.out.push(')');
                    }
                    ProtocolSpecExpr::Named(n) => {
                        let _ = write!(self.out, "{n}");
                    }
                }
                self.out.push_str(" on ");
                for (i, p) in a.ports.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(p);
                }
                self.out.push_str(";\n");
            }
        }
    }

    fn ty(&mut self, ty: &TypeExpr) {
        match ty {
            TypeExpr::Int => self.out.push_str("int"),
            TypeExpr::Bool => self.out.push_str("bool"),
            TypeExpr::Float => self.out.push_str("float"),
            TypeExpr::String => self.out.push_str("string"),
            TypeExpr::Array(inner, len) => {
                // Parenthesize disjunctive element types to keep `|` binding clear.
                if matches!(**inner, TypeExpr::Disjunction(_)) {
                    self.out.push('(');
                    self.ty(inner);
                    self.out.push(')');
                } else {
                    self.ty(inner);
                }
                self.out.push('[');
                if !matches!(len.kind, ExprKind::Int(-1)) {
                    self.expr(len);
                }
                self.out.push(']');
            }
            TypeExpr::Struct(fields) => {
                self.out.push_str("struct { ");
                for (name, t) in fields {
                    let _ = write!(self.out, "{name} : ");
                    self.ty(t);
                    self.out.push_str("; ");
                }
                self.out.push('}');
            }
            TypeExpr::Var(v) => {
                let _ = write!(self.out, "'{}", v.name);
            }
            TypeExpr::Disjunction(alts) => {
                for (i, t) in alts.iter().enumerate() {
                    if i > 0 {
                        self.out.push('|');
                    }
                    self.ty(t);
                }
            }
            TypeExpr::InstanceRef { array } => {
                self.out.push_str("instance ref");
                if *array {
                    self.out.push_str("[]");
                }
            }
            TypeExpr::Userpoint(sig) => {
                self.out.push_str("userpoint(");
                for (i, (name, t)) in sig.args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    let _ = write!(self.out, "{name} : ");
                    self.ty(t);
                }
                self.out.push_str(" => ");
                self.ty(&sig.ret);
                self.out.push(')');
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Int(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::Float(v) => {
                let _ = write!(self.out, "{v:?}");
            }
            ExprKind::Str(s) => {
                let _ = write!(self.out, "{s:?}");
            }
            ExprKind::Bool(b) => {
                let _ = write!(self.out, "{b}");
            }
            ExprKind::Ident(id) => {
                let _ = write!(self.out, "{id}");
            }
            ExprKind::Field(base, field) => {
                self.expr(base);
                let _ = write!(self.out, ".{field}");
            }
            ExprKind::Index(base, idx) => {
                self.expr(base);
                self.out.push('[');
                self.expr(idx);
                self.out.push(']');
            }
            ExprKind::Call(callee, args) => {
                self.expr(callee);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::NewInstanceArray { len, module, name } => {
                self.out.push_str("new instance[");
                self.expr(len);
                let _ = write!(self.out, "]({module}, ");
                self.expr(name);
                self.out.push(')');
            }
            ExprKind::Unary(op, inner) => {
                self.out.push(match op {
                    UnOp::Neg => '-',
                    UnOp::Not => '!',
                });
                self.out.push('(');
                self.expr(inner);
                self.out.push(')');
            }
            ExprKind::Binary(op, l, r) => {
                self.out.push('(');
                self.expr(l);
                let _ = write!(self.out, " {op} ");
                self.expr(r);
                self.out.push(')');
            }
            ExprKind::Ternary(c, t, f) => {
                self.out.push('(');
                self.expr(c);
                self.out.push_str(" ? ");
                self.expr(t);
                self.out.push_str(" : ");
                self.expr(f);
                self.out.push(')');
            }
            ExprKind::ArrayLit(elems) => {
                self.out.push('[');
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(e);
                }
                self.out.push(']');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagnosticBag;
    use crate::parser::parse;
    use crate::span::SourceMap;

    fn roundtrip(src: &str) -> String {
        let mut map = SourceMap::new();
        let id = map.add_file("t.lss", src);
        let mut diags = DiagnosticBag::new();
        let prog = parse(id, src, &mut diags);
        assert!(!diags.has_errors(), "{}", diags.render(&map));
        program_to_string(&prog)
    }

    /// Printing then re-parsing must produce the identical AST (idempotent
    /// canonical form).
    fn assert_stable(src: &str) {
        let printed = roundtrip(src);
        let reprinted = roundtrip(&printed);
        assert_eq!(
            printed, reprinted,
            "pretty-printing is not idempotent for:\n{src}"
        );
    }

    #[test]
    fn prints_module() {
        let out = roundtrip("module delay { parameter initial_state = 0:int; inport in:int; };");
        assert!(out.contains("module delay {"));
        assert!(out.contains("parameter initial_state = 0 : int;"));
        assert!(out.contains("inport in : int;"));
    }

    #[test]
    fn stable_across_constructs() {
        assert_stable(
            r#"
            module delayn {
                parameter n:int;
                inport in: 'a;
                outport out: 'a;
                var delays:instance ref[];
                delays = new instance[n](delay, "delays");
                in -> delays[0].in;
                for (var i:int = 1; i < n; i = i + 1) {
                    delays[i-1].out -> delays[i].in;
                }
                delays[n-1].out -> out;
            };
            instance d:delayn;
            d.n = 3;
            d.out :: int;
            "#,
        );
    }

    #[test]
    fn stable_types() {
        assert_stable(
            "module m { inport a: (int|float)[4]; inport b: struct { x:int; }; parameter u: userpoint(r:int => int); };",
        );
    }

    #[test]
    fn stable_control_flow() {
        assert_stable(
            "fun f(x) { if (x > 0) { return x; } else { return -(x); } }\nwhile (false) { }\n",
        );
    }

    #[test]
    fn stable_protocols() {
        assert_stable(
            r#"
            protocol loopy {
                state idle;
                state busy;
                idle -> busy : recv go;
                busy -> idle : send item;
            };
            module q {
                parameter depth = 8:int;
                inport in:'a;
                outport credit:int;
                protocol ins : consumer credit(depth) on in, credit;
            };
            protocol flood : producer credit(9) on s.out;
            protocol hs : producer valid_ready on s.out, s.ready_in;
            "#,
        );
        let out = roundtrip("protocol mem : consumer req_resp on c.req, c.resp;");
        assert!(out.contains("protocol mem : consumer req_resp on c.req, c.resp;"));
    }

    #[test]
    fn prints_events_and_collectors() {
        let out = roundtrip(
            "module m { event e(int); };\ninstance i:m;\ncollector i : e = \"n = n + 1\";",
        );
        assert!(out.contains("event e(int);"));
        assert!(out.contains("collector i : e = \"n = n + 1\";"));
    }
}
