//! Source positions, spans, and the source map.
//!
//! Every AST node carries a [`Span`] pointing back into the source text so
//! that diagnostics produced by later phases (interpretation, type
//! inference, netlist checks) can show the offending LSS code.

use std::fmt;
use std::sync::Arc;

/// Identifies a file registered in a [`SourceMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// A half-open byte range `[start, end)` within a single source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// File the span points into.
    pub file: FileId,
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a new span. `start` must not exceed `end`.
    pub fn new(file: FileId, start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start {start} past end {end}");
        Span { file, start, end }
    }

    /// A zero-length span used for synthesized nodes.
    pub fn synthetic() -> Self {
        Span {
            file: FileId(u32::MAX),
            start: 0,
            end: 0,
        }
    }

    /// Returns true for spans produced by [`Span::synthetic`].
    pub fn is_synthetic(&self) -> bool {
        self.file == FileId(u32::MAX)
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the spans point into different files.
    pub fn merge(self, other: Span) -> Span {
        if self.is_synthetic() {
            return other;
        }
        if other.is_synthetic() {
            return self;
        }
        debug_assert_eq!(self.file, other.file, "merging spans from different files");
        Span {
            file: self.file,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A value together with the span it came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where it appeared in the source.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Wraps `node` with `span`.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }

    /// Maps the wrapped value, preserving the span.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Spanned<U> {
        Spanned {
            node: f(self.node),
            span: self.span,
        }
    }
}

/// A single registered source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Display name (path or pseudo-name like `<model A>`).
    pub name: String,
    /// Full text of the file.
    pub text: Arc<str>,
    /// Byte offsets of the start of each line (always contains 0).
    line_starts: Vec<u32>,
}

impl SourceFile {
    fn new(name: String, text: Arc<str>) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            name,
            text,
            line_starts,
        }
    }

    /// Converts a byte offset to a 1-based `(line, column)` pair.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        let col = offset - self.line_starts[line];
        (line as u32 + 1, col + 1)
    }

    /// Returns the full text of 1-based line `line`, without the newline.
    pub fn line_text(&self, line: u32) -> &str {
        let idx = (line - 1) as usize;
        let start = self.line_starts[idx] as usize;
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&e| e as usize)
            .unwrap_or(self.text.len());
        self.text[start..end].trim_end_matches(['\n', '\r'])
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

/// Collection of all source files seen during a compilation.
///
/// The map hands out [`FileId`]s and resolves spans back to human-readable
/// positions when diagnostics are rendered.
#[derive(Debug, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Creates an empty source map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a file and returns its id.
    pub fn add_file(&mut self, name: impl Into<String>, text: impl Into<Arc<str>>) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile::new(name.into(), text.into()));
        id
    }

    /// Looks up a registered file.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this map.
    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.0 as usize]
    }

    /// Returns the file for `id` if it exists and is not synthetic.
    pub fn get(&self, id: FileId) -> Option<&SourceFile> {
        self.files.get(id.0 as usize)
    }

    /// The source text covered by `span`, or `None` for synthetic spans.
    pub fn snippet(&self, span: Span) -> Option<&str> {
        if span.is_synthetic() {
            return None;
        }
        let file = self.get(span.file)?;
        file.text.get(span.start as usize..span.end as usize)
    }

    /// Formats a span as `name:line:col`.
    pub fn describe(&self, span: Span) -> String {
        if span.is_synthetic() {
            return "<synthesized>".to_string();
        }
        match self.get(span.file) {
            Some(f) => {
                let (line, col) = f.line_col(span.start);
                format!("{}:{}:{}", f.name, line, col)
            }
            None => "<unknown>".to_string(),
        }
    }

    /// Iterates over all registered files.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &SourceFile)> {
        self.files
            .iter()
            .enumerate()
            .map(|(i, f)| (FileId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_lookup() {
        let mut map = SourceMap::new();
        let id = map.add_file("t.lss", "abc\ndef\n\nx");
        let f = map.file(id);
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(2), (1, 3));
        assert_eq!(f.line_col(4), (2, 1));
        assert_eq!(f.line_col(8), (3, 1));
        assert_eq!(f.line_col(9), (4, 1));
        assert_eq!(f.line_count(), 4);
    }

    #[test]
    fn line_text_strips_newline() {
        let mut map = SourceMap::new();
        let id = map.add_file("t.lss", "abc\r\ndef");
        let f = map.file(id);
        assert_eq!(f.line_text(1), "abc");
        assert_eq!(f.line_text(2), "def");
    }

    #[test]
    fn span_merge_and_snippet() {
        let mut map = SourceMap::new();
        let id = map.add_file("t.lss", "hello world");
        let a = Span::new(id, 0, 5);
        let b = Span::new(id, 6, 11);
        let m = a.merge(b);
        assert_eq!(map.snippet(m), Some("hello world"));
        assert_eq!(m.len(), 11);
        assert!(!m.is_empty());
    }

    #[test]
    fn synthetic_span_merges_transparently() {
        let mut map = SourceMap::new();
        let id = map.add_file("t.lss", "hello");
        let a = Span::new(id, 1, 3);
        assert_eq!(Span::synthetic().merge(a), a);
        assert_eq!(a.merge(Span::synthetic()), a);
        assert!(Span::synthetic().is_synthetic());
        assert_eq!(map.describe(Span::synthetic()), "<synthesized>");
    }

    #[test]
    fn describe_points_at_line_and_col() {
        let mut map = SourceMap::new();
        let id = map.add_file("m.lss", "module d {\n  inport in:int;\n}");
        let span = Span::new(id, 13, 19);
        assert_eq!(map.describe(span), "m.lss:2:3");
    }
}
