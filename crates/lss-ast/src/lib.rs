//! Front end for the Liberty Structural Specification Language (LSS).
//!
//! This crate provides the lexer, parser, abstract syntax tree, source map,
//! and diagnostic machinery shared by the rest of the reproduction of
//! Vachharajani, Vachharajani & August, *The Liberty Structural
//! Specification Language* (PLDI 2004).
//!
//! # Example
//!
//! ```
//! use lss_ast::{parse, DiagnosticBag, SourceMap};
//!
//! let src = "module delay { inport in:int; outport out:int; };";
//! let mut sources = SourceMap::new();
//! let file = sources.add_file("example.lss", src);
//! let mut diags = DiagnosticBag::new();
//! let program = parse(file, src, &mut diags);
//! assert!(!diags.has_errors());
//! assert_eq!(program.modules[0].name.name, "delay");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{
    AssignStmt, BinOp, CollectorDecl, ConnectStmt, EventDecl, Expr, ExprKind, ForStmt, FunDecl,
    Ident, IfStmt, ImportDecl, ImportPath, InstanceDecl, ModuleDecl, ParamDecl, PortDecl, PortDir,
    Program, ProtocolActionDir, ProtocolAnnot, ProtocolDecl, ProtocolRole, ProtocolSpecExpr,
    RuntimeVarDecl, Stmt, TransitionDecl, TypeExpr, TypeInstStmt, UnOp, UserpointSig, VarDecl,
    WhileStmt,
};
pub use diag::{Diagnostic, DiagnosticBag, Note, Severity};
pub use lexer::lex;
pub use parser::parse;
pub use span::{FileId, SourceFile, SourceMap, Span, Spanned};
pub use token::{Token, TokenKind};
