//! Token definitions for the LSS lexer.

use std::fmt;

use crate::span::Span;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An identifier such as `delayn` or `tar_file`.
    Ident(String),
    /// A type variable, written `'a` in source.
    TypeVar(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string literal (already unescaped).
    Str(String),

    // Keywords.
    /// `module`
    Module,
    /// `parameter`
    Parameter,
    /// `inport`
    Inport,
    /// `outport`
    Outport,
    /// `instance`
    Instance,
    /// `var`
    Var,
    /// `new`
    New,
    /// `if`
    If,
    /// `else`
    Else,
    /// `for`
    For,
    /// `while`
    While,
    /// `struct`
    Struct,
    /// `userpoint`
    Userpoint,
    /// `runtime`
    Runtime,
    /// `event`
    Event,
    /// `collector`
    Collector,
    /// `ref`
    Ref,
    /// `true`
    True,
    /// `false`
    False,
    /// `int`
    IntTy,
    /// `bool`
    BoolTy,
    /// `float`
    FloatTy,
    /// `string`
    StringTy,
    /// `return`
    Return,
    /// `fun` — compile-time helper function definition.
    Fun,
    /// `protocol` — interface automaton declaration / port-group annotation.
    Protocol,
    /// `import` — multi-file project import declaration.
    Import,

    // Punctuation and operators.
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `::` — explicit port type instantiation.
    ColonColon,
    /// `.`
    Dot,
    /// `->` — port connection.
    Arrow,
    /// `=>` — userpoint argument/result separator.
    FatArrow,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `|` — disjunctive type separator.
    Pipe,
    /// `?`
    Question,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Maps an identifier to a keyword kind, if it is one.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "module" => TokenKind::Module,
            "parameter" => TokenKind::Parameter,
            "inport" => TokenKind::Inport,
            "outport" => TokenKind::Outport,
            "instance" => TokenKind::Instance,
            "var" => TokenKind::Var,
            "new" => TokenKind::New,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "for" => TokenKind::For,
            "while" => TokenKind::While,
            "struct" => TokenKind::Struct,
            "userpoint" => TokenKind::Userpoint,
            "runtime" => TokenKind::Runtime,
            "event" => TokenKind::Event,
            "collector" => TokenKind::Collector,
            "ref" => TokenKind::Ref,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "int" => TokenKind::IntTy,
            "bool" => TokenKind::BoolTy,
            "float" => TokenKind::FloatTy,
            "string" => TokenKind::StringTy,
            "return" => TokenKind::Return,
            "fun" => TokenKind::Fun,
            "protocol" => TokenKind::Protocol,
            "import" => TokenKind::Import,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::TypeVar(s) => format!("type variable `'{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Ident(s) => return write!(f, "{s}"),
            TokenKind::TypeVar(s) => return write!(f, "'{s}"),
            TokenKind::Int(v) => return write!(f, "{v}"),
            TokenKind::Float(v) => return write!(f, "{v}"),
            TokenKind::Str(s) => return write!(f, "{s:?}"),
            TokenKind::Module => "module",
            TokenKind::Parameter => "parameter",
            TokenKind::Inport => "inport",
            TokenKind::Outport => "outport",
            TokenKind::Instance => "instance",
            TokenKind::Var => "var",
            TokenKind::New => "new",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::For => "for",
            TokenKind::While => "while",
            TokenKind::Struct => "struct",
            TokenKind::Userpoint => "userpoint",
            TokenKind::Runtime => "runtime",
            TokenKind::Event => "event",
            TokenKind::Collector => "collector",
            TokenKind::Ref => "ref",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::IntTy => "int",
            TokenKind::BoolTy => "bool",
            TokenKind::FloatTy => "float",
            TokenKind::StringTy => "string",
            TokenKind::Return => "return",
            TokenKind::Fun => "fun",
            TokenKind::Protocol => "protocol",
            TokenKind::Import => "import",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::ColonColon => "::",
            TokenKind::Dot => ".",
            TokenKind::Arrow => "->",
            TokenKind::FatArrow => "=>",
            TokenKind::Eq => "=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Bang => "!",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Pipe => "|",
            TokenKind::Question => "?",
            TokenKind::Eof => "<eof>",
        };
        write!(f, "{s}")
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for kw in [
            "module",
            "parameter",
            "inport",
            "outport",
            "instance",
            "var",
            "new",
            "if",
            "else",
            "for",
            "while",
            "struct",
            "userpoint",
            "runtime",
            "event",
            "collector",
            "ref",
            "true",
            "false",
            "int",
            "bool",
            "float",
            "string",
            "return",
            "fun",
            "protocol",
            "import",
        ] {
            let k = TokenKind::keyword(kw).unwrap_or_else(|| panic!("{kw} should be a keyword"));
            assert_eq!(k.to_string(), kw);
        }
        assert_eq!(TokenKind::keyword("delay"), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
        assert_eq!(
            TokenKind::TypeVar("a".into()).describe(),
            "type variable `'a`"
        );
    }
}
