//! Diagnostics: errors, warnings, and notes with source locations.

use std::fmt;

use crate::span::{SourceMap, Span};

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note, usually attached to another diagnostic.
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// Compilation cannot produce a valid model.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A secondary message attached to a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// The message text.
    pub message: String,
    /// Optional location the note refers to.
    pub span: Option<Span>,
}

/// A single compiler diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Primary message.
    pub message: String,
    /// Primary location.
    pub span: Span,
    /// Attached notes.
    pub notes: Vec<Note>,
    /// Stable diagnostic code (e.g. `LSS401` for budget exhaustion);
    /// rendered as `error[LSS401]: ...` when present.
    pub code: Option<&'static str>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            notes: Vec::new(),
            code: None,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            notes: Vec::new(),
            code: None,
        }
    }

    /// Attaches a stable diagnostic code.
    #[must_use]
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = Some(code);
        self
    }

    /// Attaches a note with a location.
    pub fn with_note_at(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push(Note {
            message: message.into(),
            span: Some(span),
        });
        self
    }

    /// Attaches a free-floating note.
    pub fn with_note(mut self, message: impl Into<String>) -> Self {
        self.notes.push(Note {
            message: message.into(),
            span: None,
        });
        self
    }

    /// Renders the diagnostic with a source excerpt.
    pub fn render(&self, sources: &SourceMap) -> String {
        let mut out = String::new();
        render_one(
            &mut out,
            self.severity,
            self.code,
            &self.message,
            Some(self.span),
            sources,
        );
        for note in &self.notes {
            render_one(
                &mut out,
                Severity::Note,
                None,
                &note.message,
                note.span,
                sources,
            );
        }
        out
    }
}

fn render_one(
    out: &mut String,
    severity: Severity,
    code: Option<&'static str>,
    message: &str,
    span: Option<Span>,
    sources: &SourceMap,
) {
    use fmt::Write;
    match code {
        Some(code) => {
            let _ = writeln!(out, "{severity}[{code}]: {message}");
        }
        None => {
            let _ = writeln!(out, "{severity}: {message}");
        }
    }
    let Some(span) = span else { return };
    if span.is_synthetic() {
        return;
    }
    let _ = writeln!(out, "  --> {}", sources.describe(span));
    if let Some(file) = sources.get(span.file) {
        let (line, col) = file.line_col(span.start);
        let text = file.line_text(line);
        let _ = writeln!(out, "   | {text}");
        let underline_len =
            (span.len() as usize).clamp(1, text.len().saturating_sub(col as usize - 1).max(1));
        let _ = writeln!(
            out,
            "   | {}{}",
            " ".repeat(col as usize - 1),
            "^".repeat(underline_len)
        );
    }
}

/// Accumulates diagnostics across compiler phases.
#[derive(Debug, Default)]
pub struct DiagnosticBag {
    diags: Vec<Diagnostic>,
}

impl DiagnosticBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Shorthand for pushing an error.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Shorthand for pushing a warning.
    pub fn warning(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(message, span));
    }

    /// True if any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics recorded.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Iterates recorded diagnostics in order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Consumes the bag, returning the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// Renders every diagnostic, separated by blank lines.
    pub fn render(&self, sources: &SourceMap) -> String {
        self.diags
            .iter()
            .map(|d| d.render(sources))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::FileId;

    fn setup() -> (SourceMap, Span) {
        let mut map = SourceMap::new();
        let id = map.add_file("x.lss", "instance d1:delay;\nd1.out -> d2.in;\n");
        (map, Span::new(id, 0, 8))
    }

    #[test]
    fn render_includes_location_and_caret() {
        let (map, span) = setup();
        let d =
            Diagnostic::error("unknown module `delay`", span).with_note("22 modules are in scope");
        let rendered = d.render(&map);
        assert!(rendered.contains("error: unknown module `delay`"));
        assert!(rendered.contains("x.lss:1:1"));
        assert!(rendered.contains("^^^^^^^^"));
        assert!(rendered.contains("note: 22 modules are in scope"));
    }

    #[test]
    fn bag_tracks_errors() {
        let (map, span) = setup();
        let mut bag = DiagnosticBag::new();
        assert!(bag.is_empty());
        bag.warning("unused instance", span);
        assert!(!bag.has_errors());
        bag.error("bad connection", span);
        assert!(bag.has_errors());
        assert_eq!(bag.len(), 2);
        let rendered = bag.render(&map);
        assert!(rendered.contains("warning: unused instance"));
        assert!(rendered.contains("error: bad connection"));
    }

    #[test]
    fn code_renders_in_brackets() {
        let (map, span) = setup();
        let d = Diagnostic::error("instance budget exhausted", span).with_code("LSS403");
        let rendered = d.render(&map);
        assert!(rendered.contains("error[LSS403]: instance budget exhausted"));
    }

    #[test]
    fn synthetic_span_renders_without_excerpt() {
        let map = SourceMap::new();
        let d = Diagnostic::error("boom", Span::synthetic());
        let rendered = d.render(&map);
        assert_eq!(rendered, "error: boom\n");
    }

    #[test]
    fn note_at_span_points_to_second_line() {
        let (map, _) = setup();
        let second = Span::new(FileId(0), 19, 25);
        let d = Diagnostic::error("width mismatch", second).with_note_at("connected here", second);
        let rendered = d.render(&map);
        assert!(rendered.contains("x.lss:2:1"));
        assert!(rendered.contains("d1.out"));
    }
}
