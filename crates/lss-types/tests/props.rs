//! Property-based tests for the type system: unification laws and solver
//! determinism.

use proptest::prelude::*;

use lss_types::{
    solve, unify, Constraint, ConstraintSet, Scheme, SolveError, SolverConfig, Subst, Ty, TyVar,
    UnifyStats,
};

fn arb_ground() -> impl Strategy<Value = Ty> {
    let leaf = prop_oneof![Just(Ty::Int), Just(Ty::Bool), Just(Ty::Float), Just(Ty::String)];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), 1usize..4).prop_map(|(t, n)| Ty::Array(Box::new(t), n)),
            proptest::collection::vec(inner, 1..3).prop_map(|ts| {
                Ty::Struct(ts.into_iter().enumerate().map(|(i, t)| (format!("f{i}"), t)).collect())
            }),
        ]
    })
}

fn arb_scheme(vars: u32) -> impl Strategy<Value = Scheme> {
    let leaf = prop_oneof![
        Just(Scheme::Int),
        Just(Scheme::Bool),
        Just(Scheme::Float),
        (0..vars).prop_map(|v| Scheme::Var(TyVar(v))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), 1usize..3).prop_map(|(t, n)| Scheme::Array(Box::new(t), n)),
            proptest::collection::vec(inner, 2..4).prop_map(Scheme::Or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Unification is symmetric in outcome.
    #[test]
    fn unify_is_symmetric(a in arb_scheme(4), b in arb_scheme(4)) {
        let mut s1 = Subst::new();
        let mut s2 = Subst::new();
        let mut st = UnifyStats::default();
        let r1 = unify(&a, &b, &mut s1, &mut st).is_ok();
        let r2 = unify(&b, &a, &mut s2, &mut st).is_ok();
        prop_assert_eq!(r1, r2, "unify({}, {}) vs unify({}, {})", a, b, b, a);
    }

    /// Unifying a ground scheme with itself always succeeds and binds
    /// nothing.
    #[test]
    fn unify_is_reflexive_on_ground(t in arb_ground()) {
        let scheme = Scheme::from_ty(&t);
        let mut subst = Subst::new();
        let mut st = UnifyStats::default();
        prop_assert!(unify(&scheme, &scheme, &mut subst, &mut st).is_ok());
        prop_assert_eq!(subst.bound_count(), 0);
    }

    /// A variable unified with any ground type resolves to exactly it.
    #[test]
    fn unify_binds_vars_to_ground(t in arb_ground()) {
        let mut subst = Subst::new();
        let mut st = UnifyStats::default();
        unify(&Scheme::Var(TyVar(0)), &Scheme::from_ty(&t), &mut subst, &mut st).unwrap();
        prop_assert_eq!(subst.ground(TyVar(0)), Some(t));
    }

    /// Ground ty <-> scheme conversion round-trips.
    #[test]
    fn ty_scheme_round_trip(t in arb_ground()) {
        let scheme = Scheme::from_ty(&t);
        prop_assert!(scheme.is_ground());
        prop_assert_eq!(scheme.to_ty(), Some(t));
    }

    /// The solver is deterministic: same inputs, same solution.
    #[test]
    fn solver_is_deterministic(
        pairs in proptest::collection::vec((arb_scheme(3), arb_scheme(3)), 1..5)
    ) {
        let set: ConstraintSet =
            pairs.iter().map(|(l, r)| Constraint::eq(l.clone(), r.clone())).collect();
        let a = solve(&set, &SolverConfig::heuristic());
        let b = solve(&set, &SolverConfig::heuristic());
        match (a, b) {
            (Ok(sa), Ok(sb)) => {
                for v in 0..3 {
                    prop_assert_eq!(sa.ty_of(TyVar(v)), sb.ty_of(TyVar(v)));
                }
            }
            (Err(SolveError::Unsatisfiable { .. }), Err(SolveError::Unsatisfiable { .. })) => {}
            (a, b) => return Err(TestCaseError::fail(format!("nondeterministic: {a:?} vs {b:?}"))),
        }
    }

    /// Constraint order never changes satisfiability for the heuristic
    /// solver (reordering is one of its own heuristics, so this must hold).
    #[test]
    fn constraint_order_is_irrelevant(
        pairs in proptest::collection::vec((arb_scheme(3), arb_scheme(3)), 1..5)
    ) {
        let forward: ConstraintSet =
            pairs.iter().map(|(l, r)| Constraint::eq(l.clone(), r.clone())).collect();
        let backward: ConstraintSet =
            pairs.iter().rev().map(|(l, r)| Constraint::eq(l.clone(), r.clone())).collect();
        let a = solve(&forward, &SolverConfig::heuristic()).is_ok();
        let b = solve(&backward, &SolverConfig::heuristic()).is_ok();
        prop_assert_eq!(a, b);
    }

    /// Expansion always covers the disjunction-free case exactly.
    #[test]
    fn expansion_of_disjunction_free_is_identity(t in arb_ground()) {
        let scheme = Scheme::from_ty(&t);
        prop_assert_eq!(scheme.expand_disjuncts(4096), Some(vec![scheme.clone()]));
    }
}
