//! Randomized property tests for the type system: unification laws and
//! solver determinism. Driven by the in-repo seeded PRNG so the suite
//! needs no external dependencies and every failure is reproducible from
//! the printed seed.

use lss_types::{
    solve, unify, Constraint, ConstraintSet, Scheme, SolveError, SolverConfig, SplitMix64, Subst,
    Ty, TyVar, UnifyStats,
};

fn gen_ground(rng: &mut SplitMix64, depth: u32) -> Ty {
    let leaf = depth == 0 || rng.percent(40);
    if leaf {
        match rng.index(4) {
            0 => Ty::Int,
            1 => Ty::Bool,
            2 => Ty::Float,
            _ => Ty::String,
        }
    } else {
        match rng.index(2) {
            0 => Ty::Array(Box::new(gen_ground(rng, depth - 1)), 1 + rng.index(3)),
            _ => {
                let n = 1 + rng.index(2);
                Ty::Struct(
                    (0..n)
                        .map(|i| (format!("f{i}"), gen_ground(rng, depth - 1)))
                        .collect(),
                )
            }
        }
    }
}

fn gen_scheme(rng: &mut SplitMix64, vars: u32, depth: u32) -> Scheme {
    let leaf = depth == 0 || rng.percent(45);
    if leaf {
        match rng.index(4) {
            0 => Scheme::Int,
            1 => Scheme::Bool,
            2 => Scheme::Float,
            _ => Scheme::Var(TyVar(rng.range_u32(0, vars))),
        }
    } else {
        match rng.index(2) {
            0 => Scheme::Array(Box::new(gen_scheme(rng, vars, depth - 1)), 1 + rng.index(2)),
            _ => {
                let n = 2 + rng.index(2);
                Scheme::Or((0..n).map(|_| gen_scheme(rng, vars, depth - 1)).collect())
            }
        }
    }
}

/// Unification is symmetric in outcome.
#[test]
fn unify_is_symmetric() {
    let mut rng = SplitMix64::new(0xA11CE);
    for case in 0..256 {
        let a = gen_scheme(&mut rng, 4, 3);
        let b = gen_scheme(&mut rng, 4, 3);
        let mut s1 = Subst::new();
        let mut s2 = Subst::new();
        let mut st = UnifyStats::default();
        let r1 = unify(&a, &b, &mut s1, &mut st).is_ok();
        let r2 = unify(&b, &a, &mut s2, &mut st).is_ok();
        assert_eq!(r1, r2, "case {case}: unify({a}, {b}) vs unify({b}, {a})");
    }
}

/// Unifying a ground scheme with itself always succeeds and binds nothing.
#[test]
fn unify_is_reflexive_on_ground() {
    let mut rng = SplitMix64::new(0xB0B);
    for case in 0..256 {
        let t = gen_ground(&mut rng, 3);
        let scheme = Scheme::from_ty(&t);
        let mut subst = Subst::new();
        let mut st = UnifyStats::default();
        assert!(
            unify(&scheme, &scheme, &mut subst, &mut st).is_ok(),
            "case {case}: {t}"
        );
        assert_eq!(subst.bound_count(), 0, "case {case}: {t}");
    }
}

/// A variable unified with any ground type resolves to exactly it.
#[test]
fn unify_binds_vars_to_ground() {
    let mut rng = SplitMix64::new(0xCAFE);
    for case in 0..256 {
        let t = gen_ground(&mut rng, 3);
        let mut subst = Subst::new();
        let mut st = UnifyStats::default();
        unify(
            &Scheme::Var(TyVar(0)),
            &Scheme::from_ty(&t),
            &mut subst,
            &mut st,
        )
        .unwrap();
        assert_eq!(subst.ground(TyVar(0)), Some(t), "case {case}");
    }
}

/// Ground ty <-> scheme conversion round-trips.
#[test]
fn ty_scheme_round_trip() {
    let mut rng = SplitMix64::new(0xD00D);
    for case in 0..256 {
        let t = gen_ground(&mut rng, 3);
        let scheme = Scheme::from_ty(&t);
        assert!(scheme.is_ground(), "case {case}: {scheme}");
        assert_eq!(scheme.to_ty(), Some(t), "case {case}");
    }
}

/// The solver is deterministic: same inputs, same solution.
#[test]
fn solver_is_deterministic() {
    let mut rng = SplitMix64::new(0x5EED);
    for case in 0..128 {
        let n = 1 + rng.index(4);
        let set: ConstraintSet = (0..n)
            .map(|_| Constraint::eq(gen_scheme(&mut rng, 3, 3), gen_scheme(&mut rng, 3, 3)))
            .collect();
        let a = solve(&set, &SolverConfig::heuristic());
        let b = solve(&set, &SolverConfig::heuristic());
        match (a, b) {
            (Ok(sa), Ok(sb)) => {
                for v in 0..3 {
                    assert_eq!(sa.ty_of(TyVar(v)), sb.ty_of(TyVar(v)), "case {case}");
                }
            }
            (Err(SolveError::Unsatisfiable { .. }), Err(SolveError::Unsatisfiable { .. })) => {}
            (a, b) => panic!("case {case}: nondeterministic: {a:?} vs {b:?}"),
        }
    }
}

/// Constraint order never changes satisfiability for the heuristic solver
/// (reordering is one of its own heuristics, so this must hold).
#[test]
fn constraint_order_is_irrelevant() {
    let mut rng = SplitMix64::new(0xF00D);
    for case in 0..128 {
        let n = 1 + rng.index(4);
        let pairs: Vec<(Scheme, Scheme)> = (0..n)
            .map(|_| (gen_scheme(&mut rng, 3, 3), gen_scheme(&mut rng, 3, 3)))
            .collect();
        let forward: ConstraintSet = pairs
            .iter()
            .map(|(l, r)| Constraint::eq(l.clone(), r.clone()))
            .collect();
        let backward: ConstraintSet = pairs
            .iter()
            .rev()
            .map(|(l, r)| Constraint::eq(l.clone(), r.clone()))
            .collect();
        let a = solve(&forward, &SolverConfig::heuristic()).is_ok();
        let b = solve(&backward, &SolverConfig::heuristic()).is_ok();
        assert_eq!(a, b, "case {case}: {forward}");
    }
}

/// Expansion always covers the disjunction-free case exactly.
#[test]
fn expansion_of_disjunction_free_is_identity() {
    let mut rng = SplitMix64::new(0xFACE);
    for case in 0..256 {
        let t = gen_ground(&mut rng, 3);
        let scheme = Scheme::from_ty(&t);
        assert_eq!(
            scheme.expand_disjuncts(4096),
            Some(vec![scheme.clone()]),
            "case {case}"
        );
    }
}
