//! The LSS type system and inference engine (§5 of the PLDI 2004 paper).
//!
//! Provides:
//!
//! * [`Ty`] — ground basic types (`int`, arrays, structs, ...);
//! * [`Scheme`] — type schemes with variables and *disjunctions*
//!   (component overloading);
//! * [`Datum`] — runtime values inhabiting ground types;
//! * [`ConstraintSet`] — the conjunction of scheme equalities gathered from
//!   a model's ports and connections;
//! * [`solve()`](solve()) — the modified unification algorithm with the paper's three
//!   heuristics (constraint reordering, smart disjunction resolution,
//!   divide-and-conquer partitioning), each independently switchable via
//!   [`SolverConfig`] for ablation studies;
//! * [`sat`] — the 3-SAT reduction evidencing NP-completeness;
//! * [`gen`] — constraint-family generators for the scaling benchmarks.
//!
//! # Example
//!
//! ```
//! use lss_types::{solve, ConstraintSet, Scheme, SolverConfig, Ty, TyVar};
//!
//! // An overloaded ALU port (int|float) connected to a float register file.
//! let mut set = ConstraintSet::new();
//! set.push_eq(Scheme::Var(TyVar(0)), Scheme::Or(vec![Scheme::Int, Scheme::Float]));
//! set.push_eq(Scheme::Var(TyVar(0)), Scheme::Float);
//! let solution = solve(&set, &SolverConfig::heuristic())?;
//! assert_eq!(solution.ty_of(TyVar(0)), Some(Ty::Float));
//! # Ok::<(), lss_types::SolveError>(())
//! ```

#![warn(missing_docs)]
// User-reachable failure paths must surface diagnostics, not panics
// (tests opt back in per-module).
#![warn(clippy::unwrap_used)]

pub mod budget;
pub mod constraint;
pub mod gen;
pub mod memo;
pub mod rng;
pub mod sat;
pub mod solve;
pub mod ty;
pub mod unify;
pub mod value;

pub use budget::{Budget, BudgetCaps, BudgetError, BudgetKind};
pub use constraint::{Constraint, ConstraintOrigin, ConstraintSet};
pub use memo::{partition_key, MemoryMemo, PartitionMemo};
pub use rng::SplitMix64;
pub use solve::{
    partition, solve, solve_with_memo, Solution, SolveError, SolveStats, SolverConfig,
};
pub use ty::{Scheme, Ty, TyVar, VarGen};
pub use unify::{unifiable, unify, Subst, UnifyError, UnifyStats};
pub use value::Datum;
