//! Cooperative resource budgets for the compilation pipeline.
//!
//! LSS programs are *executed* at compile time (§4) and structural
//! inference is NP-complete (§5), so a hostile or buggy spec can hang the
//! elaborator or blow the solver's search space. A [`Budget`] is a
//! cheap-to-clone handle shared by every pipeline stage; stages poll it at
//! their loop headers and, on exhaustion, surface a structured
//! [`BudgetError`] carrying the `LSS4xx` diagnostic code, the stage, the
//! limit that was hit, and the flag that raises it — instead of spinning
//! or aborting.
//!
//! Deadline polling is strided: [`Budget::check_deadline`] only consults
//! the clock every [`POLL_STRIDE`] calls, keeping the overhead of
//! budget-governed compilation well under the 3% bar measured by
//! `bench --bin robustness`.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many [`Budget::check_deadline`] calls elapse between actual clock
/// reads. Loop bodies in the elaborator and solver are far heavier than an
/// `Instant::now()`, so this bounds detection latency without measurable
/// cost.
pub const POLL_STRIDE: u32 = 64;

/// The resource class a budget violation belongs to.
///
/// Each kind owns one stable `LSS4xx` diagnostic code and the `lssc` flag
/// that raises the corresponding limit. Codes are part of the CLI contract
/// (see `docs/ROBUSTNESS.md`) — never renumber them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// Wall-clock deadline for the whole compilation.
    Deadline,
    /// Elaboration fuel: interpreter statements/expressions executed.
    ElabSteps,
    /// Component/module instances created during elaboration.
    Instances,
    /// Module instantiation (hierarchy) depth.
    Depth,
    /// Type-solver unification steps.
    SolverSteps,
    /// Disjunct-combination expansions considered for one constraint.
    Expansions,
    /// Total elaborated netlist items (instances + port instances).
    NetlistSize,
    /// Simulation cycles executed by one run.
    SimCycles,
}

impl BudgetKind {
    /// The stable diagnostic code, e.g. `"LSS401"`.
    pub fn code(self) -> &'static str {
        match self {
            BudgetKind::Deadline => "LSS401",
            BudgetKind::ElabSteps => "LSS402",
            BudgetKind::Instances => "LSS403",
            BudgetKind::Depth => "LSS404",
            BudgetKind::SolverSteps => "LSS405",
            BudgetKind::Expansions => "LSS406",
            BudgetKind::NetlistSize => "LSS407",
            BudgetKind::SimCycles => "LSS408",
        }
    }

    /// The `lssc` flag that raises this limit.
    pub fn flag(self) -> &'static str {
        match self {
            BudgetKind::Deadline => "--deadline-ms",
            BudgetKind::ElabSteps => "--max-steps",
            BudgetKind::Instances => "--max-instances",
            BudgetKind::Depth => "--max-depth",
            BudgetKind::SolverSteps => "--solver-steps",
            BudgetKind::Expansions => "--expansion-cap",
            BudgetKind::NetlistSize => "--max-netlist",
            BudgetKind::SimCycles => "--max-cycles",
        }
    }

    /// Short human name of the exhausted resource.
    pub fn resource(self) -> &'static str {
        match self {
            BudgetKind::Deadline => "wall-clock deadline",
            BudgetKind::ElabSteps => "elaboration step budget",
            BudgetKind::Instances => "instance budget",
            BudgetKind::Depth => "instantiation depth limit",
            BudgetKind::SolverSteps => "solver step budget",
            BudgetKind::Expansions => "disjunct-expansion budget",
            BudgetKind::NetlistSize => "netlist size budget",
            BudgetKind::SimCycles => "simulation cycle budget",
        }
    }
}

/// A structured resource-exhaustion report.
///
/// Rendered as one `error[LSS4xx]` diagnostic by the driver: the stage
/// that hit the limit, the limit itself, partial progress at the moment of
/// exhaustion, and the flag to retry with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetError {
    /// The resource class (fixes the diagnostic code).
    pub kind: BudgetKind,
    /// Pipeline stage that hit the limit (`"elaborate"`, `"infer"`, ...).
    pub stage: &'static str,
    /// The configured limit (milliseconds for [`BudgetKind::Deadline`]).
    pub limit: u64,
    /// Partial progress at exhaustion ("1204 instances elaborated", ...).
    /// Empty when the caller has nothing useful to report.
    pub progress: String,
}

impl BudgetError {
    /// Creates an error with no progress note.
    pub fn new(kind: BudgetKind, stage: &'static str, limit: u64) -> Self {
        BudgetError {
            kind,
            stage,
            limit,
            progress: String::new(),
        }
    }

    /// Attaches a partial-progress note, returning `self` for chaining.
    #[must_use]
    pub fn with_progress(mut self, progress: impl Into<String>) -> Self {
        self.progress = progress.into();
        self
    }

    /// The stable diagnostic code for this error.
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }

    /// The note suggesting how to raise the limit.
    pub fn hint(&self) -> String {
        format!(
            "raise the limit with `{} N` (or remove it) and retry",
            self.kind.flag()
        )
    }
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unit = if self.kind == BudgetKind::Deadline {
            " ms"
        } else {
            ""
        };
        write!(
            f,
            "{} of {}{} exhausted during {}",
            self.kind.resource(),
            self.limit,
            unit,
            self.stage
        )?;
        if !self.progress.is_empty() {
            write!(f, " ({})", self.progress)?;
        }
        Ok(())
    }
}

impl std::error::Error for BudgetError {}

/// Static limits a [`Budget`] enforces. `None` everywhere means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetCaps {
    /// Wall-clock allowance for the whole compilation.
    pub deadline: Option<Duration>,
    /// Maximum module-instantiation depth.
    pub max_depth: Option<u32>,
    /// Maximum elaborated netlist items (instances + port instances).
    pub max_netlist_items: Option<u64>,
    /// Maximum simulation cycles one run may execute.
    pub max_sim_cycles: Option<u64>,
}

impl BudgetCaps {
    /// Starts the clock: converts static caps into a live [`Budget`].
    pub fn start(self) -> Budget {
        Budget {
            inner: Arc::new(Inner {
                deadline_at: self.deadline.map(|d| Instant::now() + d),
                caps: self,
                polls: AtomicU32::new(0),
            }),
        }
    }
}

#[derive(Debug)]
struct Inner {
    caps: BudgetCaps,
    deadline_at: Option<Instant>,
    polls: AtomicU32,
}

/// A shared, cheap-to-clone resource-budget handle.
///
/// Cloning shares the same deadline and poll counter, so every pipeline
/// stage draws down one allowance. Equality and `Debug` consider only the
/// *configured* caps (never the live clock), so embedding a `Budget` in
/// cache-keyed option structs keeps keys stable across runs.
#[derive(Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Budget {
    /// A budget with no limits; every check passes.
    pub fn unlimited() -> Self {
        BudgetCaps::default().start()
    }

    /// The caps this budget was started with.
    pub fn caps(&self) -> BudgetCaps {
        self.inner.caps
    }

    /// True when any limit is configured.
    pub fn is_limited(&self) -> bool {
        self.inner.caps != BudgetCaps::default()
    }

    /// Wall-clock time left, if a deadline is configured.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline_at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    fn deadline_ms(&self) -> u64 {
        self.inner
            .caps
            .deadline
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    /// True when the deadline has passed (always reads the clock).
    pub fn expired(&self) -> bool {
        matches!(self.inner.deadline_at, Some(at) if Instant::now() >= at)
    }

    /// Strided deadline poll for hot loops: reads the clock once every
    /// [`POLL_STRIDE`] calls.
    ///
    /// # Errors
    ///
    /// [`BudgetKind::Deadline`] once the wall-clock allowance is spent.
    pub fn check_deadline(&self, stage: &'static str) -> Result<(), BudgetError> {
        if self.inner.deadline_at.is_none() {
            return Ok(());
        }
        let n = self.inner.polls.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(POLL_STRIDE) {
            return Ok(());
        }
        self.check_deadline_now(stage)
    }

    /// Unstrided deadline check for cold points (stage boundaries).
    ///
    /// # Errors
    ///
    /// [`BudgetKind::Deadline`] once the wall-clock allowance is spent.
    pub fn check_deadline_now(&self, stage: &'static str) -> Result<(), BudgetError> {
        if self.expired() {
            return Err(BudgetError::new(
                BudgetKind::Deadline,
                stage,
                self.deadline_ms(),
            ));
        }
        Ok(())
    }

    /// Checks the module-instantiation depth cap.
    ///
    /// # Errors
    ///
    /// [`BudgetKind::Depth`] when `depth` exceeds the configured cap.
    pub fn check_depth(&self, depth: u32, stage: &'static str) -> Result<(), BudgetError> {
        match self.inner.caps.max_depth {
            Some(max) if depth > max => {
                Err(BudgetError::new(BudgetKind::Depth, stage, u64::from(max)))
            }
            _ => Ok(()),
        }
    }

    /// Checks the netlist size cap against the current item count.
    ///
    /// # Errors
    ///
    /// [`BudgetKind::NetlistSize`] when `items` exceeds the configured cap.
    pub fn check_netlist_items(&self, items: u64, stage: &'static str) -> Result<(), BudgetError> {
        match self.inner.caps.max_netlist_items {
            Some(max) if items > max => Err(BudgetError::new(BudgetKind::NetlistSize, stage, max)),
            _ => Ok(()),
        }
    }

    /// Checks the simulation cycle cap against the cycles executed so far.
    ///
    /// # Errors
    ///
    /// [`BudgetKind::SimCycles`] when `cycles` exceeds the configured cap.
    pub fn check_cycles(&self, cycles: u64, stage: &'static str) -> Result<(), BudgetError> {
        match self.inner.caps.max_sim_cycles {
            Some(max) if cycles > max => Err(BudgetError::new(BudgetKind::SimCycles, stage, max)
                .with_progress(format!("{max} cycle(s) executed"))),
            _ => Ok(()),
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

// Only the static caps: a live `Instant` would destabilize cache keys
// derived from option structs that embed a `Budget`.
impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field("caps", &self.inner.caps)
            .finish()
    }
}

impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        self.inner.caps == other.inner.caps
    }
}

impl Eq for Budget {}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        for _ in 0..10_000 {
            b.check_deadline("elaborate").unwrap();
        }
        b.check_depth(1_000_000, "elaborate").unwrap();
        b.check_netlist_items(u64::MAX, "elaborate").unwrap();
        assert!(b.remaining().is_none());
    }

    #[test]
    fn expired_deadline_reports_lss401() {
        let b = BudgetCaps {
            deadline: Some(Duration::ZERO),
            ..BudgetCaps::default()
        }
        .start();
        let err = b.check_deadline_now("infer").unwrap_err();
        assert_eq!(err.code(), "LSS401");
        assert_eq!(err.stage, "infer");
        assert!(err.hint().contains("--deadline-ms"));
        // The strided poll reaches the same verdict within one stride.
        let strided = (0..=POLL_STRIDE).find_map(|_| b.check_deadline("infer").err());
        assert_eq!(strided.unwrap().kind, BudgetKind::Deadline);
    }

    #[test]
    fn depth_and_netlist_caps_enforced() {
        let b = BudgetCaps {
            max_depth: Some(4),
            max_netlist_items: Some(100),
            ..BudgetCaps::default()
        }
        .start();
        b.check_depth(4, "elaborate").unwrap();
        assert_eq!(b.check_depth(5, "elaborate").unwrap_err().code(), "LSS404");
        b.check_netlist_items(100, "elaborate").unwrap();
        assert_eq!(
            b.check_netlist_items(101, "elaborate").unwrap_err().code(),
            "LSS407"
        );
    }

    #[test]
    fn sim_cycle_cap_enforced_as_lss408() {
        let b = BudgetCaps {
            max_sim_cycles: Some(1000),
            ..BudgetCaps::default()
        }
        .start();
        b.check_cycles(1000, "simulate").unwrap();
        let err = b.check_cycles(1001, "simulate").unwrap_err();
        assert_eq!(err.code(), "LSS408");
        assert_eq!(err.stage, "simulate");
        assert!(err.hint().contains("--max-cycles"));
        assert!(Budget::unlimited()
            .check_cycles(u64::MAX, "simulate")
            .is_ok());
    }

    #[test]
    fn clones_share_one_allowance() {
        let b = BudgetCaps {
            deadline: Some(Duration::from_secs(3600)),
            ..BudgetCaps::default()
        }
        .start();
        let clone = b.clone();
        assert_eq!(b, clone);
        assert!(clone.remaining().unwrap() <= Duration::from_secs(3600));
    }

    #[test]
    fn debug_and_eq_ignore_the_live_clock() {
        let caps = BudgetCaps {
            deadline: Some(Duration::from_millis(250)),
            ..BudgetCaps::default()
        };
        let a = caps.start();
        std::thread::sleep(Duration::from_millis(2));
        let b = caps.start();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn error_display_names_stage_limit_and_progress() {
        let err = BudgetError::new(BudgetKind::Instances, "elaborate", 500)
            .with_progress("500 instances elaborated");
        let msg = err.to_string();
        assert!(msg.contains("instance budget"), "{msg}");
        assert!(msg.contains("500"), "{msg}");
        assert!(msg.contains("elaborate"), "{msg}");
        assert!(msg.contains("500 instances elaborated"), "{msg}");
        assert_eq!(err.code(), "LSS403");
    }

    #[test]
    fn every_kind_has_distinct_code_and_flag() {
        let kinds = [
            BudgetKind::Deadline,
            BudgetKind::ElabSteps,
            BudgetKind::Instances,
            BudgetKind::Depth,
            BudgetKind::SolverSteps,
            BudgetKind::Expansions,
            BudgetKind::NetlistSize,
            BudgetKind::SimCycles,
        ];
        let codes: std::collections::HashSet<_> = kinds.iter().map(|k| k.code()).collect();
        let flags: std::collections::HashSet<_> = kinds.iter().map(|k| k.flag()).collect();
        assert_eq!(codes.len(), kinds.len());
        assert_eq!(flags.len(), kinds.len());
        assert!(codes.iter().all(|c| c.starts_with("LSS4")));
    }
}
