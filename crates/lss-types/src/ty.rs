//! Basic types and type schemes (the §5 grammar).
//!
//! ```text
//! Basic Types    t  ::= int | bool | float | string | t[n] | struct{ i1:t1; ... }
//! Type Schemes   t* ::= t | 'a | (t1* | ... | tn*) | t*[n] | struct{ i1:t1*; ... }
//! ```
//!
//! A [`Ty`] is always ground. A [`Scheme`] may contain type variables and
//! disjunctions; inference assigns a ground `Ty` to every variable.

use std::fmt;

/// A type variable, identified by a dense index from a [`VarGen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TyVar(pub u32);

impl fmt::Display for TyVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'t{}", self.0)
    }
}

/// Allocates fresh type variables and remembers a display name for each
/// (e.g. `delay3.in:'a`), used in "cannot infer" diagnostics.
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    names: Vec<String>,
}

impl VarGen {
    /// Creates an empty generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable with a descriptive name.
    pub fn fresh(&mut self, name: impl Into<String>) -> TyVar {
        let v = TyVar(self.names.len() as u32);
        self.names.push(name.into());
        v
    }

    /// The descriptive name given at allocation.
    pub fn name(&self, var: TyVar) -> &str {
        self.names
            .get(var.0 as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Number of variables allocated so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variables were allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A ground (fully resolved) LSS type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// 64-bit float.
    Float,
    /// Text string.
    String,
    /// Fixed-length array `t[n]`.
    Array(Box<Ty>, usize),
    /// Record type `struct { name: t; ... }` with field order significant.
    Struct(Vec<(String, Ty)>),
}

impl Ty {
    /// A `struct` from field pairs; convenience for tests.
    pub fn record(fields: impl IntoIterator<Item = (impl Into<String>, Ty)>) -> Ty {
        Ty::Struct(fields.into_iter().map(|(n, t)| (n.into(), t)).collect())
    }

    /// Size (number of syntax nodes), used to bound generated tests.
    pub fn size(&self) -> usize {
        match self {
            Ty::Int | Ty::Bool | Ty::Float | Ty::String => 1,
            Ty::Array(t, _) => 1 + t.size(),
            Ty::Struct(fields) => 1 + fields.iter().map(|(_, t)| t.size()).sum::<usize>(),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Bool => write!(f, "bool"),
            Ty::Float => write!(f, "float"),
            Ty::String => write!(f, "string"),
            Ty::Array(t, n) => write!(f, "{t}[{n}]"),
            Ty::Struct(fields) => {
                write!(f, "struct {{ ")?;
                for (name, t) in fields {
                    write!(f, "{name}: {t}; ")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A type scheme: a type that may contain variables and disjunctions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `float`
    Float,
    /// `string`
    String,
    /// `t*[n]`
    Array(Box<Scheme>, usize),
    /// `struct { name: t*; ... }`
    Struct(Vec<(String, Scheme)>),
    /// A type variable.
    Var(TyVar),
    /// A disjunctive scheme `(t1* | ... | tn*)`: the entity must statically
    /// take exactly one alternative (component overloading, §4.4).
    Or(Vec<Scheme>),
}

impl Scheme {
    /// Converts a ground type to the equivalent scheme.
    pub fn from_ty(ty: &Ty) -> Scheme {
        match ty {
            Ty::Int => Scheme::Int,
            Ty::Bool => Scheme::Bool,
            Ty::Float => Scheme::Float,
            Ty::String => Scheme::String,
            Ty::Array(t, n) => Scheme::Array(Box::new(Scheme::from_ty(t)), *n),
            Ty::Struct(fields) => Scheme::Struct(
                fields
                    .iter()
                    .map(|(name, t)| (name.clone(), Scheme::from_ty(t)))
                    .collect(),
            ),
        }
    }

    /// Converts a scheme to a ground type if it contains no variables or
    /// disjunctions.
    pub fn to_ty(&self) -> Option<Ty> {
        Some(match self {
            Scheme::Int => Ty::Int,
            Scheme::Bool => Ty::Bool,
            Scheme::Float => Ty::Float,
            Scheme::String => Ty::String,
            Scheme::Array(t, n) => Ty::Array(Box::new(t.to_ty()?), *n),
            Scheme::Struct(fields) => Ty::Struct(
                fields
                    .iter()
                    .map(|(name, t)| t.to_ty().map(|t| (name.clone(), t)))
                    .collect::<Option<Vec<_>>>()?,
            ),
            Scheme::Var(_) | Scheme::Or(_) => return None,
        })
    }

    /// True if the scheme is ground (no variables, no disjunctions).
    pub fn is_ground(&self) -> bool {
        match self {
            Scheme::Int | Scheme::Bool | Scheme::Float | Scheme::String => true,
            Scheme::Array(t, _) => t.is_ground(),
            Scheme::Struct(fields) => fields.iter().all(|(_, t)| t.is_ground()),
            Scheme::Var(_) | Scheme::Or(_) => false,
        }
    }

    /// True if a disjunction occurs anywhere in the scheme.
    pub fn has_disjunction(&self) -> bool {
        match self {
            Scheme::Or(_) => true,
            Scheme::Array(t, _) => t.has_disjunction(),
            Scheme::Struct(fields) => fields.iter().any(|(_, t)| t.has_disjunction()),
            _ => false,
        }
    }

    /// Collects every variable occurring in the scheme into `out`.
    pub fn collect_vars(&self, out: &mut Vec<TyVar>) {
        match self {
            Scheme::Var(v) => out.push(*v),
            Scheme::Array(t, _) => t.collect_vars(out),
            Scheme::Struct(fields) => fields.iter().for_each(|(_, t)| t.collect_vars(out)),
            Scheme::Or(alts) => alts.iter().for_each(|t| t.collect_vars(out)),
            _ => {}
        }
    }

    /// Returns every variable occurring in the scheme.
    pub fn vars(&self) -> Vec<TyVar> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// True if `var` occurs in the scheme (the occurs check).
    pub fn occurs(&self, var: TyVar) -> bool {
        match self {
            Scheme::Var(v) => *v == var,
            Scheme::Array(t, _) => t.occurs(var),
            Scheme::Struct(fields) => fields.iter().any(|(_, t)| t.occurs(var)),
            Scheme::Or(alts) => alts.iter().any(|t| t.occurs(var)),
            _ => false,
        }
    }

    /// Expands every nested disjunction, producing the list of
    /// disjunction-free schemes this scheme stands for (the cartesian
    /// product over nested `Or`s). The result length is capped at `cap`;
    /// `None` is returned when the cap would be exceeded.
    pub fn expand_disjuncts(&self, cap: usize) -> Option<Vec<Scheme>> {
        fn go(s: &Scheme, cap: usize) -> Option<Vec<Scheme>> {
            Some(match s {
                Scheme::Int | Scheme::Bool | Scheme::Float | Scheme::String | Scheme::Var(_) => {
                    vec![s.clone()]
                }
                Scheme::Array(t, n) => go(t, cap)?
                    .into_iter()
                    .map(|t| Scheme::Array(Box::new(t), *n))
                    .collect(),
                Scheme::Struct(fields) => {
                    let mut acc: Vec<Vec<(String, Scheme)>> = vec![Vec::new()];
                    for (name, t) in fields {
                        let alts = go(t, cap)?;
                        let mut next = Vec::new();
                        for prefix in &acc {
                            for alt in &alts {
                                let mut row = prefix.clone();
                                row.push((name.clone(), alt.clone()));
                                next.push(row);
                            }
                            if next.len() > cap {
                                return None;
                            }
                        }
                        acc = next;
                    }
                    acc.into_iter().map(Scheme::Struct).collect()
                }
                Scheme::Or(alts) => {
                    let mut out = Vec::new();
                    for alt in alts {
                        out.extend(go(alt, cap)?);
                        if out.len() > cap {
                            return None;
                        }
                    }
                    out
                }
            })
        }
        let out = go(self, cap)?;
        (out.len() <= cap).then_some(out)
    }

    /// Size (number of syntax nodes).
    pub fn size(&self) -> usize {
        match self {
            Scheme::Int | Scheme::Bool | Scheme::Float | Scheme::String | Scheme::Var(_) => 1,
            Scheme::Array(t, _) => 1 + t.size(),
            Scheme::Struct(fields) => 1 + fields.iter().map(|(_, t)| t.size()).sum::<usize>(),
            Scheme::Or(alts) => 1 + alts.iter().map(Scheme::size).sum::<usize>(),
        }
    }
}

impl From<Ty> for Scheme {
    fn from(ty: Ty) -> Scheme {
        Scheme::from_ty(&ty)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::Int => write!(f, "int"),
            Scheme::Bool => write!(f, "bool"),
            Scheme::Float => write!(f, "float"),
            Scheme::String => write!(f, "string"),
            Scheme::Array(t, n) => {
                if matches!(**t, Scheme::Or(_)) {
                    write!(f, "({t})[{n}]")
                } else {
                    write!(f, "{t}[{n}]")
                }
            }
            Scheme::Struct(fields) => {
                write!(f, "struct {{ ")?;
                for (name, t) in fields {
                    write!(f, "{name}: {t}; ")?;
                }
                write!(f, "}}")
            }
            Scheme::Var(v) => write!(f, "{v}"),
            Scheme::Or(alts) => {
                for (i, t) in alts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn ty_scheme_round_trip() {
        let ty = Ty::Array(Box::new(Ty::record([("x", Ty::Int), ("y", Ty::Float)])), 3);
        let scheme = Scheme::from_ty(&ty);
        assert!(scheme.is_ground());
        assert_eq!(scheme.to_ty(), Some(ty));
    }

    #[test]
    fn non_ground_schemes_do_not_convert() {
        let s = Scheme::Array(Box::new(Scheme::Var(TyVar(0))), 2);
        assert!(!s.is_ground());
        assert_eq!(s.to_ty(), None);
        let d = Scheme::Or(vec![Scheme::Int, Scheme::Float]);
        assert!(!d.is_ground());
        assert!(d.has_disjunction());
        assert_eq!(d.to_ty(), None);
    }

    #[test]
    fn occurs_check_sees_through_structure() {
        let v = TyVar(7);
        let s = Scheme::Struct(vec![(
            "f".into(),
            Scheme::Or(vec![
                Scheme::Int,
                Scheme::Array(Box::new(Scheme::Var(v)), 1),
            ]),
        )]);
        assert!(s.occurs(v));
        assert!(!s.occurs(TyVar(8)));
        assert_eq!(s.vars(), vec![v]);
    }

    #[test]
    fn expand_disjuncts_products() {
        // (int|float)[2] expands to int[2], float[2].
        let s = Scheme::Array(Box::new(Scheme::Or(vec![Scheme::Int, Scheme::Float])), 2);
        let exp = s.expand_disjuncts(16).unwrap();
        assert_eq!(
            exp,
            vec![
                Scheme::Array(Box::new(Scheme::Int), 2),
                Scheme::Array(Box::new(Scheme::Float), 2)
            ]
        );
        // struct with two disjunctive fields expands to the 4-way product.
        let s2 = Scheme::Struct(vec![
            ("a".into(), Scheme::Or(vec![Scheme::Int, Scheme::Float])),
            ("b".into(), Scheme::Or(vec![Scheme::Bool, Scheme::String])),
        ]);
        assert_eq!(s2.expand_disjuncts(16).unwrap().len(), 4);
        // cap respected
        assert!(s2.expand_disjuncts(3).is_none());
    }

    #[test]
    fn vargen_names() {
        let mut g = VarGen::new();
        assert!(g.is_empty());
        let a = g.fresh("d1.in");
        let b = g.fresh("d1.out");
        assert_eq!(g.name(a), "d1.in");
        assert_eq!(g.name(b), "d1.out");
        assert_eq!(g.len(), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ty::Array(Box::new(Ty::Int), 4).to_string(), "int[4]");
        let s = Scheme::Array(Box::new(Scheme::Or(vec![Scheme::Int, Scheme::Float])), 4);
        assert_eq!(s.to_string(), "(int|float)[4]");
        assert_eq!(Scheme::Var(TyVar(3)).to_string(), "'t3");
        assert_eq!(
            Ty::record([("x", Ty::Int)]).to_string(),
            "struct { x: int; }"
        );
    }
}
