//! The LSS type-inference solver (§5 of the paper).
//!
//! The inference problem — assign a basic type to every type variable under
//! a conjunction of scheme equalities that may contain *disjunctive* schemes
//! — is NP-complete (see [`crate::sat`] for the reduction used in tests).
//! The paper extends unification with backtracking over disjuncts and makes
//! it practical with three heuristics, all implemented here and all
//! individually switchable for the ablation benchmarks:
//!
//! 1. **Reordering** ([`SolverConfig::reorder`]): non-disjunctive equalities
//!    are unified first so they never have to be re-solved inside the
//!    recursion that handles disjunctive terms.
//! 2. **Smart disjunction resolution** ([`SolverConfig::smart`]): a
//!    disjunctive constraint whose viable disjuncts (under the current
//!    substitution) collapse to one is committed without search, and
//!    branching always picks the constraint with the fewest viable
//!    disjuncts.
//! 3. **Divide and conquer** ([`SolverConfig::partition`]): the constraint
//!    conjunction is partitioned into sub-systems that share no type
//!    variables and each is solved separately, turning a product of branch
//!    factors into a sum.
//!
//! With everything disabled the solver degenerates into the paper's
//! "straight-forward extension of the unification algorithm": process
//! constraints in order, and on encountering `(t* = t1*|...|tn*) ∧ φ`
//! recursively try every `t* = ti* ∧ φ`.

// `SolveError::Unsatisfiable` carries the offending constraint by value so
// diagnostics can print it; solve errors are rare and never on a hot path.
#![allow(clippy::result_large_err)]

use std::fmt;

use crate::budget::{Budget, BudgetError, BudgetKind};
use crate::constraint::{Constraint, ConstraintSet};
use crate::ty::{Scheme, Ty, TyVar};
use crate::unify::{unify, Subst, UnifyError, UnifyStats};

/// Which heuristics the solver uses; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolverConfig {
    /// Heuristic 1: simplify non-disjunctive constraint terms first.
    pub reorder: bool,
    /// Heuristic 2: resolve forced disjunctions without recursion and
    /// branch on the smallest remaining disjunction.
    pub smart: bool,
    /// Heuristic 3: partition disjoint constraint terms and solve
    /// separately.
    pub partition: bool,
    /// Abort after this many unification steps (`None` = unbounded). Used
    /// to keep the no-heuristics ablation from running for the paper's
    /// ">12 hours".
    pub step_budget: Option<u64>,
    /// Maximum number of disjunct expansions considered per scheme.
    pub expansion_cap: usize,
    /// Shared pipeline budget; its wall-clock deadline is polled at every
    /// search loop header so a pathological system degrades into
    /// [`SolveError::DeadlineExceeded`] instead of spinning.
    pub budget: Budget,
}

impl SolverConfig {
    /// All heuristics on — the configuration LSS ships with.
    pub fn heuristic() -> Self {
        SolverConfig {
            reorder: true,
            smart: true,
            partition: true,
            step_budget: None,
            expansion_cap: 4096,
            budget: Budget::unlimited(),
        }
    }

    /// All heuristics off — the paper's ">12 hours" baseline.
    pub fn naive() -> Self {
        SolverConfig {
            reorder: false,
            smart: false,
            partition: false,
            step_budget: None,
            expansion_cap: 4096,
            budget: Budget::unlimited(),
        }
    }

    /// Sets the step budget, returning `self` for chaining.
    pub fn with_budget(mut self, steps: u64) -> Self {
        self.step_budget = Some(steps);
        self
    }

    /// Attaches a shared wall-clock [`Budget`], returning `self` for
    /// chaining.
    pub fn with_wall_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig::heuristic()
    }
}

/// Work counters for one solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Total unification steps (including trial unifications).
    pub unify_steps: u64,
    /// Disjunct alternatives explored by branching.
    pub branches: u64,
    /// Branches that failed and were undone.
    pub backtracks: u64,
    /// Number of independent constraint partitions solved.
    pub partitions: usize,
    /// Disjunctions committed without branching (heuristic 2).
    pub smart_commits: u64,
    /// Deepest branching recursion reached.
    pub max_depth: u32,
    /// Partitions satisfied from a [`crate::memo::PartitionMemo`] without
    /// running the solver.
    pub memo_hits: usize,
}

/// Why solving failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No assignment of basic types satisfies the constraints.
    Unsatisfiable {
        /// The constraint that could not be satisfied.
        constraint: Constraint,
        /// Human-readable reason.
        reason: String,
    },
    /// The configured step budget ran out before an answer was found.
    BudgetExhausted {
        /// Steps consumed when the solver gave up.
        steps: u64,
    },
    /// The shared wall-clock deadline passed mid-search. Graceful
    /// degradation: the heuristic search is abandoned and the smallest
    /// still-unresolved constraints are reported so the user sees *where*
    /// the search was stuck.
    DeadlineExceeded {
        /// Renderings of the smallest unresolved constraints (capped).
        unresolved: Vec<String>,
        /// Total constraints still unresolved when the search aborted.
        total_unresolved: usize,
    },
    /// A single constraint needed more disjunct expansions than the
    /// configured cap — a resource limit, not an unsatisfiability verdict.
    ExpansionCap {
        /// The constraint whose disjunction product overflowed.
        constraint: Constraint,
        /// The configured [`SolverConfig::expansion_cap`].
        cap: usize,
    },
}

impl SolveError {
    /// The `LSS4xx` budget code for resource-limit errors (`None` for a
    /// genuine unsatisfiability verdict).
    pub fn budget_kind(&self) -> Option<BudgetKind> {
        match self {
            SolveError::Unsatisfiable { .. } => None,
            SolveError::BudgetExhausted { .. } => Some(BudgetKind::SolverSteps),
            SolveError::DeadlineExceeded { .. } => Some(BudgetKind::Deadline),
            SolveError::ExpansionCap { .. } => Some(BudgetKind::Expansions),
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Unsatisfiable { constraint, reason } => {
                write!(
                    f,
                    "unsatisfiable constraint `{constraint}` ({}): {reason}",
                    constraint.origin
                )
            }
            SolveError::BudgetExhausted { steps } => {
                write!(
                    f,
                    "type inference exceeded its step budget after {steps} steps"
                )
            }
            SolveError::DeadlineExceeded {
                unresolved,
                total_unresolved,
            } => {
                write!(
                    f,
                    "type inference hit the wall-clock deadline with {total_unresolved} \
                     constraint(s) unresolved"
                )?;
                for u in unresolved {
                    write!(f, "\n  unresolved: {u}")?;
                }
                if *total_unresolved > unresolved.len() {
                    write!(
                        f,
                        "\n  ... and {} more",
                        total_unresolved - unresolved.len()
                    )?;
                }
                Ok(())
            }
            SolveError::ExpansionCap { constraint, cap } => {
                write!(
                    f,
                    "constraint `{constraint}` ({}) needs more than {cap} disjunct \
                     expansions",
                    constraint.origin
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A successful inference result.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The substitution assigning schemes to variables.
    pub subst: Subst,
    /// Work counters.
    pub stats: SolveStats,
}

impl Solution {
    /// The inferred basic type of `var`, if it was fully resolved.
    pub fn ty_of(&self, var: TyVar) -> Option<Ty> {
        self.subst.ground(var)
    }

    /// Variables from `vars` that did not resolve to a basic type — these
    /// require explicit type instantiation by the user.
    pub fn unresolved<'a>(&'a self, vars: impl IntoIterator<Item = TyVar> + 'a) -> Vec<TyVar> {
        vars.into_iter()
            .filter(|v| self.ty_of(*v).is_none())
            .collect()
    }
}

/// Solves `set` under `config`.
///
/// # Errors
///
/// Returns [`SolveError::Unsatisfiable`] when no assignment exists and
/// [`SolveError::BudgetExhausted`] when `config.step_budget` runs out.
pub fn solve(set: &ConstraintSet, config: &SolverConfig) -> Result<Solution, SolveError> {
    solve_with_memo(set, config, None)
}

/// Solves `set` under `config`, consulting `memo` (when given) for
/// already-solved partitions.
///
/// Partitions found in the memo are replayed by binding their stored types
/// directly into the substitution — no unification or disjunction search
/// runs for them, and [`SolveStats::memo_hits`] counts them. Freshly solved
/// partitions are stored back. Only heuristic-3 partitioning produces
/// cacheable units; with `config.partition` off the single whole-system
/// group is still memoized (useful for repeated identical builds).
///
/// # Errors
///
/// Same failure modes as [`solve()`]; memo lookups never fail a solve
/// (a missing or mismatched entry just falls back to solving).
pub fn solve_with_memo(
    set: &ConstraintSet,
    config: &SolverConfig,
    mut memo: Option<&mut dyn crate::memo::PartitionMemo>,
) -> Result<Solution, SolveError> {
    let mut solver = Solver {
        config,
        stats: SolveStats::default(),
        unify_stats: UnifyStats::default(),
    };
    let mut subst = Subst::new();
    let groups = if config.partition {
        partition(set)
    } else {
        vec![(0..set.len()).collect::<Vec<_>>()]
    };
    solver.stats.partitions = groups.len();
    for group in &groups {
        let constraints: Vec<&Constraint> = group.iter().map(|&i| &set.constraints[i]).collect();
        let Some(memo) = memo.as_deref_mut() else {
            solver.solve_group(&constraints, &mut subst)?;
            continue;
        };
        let (key, vars) = crate::memo::partition_key(&constraints, config);
        match memo.lookup(key) {
            // Groups never share variables, so replaying bindings cannot
            // conflict with other groups' solutions.
            Some(tys) if tys.len() == vars.len() => {
                for (var, ty) in vars.iter().zip(&tys) {
                    if let Some(ty) = ty {
                        subst.bind(*var, Scheme::from_ty(ty));
                    }
                }
                solver.stats.memo_hits += 1;
            }
            _ => {
                solver.solve_group(&constraints, &mut subst)?;
                let tys: Vec<Option<Ty>> = vars.iter().map(|v| subst.ground(*v)).collect();
                memo.store(key, &tys);
            }
        }
    }
    solver.stats.unify_steps = solver.unify_stats.steps;
    Ok(Solution {
        subst,
        stats: solver.stats,
    })
}

/// Partitions constraint indices into groups sharing no type variables.
///
/// Constraints mentioning no variables each form their own singleton group.
pub fn partition(set: &ConstraintSet) -> Vec<Vec<usize>> {
    // Union-find over type variables.
    let mut max_var = 0u32;
    let mut con_vars: Vec<Vec<TyVar>> = Vec::with_capacity(set.len());
    for c in set.iter() {
        let vars = c.vars();
        for v in &vars {
            max_var = max_var.max(v.0 + 1);
        }
        con_vars.push(vars);
    }
    let mut parent: Vec<u32> = (0..max_var).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for vars in &con_vars {
        if let Some((first, rest)) = vars.split_first() {
            let r = find(&mut parent, first.0);
            for v in rest {
                let rv = find(&mut parent, v.0);
                parent[rv as usize] = r;
            }
        }
    }
    // Group constraints by root; keep insertion order of groups stable.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut root_to_group: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (i, vars) in con_vars.iter().enumerate() {
        match vars.first() {
            None => groups.push(vec![i]),
            Some(v) => {
                let r = find(&mut parent, v.0);
                match root_to_group.get(&r) {
                    Some(&g) => groups[g].push(i),
                    None => {
                        root_to_group.insert(r, groups.len());
                        groups.push(vec![i]);
                    }
                }
            }
        }
    }
    groups
}

struct Solver<'a> {
    config: &'a SolverConfig,
    stats: SolveStats,
    unify_stats: UnifyStats,
}

/// The "smallest unresolved subset" report for deadline aborts: the
/// pending constraints ordered simplest-first (fewest disjunct
/// alternatives), capped for readability.
fn unresolved_subset(pending: &[&Constraint]) -> Vec<String> {
    const CAP: usize = 5;
    let mut by_size: Vec<&&Constraint> = pending.iter().collect();
    by_size.sort_by_key(|c| c.lhs.size() + c.rhs.size());
    by_size
        .iter()
        .take(CAP)
        .map(|c| format!("{c} ({})", c.origin))
        .collect()
}

impl Solver<'_> {
    /// Polls every resource limit at a search loop header. `pending` is
    /// the still-unresolved queue, reported on deadline abort.
    fn check_budget(&self, pending: &[&Constraint]) -> Result<(), SolveError> {
        if let Some(budget) = self.config.step_budget {
            if self.unify_stats.steps > budget {
                return Err(SolveError::BudgetExhausted {
                    steps: self.unify_stats.steps,
                });
            }
        }
        if let Err(BudgetError { .. }) = self.config.budget.check_deadline("infer") {
            return Err(SolveError::DeadlineExceeded {
                unresolved: unresolved_subset(pending),
                total_unresolved: pending.len(),
            });
        }
        Ok(())
    }

    fn unsat(&self, c: &Constraint, reason: impl ToString) -> SolveError {
        SolveError::Unsatisfiable {
            constraint: c.clone(),
            reason: reason.to_string(),
        }
    }

    fn solve_group(
        &mut self,
        constraints: &[&Constraint],
        subst: &mut Subst,
    ) -> Result<(), SolveError> {
        if self.config.reorder {
            // Heuristic 1: unify the equational (non-disjunctive) terms
            // first; they never need revisiting during branching.
            let mut disjunctive = Vec::new();
            for c in constraints {
                if c.has_disjunction() {
                    disjunctive.push(*c);
                    continue;
                }
                self.check_budget(constraints)?;
                unify(&c.lhs, &c.rhs, subst, &mut self.unify_stats)
                    .map_err(|e| self.unsat(c, e))?;
            }
            self.solve_queue(&disjunctive, subst, 0)
        } else {
            // Paper's naive extension: process in order, recursing on every
            // disjunctive term.
            self.solve_in_order(constraints, 0, subst, 0)
        }
    }

    /// The disjunct expansions of a constraint: all `(lhs', rhs')` pairs
    /// with disjunctions multiplied out.
    fn expansions(&self, c: &Constraint) -> Result<Vec<(Scheme, Scheme)>, SolveError> {
        let cap = self.config.expansion_cap;
        let overflow = || SolveError::ExpansionCap {
            constraint: (*c).clone(),
            cap,
        };
        let lhs = c.lhs.expand_disjuncts(cap).ok_or_else(overflow)?;
        let rhs = c.rhs.expand_disjuncts(cap).ok_or_else(overflow)?;
        if lhs.len().saturating_mul(rhs.len()) > cap {
            return Err(overflow());
        }
        let mut pairs = Vec::with_capacity(lhs.len() * rhs.len());
        for l in &lhs {
            for r in &rhs {
                pairs.push((l.clone(), r.clone()));
            }
        }
        Ok(pairs)
    }

    /// The expansions that trial-unify under the current substitution.
    fn viable(
        &mut self,
        c: &Constraint,
        subst: &Subst,
    ) -> Result<Vec<(Scheme, Scheme)>, SolveError> {
        let mut out = Vec::new();
        for (l, r) in self.expansions(c)? {
            let mut scratch = subst.clone();
            if unify(&l, &r, &mut scratch, &mut self.unify_stats).is_ok() {
                out.push((l, r));
            }
        }
        Ok(out)
    }

    /// Solves the queue of disjunctive constraints (heuristic path).
    fn solve_queue(
        &mut self,
        queue: &[&Constraint],
        subst: &mut Subst,
        depth: u32,
    ) -> Result<(), SolveError> {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        self.check_budget(queue)?;
        if queue.is_empty() {
            return Ok(());
        }

        let mut pending: Vec<&Constraint> = queue.to_vec();
        if self.config.smart {
            // Heuristic 2: repeatedly commit forced disjunctions.
            loop {
                self.check_budget(&pending)?;
                let mut progressed = false;
                let mut next = Vec::with_capacity(pending.len());
                for c in pending.drain(..) {
                    let viable = self.viable(c, subst)?;
                    match viable.len() {
                        0 => return Err(self.unsat(c, "no disjunct is compatible")),
                        1 => {
                            let (l, r) = &viable[0];
                            unify(l, r, subst, &mut self.unify_stats)
                                .map_err(|e| self.unsat(c, e))?;
                            self.stats.smart_commits += 1;
                            progressed = true;
                        }
                        _ => next.push(c),
                    }
                }
                pending = next;
                if !progressed || pending.is_empty() {
                    break;
                }
            }
        }
        if pending.is_empty() {
            return Ok(());
        }

        // Pick the branching constraint: fewest viable disjuncts when smart,
        // otherwise the first in the queue. (`pending` is non-empty here,
        // so the smart scan always produces a candidate.)
        let (pick_idx, pairs) = if self.config.smart {
            let mut best: Option<(usize, Vec<(Scheme, Scheme)>)> = None;
            for (i, c) in pending.iter().enumerate() {
                let viable = self.viable(c, subst)?;
                let better = best
                    .as_ref()
                    .map(|(_, b)| viable.len() < b.len())
                    .unwrap_or(true);
                if better {
                    best = Some((i, viable));
                }
            }
            match best {
                Some(picked) => picked,
                None => return Ok(()),
            }
        } else {
            (0, self.expansions(pending[0])?)
        };
        let constraint = pending.remove(pick_idx);
        for (l, r) in pairs {
            self.check_budget(&pending)?;
            self.stats.branches += 1;
            let mut scratch = subst.clone();
            if unify(&l, &r, &mut scratch, &mut self.unify_stats).is_err() {
                self.stats.backtracks += 1;
                continue;
            }
            match self.solve_queue(&pending, &mut scratch, depth + 1) {
                Ok(()) => {
                    *subst = scratch;
                    return Ok(());
                }
                // Only a genuine contradiction is worth backtracking over;
                // resource exhaustion aborts the whole search.
                Err(SolveError::Unsatisfiable { .. }) => self.stats.backtracks += 1,
                Err(e) => return Err(e),
            }
        }
        Err(self.unsat(constraint, "every disjunct led to a contradiction"))
    }

    /// The naive in-order algorithm: `(t* = t1*|..|tn*) ∧ φ` is solved by
    /// recursively solving every `t* = ti* ∧ φ`.
    fn solve_in_order(
        &mut self,
        constraints: &[&Constraint],
        index: usize,
        subst: &mut Subst,
        depth: u32,
    ) -> Result<(), SolveError> {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        self.check_budget(&constraints[index.min(constraints.len())..])?;
        let Some(c) = constraints.get(index) else {
            return Ok(());
        };
        match unify(&c.lhs, &c.rhs, subst, &mut self.unify_stats) {
            Ok(()) => self.solve_in_order(constraints, index + 1, subst, depth),
            Err(UnifyError::Disjunction(..)) => {
                let pairs = self.expansions(c)?;
                let mut last_err = None;
                for (l, r) in pairs {
                    self.check_budget(&constraints[index..])?;
                    self.stats.branches += 1;
                    let mut scratch = subst.clone();
                    if unify(&l, &r, &mut scratch, &mut self.unify_stats).is_err() {
                        self.stats.backtracks += 1;
                        continue;
                    }
                    match self.solve_in_order(constraints, index + 1, &mut scratch, depth + 1) {
                        Ok(()) => {
                            *subst = scratch;
                            return Ok(());
                        }
                        Err(e @ SolveError::Unsatisfiable { .. }) => {
                            self.stats.backtracks += 1;
                            last_err = Some(e);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(last_err
                    .unwrap_or_else(|| self.unsat(c, "every disjunct led to a contradiction")))
            }
            Err(e) => Err(self.unsat(c, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn var(n: u32) -> Scheme {
        Scheme::Var(TyVar(n))
    }

    fn or(alts: &[Scheme]) -> Scheme {
        Scheme::Or(alts.to_vec())
    }

    fn all_configs() -> Vec<SolverConfig> {
        let mut configs = Vec::new();
        for reorder in [false, true] {
            for smart in [false, true] {
                for part in [false, true] {
                    configs.push(SolverConfig {
                        reorder,
                        smart,
                        partition: part,
                        step_budget: None,
                        expansion_cap: 4096,
                        budget: Budget::unlimited(),
                    });
                }
            }
        }
        configs
    }

    #[test]
    fn solves_simple_equalities_in_every_config() {
        for config in all_configs() {
            let mut set = ConstraintSet::new();
            set.push_eq(var(0), var(1));
            set.push_eq(var(1), Scheme::Int);
            set.push_eq(var(2), Scheme::Array(Box::new(var(0)), 3));
            let sol = solve(&set, &config).unwrap();
            assert_eq!(sol.ty_of(TyVar(0)), Some(Ty::Int));
            assert_eq!(sol.ty_of(TyVar(2)), Some(Ty::Array(Box::new(Ty::Int), 3)));
        }
    }

    #[test]
    fn resolves_disjunction_from_connection() {
        // ALU port is int|float; connected register file is float.
        for config in all_configs() {
            let mut set = ConstraintSet::new();
            set.push_eq(var(0), or(&[Scheme::Int, Scheme::Float]));
            set.push_eq(var(0), Scheme::Float);
            let sol = solve(&set, &config).unwrap();
            assert_eq!(sol.ty_of(TyVar(0)), Some(Ty::Float), "config {config:?}");
        }
    }

    #[test]
    fn detects_unsatisfiable_disjunction() {
        for config in all_configs() {
            let mut set = ConstraintSet::new();
            set.push_eq(var(0), or(&[Scheme::Int, Scheme::Float]));
            set.push_eq(var(0), Scheme::Bool);
            let err = solve(&set, &config).unwrap_err();
            assert!(
                matches!(err, SolveError::Unsatisfiable { .. }),
                "config {config:?}"
            );
        }
    }

    #[test]
    fn chained_disjunctions_propagate() {
        // A chain of overloaded components pinned to float at one end.
        for config in all_configs() {
            let n = 6;
            let mut set = ConstraintSet::new();
            for i in 0..n {
                set.push_eq(var(i), or(&[Scheme::Int, Scheme::Float]));
                if i > 0 {
                    set.push_eq(var(i - 1), var(i));
                }
            }
            set.push_eq(var(n - 1), Scheme::Float);
            let sol = solve(&set, &config).unwrap();
            for i in 0..n {
                assert_eq!(
                    sol.ty_of(TyVar(i)),
                    Some(Ty::Float),
                    "var {i} config {config:?}"
                );
            }
        }
    }

    #[test]
    fn underconstrained_vars_stay_unresolved() {
        let mut set = ConstraintSet::new();
        set.push_eq(var(0), var(1));
        let sol = solve(&set, &SolverConfig::heuristic()).unwrap();
        let unresolved = sol.unresolved([TyVar(0), TyVar(1)]);
        assert_eq!(unresolved.len(), 2);
    }

    #[test]
    fn ambiguous_disjunction_picks_some_alternative() {
        // int|float with no other constraint: the solver commits to one
        // alternative (branching), so the variable resolves.
        let mut set = ConstraintSet::new();
        set.push_eq(var(0), or(&[Scheme::Int, Scheme::Float]));
        let sol = solve(&set, &SolverConfig::heuristic()).unwrap();
        let ty = sol.ty_of(TyVar(0)).unwrap();
        assert!(ty == Ty::Int || ty == Ty::Float);
    }

    #[test]
    fn nested_disjunction_in_array() {
        for config in all_configs() {
            let mut set = ConstraintSet::new();
            // 'a[4] = (int|float)[4], 'a = float
            set.push_eq(
                Scheme::Array(Box::new(var(0)), 4),
                Scheme::Array(Box::new(or(&[Scheme::Int, Scheme::Float])), 4),
            );
            set.push_eq(var(0), Scheme::Float);
            let sol = solve(&set, &config).unwrap();
            assert_eq!(sol.ty_of(TyVar(0)), Some(Ty::Float), "config {config:?}");
        }
    }

    #[test]
    fn disjunction_on_both_sides() {
        for config in all_configs() {
            let mut set = ConstraintSet::new();
            set.push_eq(
                or(&[Scheme::Int, Scheme::Bool]),
                or(&[Scheme::Bool, Scheme::Float]),
            );
            // Only bool is common; tie 'a to witness the choice.
            set.push_eq(var(0), or(&[Scheme::Int, Scheme::Bool]));
            set.push_eq(var(0), or(&[Scheme::Bool, Scheme::Float]));
            let sol = solve(&set, &config).unwrap();
            assert_eq!(sol.ty_of(TyVar(0)), Some(Ty::Bool), "config {config:?}");
        }
    }

    #[test]
    fn partition_splits_disjoint_systems() {
        let mut set = ConstraintSet::new();
        set.push_eq(var(0), Scheme::Int);
        set.push_eq(var(1), Scheme::Float);
        set.push_eq(var(0), var(2));
        set.push_eq(Scheme::Int, Scheme::Int); // ground, its own group
        let groups = partition(&set);
        assert_eq!(groups.len(), 3);
        // Group containing constraint 0 must also contain constraint 2.
        let g0 = groups.iter().find(|g| g.contains(&0)).unwrap();
        assert!(g0.contains(&2));
        assert!(!g0.contains(&1));
    }

    #[test]
    fn partition_reduces_work_exponentially() {
        // m independent 2-way choices; the partitioned solver explores
        // them additively, the unpartitioned naive solver multiplicatively.
        let m = 8;
        let mut set = ConstraintSet::new();
        for i in 0..m {
            // Put the pinning *after* the disjunction to force naive
            // branching before the ground fact is known.
            set.push_eq(var(i), or(&[Scheme::Int, Scheme::Float]));
        }
        for i in 0..m {
            set.push_eq(var(i), Scheme::Float);
        }
        let with = solve(&set, &SolverConfig::heuristic()).unwrap();
        let without = solve(&set, &SolverConfig::naive()).unwrap();
        assert!(
            with.stats.unify_steps * 4 < without.stats.unify_steps,
            "heuristics {} steps vs naive {} steps",
            with.stats.unify_steps,
            without.stats.unify_steps
        );
        assert_eq!(with.stats.partitions, m as usize);
    }

    #[test]
    fn smart_commit_avoids_branching() {
        let mut set = ConstraintSet::new();
        set.push_eq(var(0), Scheme::Float);
        set.push_eq(var(0), or(&[Scheme::Int, Scheme::Float]));
        let sol = solve(&set, &SolverConfig::heuristic()).unwrap();
        assert_eq!(sol.stats.branches, 0);
        assert_eq!(sol.stats.smart_commits, 1);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut set = ConstraintSet::new();
        for i in 0..12 {
            set.push_eq(var(i), or(&[Scheme::Int, Scheme::Float, Scheme::Bool]));
        }
        for i in 0..12 {
            set.push_eq(var(i), Scheme::Bool);
        }
        let config = SolverConfig::naive().with_budget(200);
        let err = solve(&set, &config).unwrap_err();
        assert!(matches!(err, SolveError::BudgetExhausted { .. }));
    }

    #[test]
    fn expired_deadline_degrades_with_unresolved_subset() {
        // A search space big enough that the naive solver cannot finish
        // instantly, under an already-expired deadline: the solver must
        // abort gracefully and name the constraints it was stuck on.
        let mut set = ConstraintSet::new();
        for i in 0..10 {
            set.push_eq(var(i), or(&[Scheme::Int, Scheme::Float, Scheme::Bool]));
        }
        for i in 0..10 {
            set.push_eq(var(i), Scheme::Bool);
        }
        let config = SolverConfig::naive().with_wall_budget(
            crate::budget::BudgetCaps {
                deadline: Some(std::time::Duration::ZERO),
                ..Default::default()
            }
            .start(),
        );
        let err = solve(&set, &config).unwrap_err();
        match err {
            SolveError::DeadlineExceeded {
                unresolved,
                total_unresolved,
            } => {
                assert!(total_unresolved > 0);
                assert!(!unresolved.is_empty());
                assert!(unresolved.len() <= 5);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(
            SolveError::DeadlineExceeded {
                unresolved: vec![],
                total_unresolved: 0
            }
            .budget_kind()
            .map(BudgetKind::code),
            Some("LSS401")
        );
    }

    #[test]
    fn expansion_cap_is_a_budget_error_not_unsat() {
        // 2^13 struct-field combinations overflow the default 4096 cap.
        let fields: Vec<(String, Scheme)> = (0..13)
            .map(|i| (format!("f{i}"), or(&[Scheme::Int, Scheme::Float])))
            .collect();
        let mut set = ConstraintSet::new();
        set.push_eq(var(0), Scheme::Struct(fields));
        let err = solve(&set, &SolverConfig::heuristic()).unwrap_err();
        match &err {
            SolveError::ExpansionCap { cap, .. } => assert_eq!(*cap, 4096),
            other => panic!("expected ExpansionCap, got {other:?}"),
        }
        assert_eq!(err.budget_kind().map(BudgetKind::code), Some("LSS406"));
    }

    #[test]
    fn mismatch_reports_origin() {
        let mut set = ConstraintSet::new();
        set.push(Constraint::with_origin(
            Scheme::Int,
            Scheme::Float,
            crate::constraint::ConstraintOrigin::Connection {
                src: "alu.out".into(),
                dst: "rf.in".into(),
            },
        ));
        let err = solve(&set, &SolverConfig::heuristic()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("alu.out"),
            "message should cite the connection: {msg}"
        );
    }

    #[test]
    fn struct_disjunction_selects_matching_shape() {
        for config in all_configs() {
            let shape_a = Scheme::Struct(vec![("pc".into(), Scheme::Int)]);
            let shape_b = Scheme::Struct(vec![
                ("pc".into(), Scheme::Int),
                ("pred".into(), Scheme::Bool),
            ]);
            let mut set = ConstraintSet::new();
            set.push_eq(var(0), or(&[shape_a.clone(), shape_b.clone()]));
            set.push_eq(var(0), shape_b.clone());
            let sol = solve(&set, &config).unwrap();
            assert_eq!(sol.ty_of(TyVar(0)), shape_b.to_ty(), "config {config:?}");
        }
    }

    #[test]
    fn deep_chain_is_fast_with_heuristics() {
        // 40 components, each overloaded 3 ways, pinned at the far end.
        let n = 40u32;
        let mut set = ConstraintSet::new();
        for i in 0..n {
            set.push_eq(var(i), or(&[Scheme::Int, Scheme::Float, Scheme::Bool]));
        }
        for i in 1..n {
            set.push_eq(var(i - 1), var(i));
        }
        set.push_eq(var(n - 1), Scheme::Bool);
        let sol = solve(&set, &SolverConfig::heuristic()).unwrap();
        for i in 0..n {
            assert_eq!(sol.ty_of(TyVar(i)), Some(Ty::Bool));
        }
        // The whole chain is one partition, but smart commits kill the
        // search: no branching at all.
        assert_eq!(sol.stats.branches, 0);
    }
}
