//! Runtime data values (`Datum`) flowing through simulated hardware.
//!
//! Every value a component sends on a port, stores in a runtime variable, or
//! passes to a userpoint is a `Datum`. Its shape mirrors the ground type
//! grammar [`Ty`].

use std::fmt;

use crate::ty::Ty;

/// A dynamically typed runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// Integer value.
    Int(i64),
    /// Boolean value.
    Bool(bool),
    /// Float value.
    Float(f64),
    /// String value.
    Str(String),
    /// Fixed-length array.
    Array(Vec<Datum>),
    /// Record value with named fields.
    Struct(Vec<(String, Datum)>),
}

impl Datum {
    /// The ground type of this value.
    ///
    /// Empty arrays report element type `int` (they cannot occur for ports
    /// whose array types always have a static non-zero length).
    pub fn ty(&self) -> Ty {
        match self {
            Datum::Int(_) => Ty::Int,
            Datum::Bool(_) => Ty::Bool,
            Datum::Float(_) => Ty::Float,
            Datum::Str(_) => Ty::String,
            Datum::Array(items) => {
                let elem = items.first().map(Datum::ty).unwrap_or(Ty::Int);
                Ty::Array(Box::new(elem), items.len())
            }
            Datum::Struct(fields) => {
                Ty::Struct(fields.iter().map(|(n, v)| (n.clone(), v.ty())).collect())
            }
        }
    }

    /// The zero/default value of a ground type.
    pub fn default_for(ty: &Ty) -> Datum {
        match ty {
            Ty::Int => Datum::Int(0),
            Ty::Bool => Datum::Bool(false),
            Ty::Float => Datum::Float(0.0),
            Ty::String => Datum::Str(String::new()),
            Ty::Array(t, n) => Datum::Array(vec![Datum::default_for(t); *n]),
            Ty::Struct(fields) => Datum::Struct(
                fields
                    .iter()
                    .map(|(n, t)| (n.clone(), Datum::default_for(t)))
                    .collect(),
            ),
        }
    }

    /// True if this value inhabits `ty`.
    pub fn conforms_to(&self, ty: &Ty) -> bool {
        match (self, ty) {
            (Datum::Int(_), Ty::Int)
            | (Datum::Bool(_), Ty::Bool)
            | (Datum::Float(_), Ty::Float)
            | (Datum::Str(_), Ty::String) => true,
            (Datum::Array(items), Ty::Array(t, n)) => {
                items.len() == *n && items.iter().all(|v| v.conforms_to(t))
            }
            (Datum::Struct(fields), Ty::Struct(tys)) => {
                fields.len() == tys.len()
                    && fields
                        .iter()
                        .zip(tys)
                        .all(|((fn_, fv), (tn, tt))| fn_ == tn && fv.conforms_to(tt))
            }
            _ => false,
        }
    }

    /// Extracts an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a float, if this is one.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a struct field by name.
    pub fn field(&self, name: &str) -> Option<&Datum> {
        match self {
            Datum::Struct(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable struct-field lookup by name.
    pub fn field_mut(&mut self, name: &str) -> Option<&mut Datum> {
        match self {
            Datum::Struct(fields) => fields.iter_mut().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Bool(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "{s:?}"),
            Datum::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Datum::Struct(fields) => {
                write!(f, "{{")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Datum {
        Datum::Int(v)
    }
}

impl From<bool> for Datum {
    fn from(v: bool) -> Datum {
        Datum::Bool(v)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Datum {
        Datum::Float(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Datum {
        Datum::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn defaults_conform() {
        let tys = [
            Ty::Int,
            Ty::Bool,
            Ty::Float,
            Ty::String,
            Ty::Array(Box::new(Ty::Int), 3),
            Ty::record([("a", Ty::Int), ("b", Ty::Array(Box::new(Ty::Bool), 2))]),
        ];
        for ty in tys {
            let v = Datum::default_for(&ty);
            assert!(v.conforms_to(&ty), "{v} should conform to {ty}");
            assert_eq!(v.ty(), ty);
        }
    }

    #[test]
    fn conformance_is_strict() {
        assert!(!Datum::Int(1).conforms_to(&Ty::Float));
        assert!(!Datum::Array(vec![Datum::Int(1)]).conforms_to(&Ty::Array(Box::new(Ty::Int), 2)));
        let v = Datum::Struct(vec![("x".into(), Datum::Int(1))]);
        assert!(!v.conforms_to(&Ty::record([("y", Ty::Int)])));
        assert!(v.conforms_to(&Ty::record([("x", Ty::Int)])));
    }

    #[test]
    fn accessors() {
        assert_eq!(Datum::Int(4).as_int(), Some(4));
        assert_eq!(Datum::Bool(true).as_bool(), Some(true));
        assert_eq!(Datum::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Datum::from("hi").as_str(), Some("hi"));
        assert_eq!(Datum::Int(4).as_bool(), None);
        let mut s = Datum::Struct(vec![("x".into(), Datum::Int(1))]);
        assert_eq!(s.field("x"), Some(&Datum::Int(1)));
        *s.field_mut("x").unwrap() = Datum::Int(9);
        assert_eq!(s.field("x"), Some(&Datum::Int(9)));
        assert_eq!(s.field("nope"), None);
    }

    #[test]
    fn display() {
        let v = Datum::Struct(vec![
            ("a".into(), Datum::Array(vec![Datum::Int(1), Datum::Int(2)])),
            ("b".into(), Datum::from("x")),
        ]);
        assert_eq!(v.to_string(), "{a: [1, 2], b: \"x\"}");
    }
}
