//! Substitutions and disjunction-free unification.
//!
//! This is the classical Robinson-style core that the paper's modified
//! algorithm (see [`crate::solve::solve`]) extends: when unification reaches
//! a disjunction it *stops* with [`UnifyError::Disjunction`] and hands
//! control back to the solver, which resolves the disjunction by pruning or
//! branching.

use std::fmt;

use crate::ty::{Scheme, Ty, TyVar};

/// A substitution mapping type variables to schemes.
///
/// Bindings may map a variable to a scheme containing other variables;
/// [`Subst::resolve`] normalizes a scheme by chasing bindings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Subst {
    bindings: Vec<Option<Scheme>>,
}

impl Subst {
    /// Creates an empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// The binding of `var`, if any (not normalized).
    pub fn get(&self, var: TyVar) -> Option<&Scheme> {
        self.bindings.get(var.0 as usize).and_then(Option::as_ref)
    }

    /// Binds `var` to `scheme`. The caller must have performed the occurs
    /// check.
    pub fn bind(&mut self, var: TyVar, scheme: Scheme) {
        let idx = var.0 as usize;
        if idx >= self.bindings.len() {
            self.bindings.resize(idx + 1, None);
        }
        self.bindings[idx] = Some(scheme);
    }

    /// Applies the substitution to `scheme`, chasing bindings until fixed
    /// point. The result contains only unbound variables.
    pub fn resolve(&self, scheme: &Scheme) -> Scheme {
        match scheme {
            Scheme::Var(v) => match self.get(*v) {
                Some(bound) => self.resolve(bound),
                None => scheme.clone(),
            },
            Scheme::Array(t, n) => Scheme::Array(Box::new(self.resolve(t)), *n),
            Scheme::Struct(fields) => Scheme::Struct(
                fields
                    .iter()
                    .map(|(name, t)| (name.clone(), self.resolve(t)))
                    .collect(),
            ),
            Scheme::Or(alts) => Scheme::Or(alts.iter().map(|t| self.resolve(t)).collect()),
            other => other.clone(),
        }
    }

    /// Resolves `var` fully to a ground type, if possible.
    pub fn ground(&self, var: TyVar) -> Option<Ty> {
        self.resolve(&Scheme::Var(var)).to_ty()
    }

    /// Number of bound variables.
    pub fn bound_count(&self) -> usize {
        self.bindings.iter().filter(|b| b.is_some()).count()
    }
}

/// Why unification failed.
#[derive(Debug, Clone, PartialEq)]
pub enum UnifyError {
    /// Two incompatible constructors (e.g. `int` vs `float[2]`).
    Mismatch(Scheme, Scheme),
    /// A variable would have to contain itself.
    Occurs(TyVar, Scheme),
    /// A disjunction was reached — the caller must branch or prune.
    Disjunction(Scheme, Scheme),
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyError::Mismatch(a, b) => write!(f, "type mismatch: `{a}` vs `{b}`"),
            UnifyError::Occurs(v, s) => write!(f, "infinite type: {v} occurs in `{s}`"),
            UnifyError::Disjunction(a, b) => {
                write!(f, "unresolved disjunction while unifying `{a}` with `{b}`")
            }
        }
    }
}

impl std::error::Error for UnifyError {}

/// Statistics shared by the unifier and the solver built on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnifyStats {
    /// Number of recursive `unify` invocations.
    pub steps: u64,
}

/// Unifies `a` with `b` under `subst`, extending `subst` with new bindings.
///
/// # Errors
///
/// * [`UnifyError::Mismatch`] if the schemes cannot be equal.
/// * [`UnifyError::Occurs`] on infinite types.
/// * [`UnifyError::Disjunction`] if a disjunction is reached on either side
///   (after variable resolution); the solver handles these by branching.
pub fn unify(
    a: &Scheme,
    b: &Scheme,
    subst: &mut Subst,
    stats: &mut UnifyStats,
) -> Result<(), UnifyError> {
    stats.steps += 1;
    let a = match a {
        Scheme::Var(v) => match subst.get(*v) {
            Some(bound) => return unify(&bound.clone(), b, subst, stats),
            None => a.clone(),
        },
        _ => a.clone(),
    };
    let b = match b {
        Scheme::Var(v) => match subst.get(*v) {
            Some(bound) => return unify(&a, &bound.clone(), subst, stats),
            None => b.clone(),
        },
        _ => b.clone(),
    };
    match (&a, &b) {
        (Scheme::Var(va), Scheme::Var(vb)) if va == vb => Ok(()),
        (Scheme::Or(_), _) | (_, Scheme::Or(_)) => Err(UnifyError::Disjunction(a, b)),
        (Scheme::Var(v), other) | (other, Scheme::Var(v)) => {
            let resolved = subst.resolve(other);
            // The disjunction check must come first: `'a = ('a|int)[1]` is
            // satisfiable by choosing the `int` disjunct, so an occurs hit
            // inside a disjunction is a branching point, not a failure.
            if resolved.has_disjunction() {
                // Binding a variable to a disjunction would leak choice
                // points into the substitution; the solver must decide first.
                return Err(UnifyError::Disjunction(Scheme::Var(*v), resolved));
            }
            if resolved.occurs(*v) {
                return Err(UnifyError::Occurs(*v, resolved));
            }
            subst.bind(*v, resolved);
            Ok(())
        }
        (Scheme::Int, Scheme::Int)
        | (Scheme::Bool, Scheme::Bool)
        | (Scheme::Float, Scheme::Float)
        | (Scheme::String, Scheme::String) => Ok(()),
        (Scheme::Array(ta, na), Scheme::Array(tb, nb)) => {
            if na != nb {
                return Err(UnifyError::Mismatch(a.clone(), b.clone()));
            }
            unify(ta, tb, subst, stats)
        }
        (Scheme::Struct(fa), Scheme::Struct(fb)) => {
            if fa.len() != fb.len() || fa.iter().zip(fb).any(|((na, _), (nb, _))| na != nb) {
                return Err(UnifyError::Mismatch(a.clone(), b.clone()));
            }
            for ((_, ta), (_, tb)) in fa.iter().zip(fb) {
                unify(ta, tb, subst, stats)?;
            }
            Ok(())
        }
        _ => Err(UnifyError::Mismatch(a, b)),
    }
}

/// Trial-unifies on a scratch clone of `subst`, reporting only success.
///
/// Used by the solver's smart-disjunction heuristic to count viable
/// disjuncts without committing.
pub fn unifiable(a: &Scheme, b: &Scheme, subst: &Subst, stats: &mut UnifyStats) -> bool {
    let mut scratch = subst.clone();
    unify(a, b, &mut scratch, stats).is_ok()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn var(n: u32) -> Scheme {
        Scheme::Var(TyVar(n))
    }

    #[test]
    fn unifies_identical_ground_types() {
        let mut s = Subst::new();
        let mut st = UnifyStats::default();
        assert!(unify(&Scheme::Int, &Scheme::Int, &mut s, &mut st).is_ok());
        assert!(unify(&Scheme::Float, &Scheme::Int, &mut s, &mut st).is_err());
        assert!(st.steps >= 2);
    }

    #[test]
    fn binds_variables_transitively() {
        let mut s = Subst::new();
        let mut st = UnifyStats::default();
        // 'a = 'b, 'b = int  =>  'a resolves to int
        unify(&var(0), &var(1), &mut s, &mut st).unwrap();
        unify(&var(1), &Scheme::Int, &mut s, &mut st).unwrap();
        assert_eq!(s.ground(TyVar(0)), Some(Ty::Int));
        assert_eq!(s.ground(TyVar(1)), Some(Ty::Int));
        assert_eq!(s.bound_count(), 2);
    }

    #[test]
    fn unifies_structures() {
        let mut s = Subst::new();
        let mut st = UnifyStats::default();
        let a = Scheme::Array(Box::new(var(0)), 4);
        let b = Scheme::Array(Box::new(Scheme::Float), 4);
        unify(&a, &b, &mut s, &mut st).unwrap();
        assert_eq!(s.ground(TyVar(0)), Some(Ty::Float));
        // mismatched lengths fail
        let c = Scheme::Array(Box::new(Scheme::Float), 5);
        assert!(matches!(
            unify(&a, &c, &mut s, &mut st),
            Err(UnifyError::Mismatch(..))
        ));
    }

    #[test]
    fn unifies_struct_fields_in_order() {
        let mut s = Subst::new();
        let mut st = UnifyStats::default();
        let a = Scheme::Struct(vec![("x".into(), var(0)), ("y".into(), Scheme::Bool)]);
        let b = Scheme::Struct(vec![("x".into(), Scheme::Int), ("y".into(), var(1))]);
        unify(&a, &b, &mut s, &mut st).unwrap();
        assert_eq!(s.ground(TyVar(0)), Some(Ty::Int));
        assert_eq!(s.ground(TyVar(1)), Some(Ty::Bool));
        // different field names are a mismatch even with equal types
        let c = Scheme::Struct(vec![("z".into(), Scheme::Int), ("y".into(), Scheme::Bool)]);
        assert!(unify(&a, &c, &mut s, &mut st).is_err());
    }

    #[test]
    fn occurs_check_fires() {
        let mut s = Subst::new();
        let mut st = UnifyStats::default();
        let rec = Scheme::Array(Box::new(var(0)), 1);
        assert!(matches!(
            unify(&var(0), &rec, &mut s, &mut st),
            Err(UnifyError::Occurs(..))
        ));
    }

    #[test]
    fn occurs_check_through_bindings() {
        let mut s = Subst::new();
        let mut st = UnifyStats::default();
        // 'a = 'b[1]; then 'b = 'a[1] must fail (would be infinite).
        unify(
            &var(0),
            &Scheme::Array(Box::new(var(1)), 1),
            &mut s,
            &mut st,
        )
        .unwrap();
        let res = unify(
            &var(1),
            &Scheme::Array(Box::new(var(0)), 1),
            &mut s,
            &mut st,
        );
        assert!(matches!(res, Err(UnifyError::Occurs(..))));
    }

    #[test]
    fn disjunction_is_deferred() {
        let mut s = Subst::new();
        let mut st = UnifyStats::default();
        let d = Scheme::Or(vec![Scheme::Int, Scheme::Float]);
        assert!(matches!(
            unify(&d, &Scheme::Int, &mut s, &mut st),
            Err(UnifyError::Disjunction(..))
        ));
        // Also when a variable would be bound to a scheme containing Or.
        assert!(matches!(
            unify(&var(0), &Scheme::Array(Box::new(d), 2), &mut s, &mut st),
            Err(UnifyError::Disjunction(..))
        ));
        assert_eq!(s.bound_count(), 0);
    }

    #[test]
    fn occurs_inside_a_disjunction_defers_instead_of_failing() {
        // `'a = ('a|int)[1]` must NOT be an occurs failure: the solver can
        // pick the `int` disjunct. Regression test for a proptest finding.
        let mut s = Subst::new();
        let mut st = UnifyStats::default();
        let rhs = Scheme::Array(Box::new(Scheme::Or(vec![var(0), Scheme::Int])), 1);
        assert!(matches!(
            unify(&var(0), &rhs, &mut s, &mut st),
            Err(UnifyError::Disjunction(..))
        ));
    }

    #[test]
    fn same_variable_unifies_without_binding() {
        let mut s = Subst::new();
        let mut st = UnifyStats::default();
        unify(&var(3), &var(3), &mut s, &mut st).unwrap();
        assert_eq!(s.bound_count(), 0);
    }

    #[test]
    fn unifiable_does_not_commit() {
        let s = Subst::new();
        let mut st = UnifyStats::default();
        assert!(unifiable(&var(0), &Scheme::Int, &s, &mut st));
        assert!(!unifiable(&Scheme::Bool, &Scheme::Int, &s, &mut st));
        assert_eq!(s.bound_count(), 0);
    }

    #[test]
    fn resolve_normalizes_nested() {
        let mut s = Subst::new();
        s.bind(TyVar(0), Scheme::Int);
        let nested = Scheme::Struct(vec![("f".into(), Scheme::Array(Box::new(var(0)), 2))]);
        let resolved = s.resolve(&nested);
        assert_eq!(
            resolved.to_ty(),
            Some(Ty::record([("f", Ty::Array(Box::new(Ty::Int), 2))]))
        );
    }
}
