//! A small deterministic PRNG (SplitMix64) so the workspace needs no
//! external `rand` dependency and builds fully offline.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA'14) passes BigCrush, needs only
//! a 64-bit counter of state, and is trivially seedable — more than enough
//! for synthetic workload generation and randomized tests. Not for
//! cryptography.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)`. `bound` must be positive.
    ///
    /// Uses Lemire's multiply-shift reduction with a rejection step, so the
    /// distribution is exactly uniform.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let hi = ((x as u128 * bound as u128) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// A uniform `i64` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// A uniform `u32` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as u32
    }

    /// A uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// True with probability `pct`/100.
    pub fn percent(&mut self, pct: u32) -> bool {
        self.below(100) < pct as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(12346);
        assert_ne!(SplitMix64::new(12345).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear in 1000 draws"
        );
    }

    #[test]
    fn range_endpoints() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let v = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
        }
        assert_eq!(rng.range_i64(3, 4), 3);
    }

    #[test]
    fn percent_is_roughly_calibrated() {
        let mut rng = SplitMix64::new(99);
        let hits = (0..10_000).filter(|_| rng.percent(30)).count();
        assert!(
            (2_500..3_500).contains(&hits),
            "30% of 10k draws, got {hits}"
        );
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
