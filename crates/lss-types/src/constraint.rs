//! Constraint representation for the LSS type inference problem.
//!
//! ```text
//! Constraints  φ ::= ⊤ | t1* = t2* | φ1 ∧ φ2
//! ```
//!
//! A [`ConstraintSet`] is the conjunction; each [`Constraint`] is one
//! equality between type schemes together with its origin (used for error
//! messages and for the netlist's reuse statistics).

use std::fmt;

use crate::ty::Scheme;

/// Where a constraint came from, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintOrigin {
    /// Two ports were connected (`a.out -> b.in`).
    Connection {
        /// Hierarchical path of the sending port.
        src: String,
        /// Hierarchical path of the receiving port.
        dst: String,
    },
    /// A connection or port carried an explicit annotation.
    Annotation {
        /// Hierarchical path of the annotated entity.
        target: String,
    },
    /// A port's declared scheme constrains its instance-level variable.
    PortDecl {
        /// Hierarchical path of the port.
        port: String,
    },
    /// Synthetic (tests and generators).
    Synthetic,
}

impl fmt::Display for ConstraintOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintOrigin::Connection { src, dst } => {
                write!(f, "connection {src} -> {dst}")
            }
            ConstraintOrigin::Annotation { target } => write!(f, "annotation on {target}"),
            ConstraintOrigin::PortDecl { port } => write!(f, "declaration of port {port}"),
            ConstraintOrigin::Synthetic => write!(f, "synthetic constraint"),
        }
    }
}

/// One equality `lhs = rhs` between type schemes.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Left scheme.
    pub lhs: Scheme,
    /// Right scheme.
    pub rhs: Scheme,
    /// Provenance for diagnostics.
    pub origin: ConstraintOrigin,
}

impl Constraint {
    /// Creates a constraint with [`ConstraintOrigin::Synthetic`] provenance.
    pub fn eq(lhs: Scheme, rhs: Scheme) -> Self {
        Constraint {
            lhs,
            rhs,
            origin: ConstraintOrigin::Synthetic,
        }
    }

    /// Creates a constraint with explicit provenance.
    pub fn with_origin(lhs: Scheme, rhs: Scheme, origin: ConstraintOrigin) -> Self {
        Constraint { lhs, rhs, origin }
    }

    /// True if either side contains a disjunction.
    pub fn has_disjunction(&self) -> bool {
        self.lhs.has_disjunction() || self.rhs.has_disjunction()
    }

    /// All type variables mentioned on either side.
    pub fn vars(&self) -> Vec<crate::ty::TyVar> {
        let mut out = self.lhs.vars();
        self.rhs.collect_vars(&mut out);
        out
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.lhs, self.rhs)
    }
}

/// A conjunction of constraints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    /// The constraints, in the order they were gathered.
    pub constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// An empty (trivially true) constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a constraint.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Appends an equality with synthetic provenance.
    pub fn push_eq(&mut self, lhs: Scheme, rhs: Scheme) {
        self.constraints.push(Constraint::eq(lhs, rhs));
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if there are no constraints (the `⊤` constraint).
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Number of constraints containing a disjunction.
    pub fn disjunctive_count(&self) -> usize {
        self.constraints
            .iter()
            .filter(|c| c.has_disjunction())
            .count()
    }

    /// Iterates constraints in order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<I: IntoIterator<Item = Constraint>>(iter: I) -> Self {
        ConstraintSet {
            constraints: iter.into_iter().collect(),
        }
    }
}

impl Extend<Constraint> for ConstraintSet {
    fn extend<I: IntoIterator<Item = Constraint>>(&mut self, iter: I) {
        self.constraints.extend(iter);
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::ty::TyVar;

    #[test]
    fn counts_disjunctive_constraints() {
        let mut set = ConstraintSet::new();
        set.push_eq(Scheme::Var(TyVar(0)), Scheme::Int);
        set.push_eq(
            Scheme::Var(TyVar(1)),
            Scheme::Or(vec![Scheme::Int, Scheme::Float]),
        );
        assert_eq!(set.len(), 2);
        assert_eq!(set.disjunctive_count(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn vars_from_both_sides() {
        let c = Constraint::eq(
            Scheme::Var(TyVar(0)),
            Scheme::Array(Box::new(Scheme::Var(TyVar(1))), 2),
        );
        assert_eq!(c.vars(), vec![TyVar(0), TyVar(1)]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ConstraintSet::new().to_string(), "⊤");
        let mut set = ConstraintSet::new();
        set.push_eq(Scheme::Var(TyVar(0)), Scheme::Int);
        set.push_eq(Scheme::Var(TyVar(1)), Scheme::Bool);
        assert_eq!(set.to_string(), "'t0 = int ∧ 't1 = bool");
        let origin = ConstraintOrigin::Connection {
            src: "a.out".into(),
            dst: "b.in".into(),
        };
        assert_eq!(origin.to_string(), "connection a.out -> b.in");
    }

    #[test]
    fn collects_from_iterator() {
        let set: ConstraintSet = [Constraint::eq(Scheme::Int, Scheme::Int)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 1);
    }
}
