//! Reduction from 3-SAT to the LSS type-inference problem.
//!
//! The paper states the LSS inference problem is NP-complete (its reference 18). This
//! module makes the hardness direction concrete and testable: a boolean
//! variable `x_i` becomes a type variable constrained to `int|float`
//! (`int` ≙ true, `float` ≙ false), and a clause becomes a disjunctive
//! constraint over a 3-field struct that enumerates the seven satisfying
//! ground assignments of the clause.

use crate::constraint::{Constraint, ConstraintSet};
use crate::ty::{Scheme, Ty, TyVar};

/// A literal in a CNF formula: variable index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// 0-based boolean variable index.
    pub var: usize,
    /// True for a positive literal.
    pub positive: bool,
}

impl Lit {
    /// Positive literal for variable `var`.
    pub fn pos(var: usize) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    /// Negative literal for variable `var`.
    pub fn neg(var: usize) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }
}

/// A 3-CNF formula.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Formula {
    /// Number of boolean variables.
    pub num_vars: usize,
    /// Clauses, each with exactly three literals.
    pub clauses: Vec<[Lit; 3]>,
}

impl Formula {
    /// Creates a formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Formula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause.
    ///
    /// # Panics
    ///
    /// Panics if any literal references a variable `>= num_vars`.
    pub fn clause(&mut self, a: Lit, b: Lit, c: Lit) -> &mut Self {
        for l in [a, b, c] {
            assert!(
                l.var < self.num_vars,
                "literal references unknown variable {}",
                l.var
            );
        }
        self.clauses.push([a, b, c]);
        self
    }

    /// Evaluates the formula under `assignment` (indexed by variable).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|l| assignment[l.var] == l.positive))
    }

    /// Brute-force satisfiability (for cross-checking small instances).
    pub fn brute_force_sat(&self) -> Option<Vec<bool>> {
        assert!(self.num_vars <= 24, "brute force limited to 24 variables");
        for bits in 0u64..(1u64 << self.num_vars) {
            let assignment: Vec<bool> = (0..self.num_vars).map(|i| bits & (1 << i) != 0).collect();
            if self.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }
}

const TRUE_TY: Scheme = Scheme::Int;
const FALSE_TY: Scheme = Scheme::Float;

fn lit_scheme(value: bool) -> Scheme {
    if value {
        TRUE_TY
    } else {
        FALSE_TY
    }
}

/// Encodes `formula` as an LSS constraint set.
///
/// Type variable `TyVar(i)` corresponds to boolean variable `i`. The
/// encoding is satisfiable exactly when the formula is.
pub fn encode(formula: &Formula) -> ConstraintSet {
    let mut set = ConstraintSet::new();
    // Domain constraints: every boolean variable is int|float.
    for i in 0..formula.num_vars {
        set.push(Constraint::eq(
            Scheme::Var(TyVar(i as u32)),
            Scheme::Or(vec![TRUE_TY, FALSE_TY]),
        ));
    }
    // One disjunctive constraint per clause, enumerating the 7 satisfying
    // rows of the clause's truth table.
    for clause in &formula.clauses {
        let lhs = Scheme::Struct(vec![
            ("a".into(), Scheme::Var(TyVar(clause[0].var as u32))),
            ("b".into(), Scheme::Var(TyVar(clause[1].var as u32))),
            ("c".into(), Scheme::Var(TyVar(clause[2].var as u32))),
        ]);
        let mut rows = Vec::new();
        for bits in 0u8..8 {
            let vals = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let satisfied = clause.iter().zip(vals).any(|(l, v)| v == l.positive);
            if satisfied {
                rows.push(Scheme::Struct(vec![
                    ("a".into(), lit_scheme(vals[0])),
                    ("b".into(), lit_scheme(vals[1])),
                    ("c".into(), lit_scheme(vals[2])),
                ]));
            }
        }
        set.push(Constraint::eq(lhs, Scheme::Or(rows)));
    }
    set
}

/// Decodes a solver solution back to a boolean assignment.
///
/// Returns `None` if any variable did not resolve to `int` or `float`.
pub fn decode(solution: &crate::solve::Solution, num_vars: usize) -> Option<Vec<bool>> {
    (0..num_vars)
        .map(|i| match solution.ty_of(TyVar(i as u32))? {
            Ty::Int => Some(true),
            Ty::Float => Some(false),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::solve::{solve, SolveError, SolverConfig};

    #[test]
    fn satisfiable_formula_solves_and_decodes() {
        // (x0 ∨ x1 ∨ ¬x2) ∧ (¬x0 ∨ x2 ∨ x1)
        let mut f = Formula::new(3);
        f.clause(Lit::pos(0), Lit::pos(1), Lit::neg(2));
        f.clause(Lit::neg(0), Lit::pos(2), Lit::pos(1));
        let set = encode(&f);
        let sol = solve(&set, &SolverConfig::heuristic()).unwrap();
        let assignment = decode(&sol, 3).unwrap();
        assert!(
            f.eval(&assignment),
            "decoded assignment must satisfy the formula"
        );
    }

    #[test]
    fn unsatisfiable_formula_is_rejected() {
        // (x0)(x0)(x0) vs (¬x0)(¬x0)(¬x0): x0 ∧ ¬x0.
        let mut f = Formula::new(1);
        f.clause(Lit::pos(0), Lit::pos(0), Lit::pos(0));
        f.clause(Lit::neg(0), Lit::neg(0), Lit::neg(0));
        assert!(f.brute_force_sat().is_none());
        let set = encode(&f);
        let err = solve(&set, &SolverConfig::heuristic()).unwrap_err();
        assert!(matches!(err, SolveError::Unsatisfiable { .. }));
    }

    #[test]
    fn solver_agrees_with_brute_force_on_random_instances() {
        // Deterministic pseudo-random 3-CNF instances.
        let mut seed = 0xdead_beefu64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let num_vars = 4 + (rand() % 3) as usize; // 4..=6
            let num_clauses = 3 + (rand() % 10) as usize;
            let mut f = Formula::new(num_vars);
            for _ in 0..num_clauses {
                let mk = |r: u64| Lit {
                    var: (r % num_vars as u64) as usize,
                    positive: r & (1 << 20) != 0,
                };
                f.clause(mk(rand()), mk(rand()), mk(rand()));
            }
            let brute = f.brute_force_sat();
            let solved = solve(&encode(&f), &SolverConfig::heuristic());
            match (brute, solved) {
                (Some(_), Ok(sol)) => {
                    let assignment = decode(&sol, num_vars).unwrap();
                    assert!(
                        f.eval(&assignment),
                        "solver produced a falsifying assignment"
                    );
                }
                (None, Err(SolveError::Unsatisfiable { .. })) => {}
                (brute, solved) => panic!(
                    "solver disagrees with brute force: brute={:?} solved_ok={}",
                    brute.is_some(),
                    solved.is_ok()
                ),
            }
        }
    }

    #[test]
    fn eval_matches_clause_semantics() {
        let mut f = Formula::new(2);
        f.clause(Lit::pos(0), Lit::neg(1), Lit::neg(1));
        assert!(f.eval(&[true, true]));
        assert!(f.eval(&[true, false]));
        assert!(f.eval(&[false, false]));
        assert!(!f.eval(&[false, true]));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn clause_validates_variables() {
        Formula::new(1).clause(Lit::pos(0), Lit::pos(1), Lit::pos(0));
    }
}
