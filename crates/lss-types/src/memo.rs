//! Solver partition memoization.
//!
//! Heuristic 3 (divide and conquer) splits a model's constraint
//! conjunction into sub-systems that share no type variables. Those
//! sub-systems recur heavily across builds of multi-file projects: editing
//! one module leaves most partitions byte-for-byte identical, and two
//! instances of the same library component generate structurally identical
//! partitions that differ only in variable numbering. This module lets a
//! caller cache *solved partitions* across [`solve_with_memo`] runs:
//!
//! * [`partition_key`] computes a canonical content hash of one partition —
//!   variables are renumbered by first occurrence so the key is invariant
//!   under variable renaming, and constraint origins (pure provenance) are
//!   excluded;
//! * [`PartitionMemo`] is the cache interface: the stored value is the
//!   inferred ground type (or `None` for legitimately unresolved) of each
//!   partition variable, in the same canonical first-occurrence order;
//! * [`MemoryMemo`] is the trivial in-process implementation; the driver
//!   layers an on-disk store with the same interface.
//!
//! Only *successful* solves are cached. Replaying a hit binds the stored
//! types directly into the substitution, skipping unification and
//! disjunction search entirely; [`crate::SolveStats::memo_hits`] counts the
//! partitions satisfied this way.

use std::collections::HashMap;

use crate::constraint::Constraint;
use crate::solve::SolverConfig;
use crate::ty::{Scheme, Ty, TyVar};

/// A cache of solved constraint partitions.
///
/// Keys come from [`partition_key`]; values are the solved ground types of
/// the partition's variables in canonical (first-occurrence) order, with
/// `None` marking a variable the solver legitimately left unresolved.
pub trait PartitionMemo {
    /// Returns the stored solution for `key`, if any.
    fn lookup(&mut self, key: u64) -> Option<Vec<Option<Ty>>>;
    /// Stores the solution for `key`.
    fn store(&mut self, key: u64, tys: &[Option<Ty>]);
}

/// An in-process [`PartitionMemo`] backed by a `HashMap`.
#[derive(Debug, Default)]
pub struct MemoryMemo {
    entries: HashMap<u64, Vec<Option<Ty>>>,
    hits: u64,
    misses: u64,
}

impl MemoryMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of successful lookups since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of failed lookups since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of stored partitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl PartitionMemo for MemoryMemo {
    fn lookup(&mut self, key: u64) -> Option<Vec<Option<Ty>>> {
        match self.entries.get(&key) {
            Some(v) => {
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn store(&mut self, key: u64, tys: &[Option<Ty>]) {
        self.entries.insert(key, tys.to_vec());
    }
}

/// FNV-1a 64-bit, the same function the driver uses for content hashes.
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1_0000_0000_01b3;

    fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The canonical variable order of a partition: every variable mentioned by
/// `constraints`, in order of first occurrence (left-to-right within each
/// constraint, constraints in partition order).
pub fn canonical_vars(constraints: &[&Constraint]) -> Vec<TyVar> {
    let mut order = Vec::new();
    let mut seen = HashMap::new();
    for c in constraints {
        for v in c.vars() {
            if seen.insert(v, ()).is_none() {
                order.push(v);
            }
        }
    }
    order
}

fn hash_scheme(h: &mut Fnv64, s: &Scheme, canon: &HashMap<TyVar, u32>) {
    match s {
        Scheme::Int => h.write_u8(0),
        Scheme::Bool => h.write_u8(1),
        Scheme::Float => h.write_u8(2),
        Scheme::String => h.write_u8(3),
        Scheme::Array(t, n) => {
            h.write_u8(4);
            hash_scheme(h, t, canon);
            h.write_usize(*n);
        }
        Scheme::Struct(fields) => {
            h.write_u8(5);
            h.write_usize(fields.len());
            for (name, t) in fields {
                h.write_str(name);
                hash_scheme(h, t, canon);
            }
        }
        Scheme::Var(v) => {
            h.write_u8(6);
            // Canonical id, so the key is invariant under renaming.
            h.write_u32(canon[v]);
        }
        Scheme::Or(alts) => {
            h.write_u8(7);
            h.write_usize(alts.len());
            for a in alts {
                hash_scheme(h, a, canon);
            }
        }
    }
}

/// Computes the canonical content key of one partition together with its
/// canonical variable order.
///
/// The key covers the structure of every constraint (variables renumbered
/// by first occurrence, origins excluded — they are provenance, not
/// content) plus the solver heuristics that can change *which* solution a
/// disjunctive system resolves to. Two partitions with equal keys solve to
/// the same types for corresponding variables.
pub fn partition_key(constraints: &[&Constraint], config: &SolverConfig) -> (u64, Vec<TyVar>) {
    let vars = canonical_vars(constraints);
    let canon: HashMap<TyVar, u32> = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, i as u32))
        .collect();
    let mut h = Fnv64::new();
    // Heuristic switches steer the search order, and a disjunctive system
    // can have several valid solutions — different configs may commit to
    // different ones, so the config is part of the key.
    h.write_u8(config.reorder as u8);
    h.write_u8(config.smart as u8);
    h.write_usize(config.expansion_cap);
    h.write_usize(constraints.len());
    for c in constraints {
        hash_scheme(&mut h, &c.lhs, &canon);
        hash_scheme(&mut h, &c.rhs, &canon);
    }
    (h.finish(), vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintOrigin;

    fn eq(lhs: Scheme, rhs: Scheme) -> Constraint {
        Constraint::with_origin(lhs, rhs, ConstraintOrigin::Synthetic)
    }

    #[test]
    fn key_is_invariant_under_variable_renaming() {
        let cfg = SolverConfig::heuristic();
        let a = eq(Scheme::Var(TyVar(0)), Scheme::Int);
        let b = eq(Scheme::Var(TyVar(7)), Scheme::Int);
        let (ka, va) = partition_key(&[&a], &cfg);
        let (kb, vb) = partition_key(&[&b], &cfg);
        assert_eq!(ka, kb);
        assert_eq!(va, vec![TyVar(0)]);
        assert_eq!(vb, vec![TyVar(7)]);
    }

    #[test]
    fn key_distinguishes_structure() {
        let cfg = SolverConfig::heuristic();
        let a = eq(Scheme::Var(TyVar(0)), Scheme::Int);
        let b = eq(Scheme::Var(TyVar(0)), Scheme::Float);
        assert_ne!(partition_key(&[&a], &cfg).0, partition_key(&[&b], &cfg).0);
    }

    #[test]
    fn key_ignores_origins_but_not_config() {
        let a = Constraint::with_origin(
            Scheme::Var(TyVar(0)),
            Scheme::Int,
            ConstraintOrigin::Connection {
                src: "a.out".into(),
                dst: "b.in".into(),
            },
        );
        let b = eq(Scheme::Var(TyVar(0)), Scheme::Int);
        let heuristic = SolverConfig::heuristic();
        let naive = SolverConfig::naive();
        assert_eq!(
            partition_key(&[&a], &heuristic).0,
            partition_key(&[&b], &heuristic).0
        );
        assert_ne!(
            partition_key(&[&a], &heuristic).0,
            partition_key(&[&a], &naive).0
        );
    }

    #[test]
    fn shared_variables_keep_their_identity() {
        // v0 = v1 and v0 = v0 must hash differently.
        let cfg = SolverConfig::heuristic();
        let a = eq(Scheme::Var(TyVar(0)), Scheme::Var(TyVar(1)));
        let b = eq(Scheme::Var(TyVar(0)), Scheme::Var(TyVar(0)));
        assert_ne!(partition_key(&[&a], &cfg).0, partition_key(&[&b], &cfg).0);
    }

    #[test]
    fn memoized_solve_matches_cold_solve() {
        use crate::constraint::ConstraintSet;
        use crate::solve::solve_with_memo;

        let cfg = SolverConfig::heuristic();
        let mut set = ConstraintSet::new();
        // Two independent partitions, one disjunctive.
        set.push(eq(
            Scheme::Var(TyVar(0)),
            Scheme::Or(vec![Scheme::Int, Scheme::Float]),
        ));
        set.push(eq(Scheme::Var(TyVar(0)), Scheme::Float));
        set.push(eq(Scheme::Var(TyVar(1)), Scheme::Int));

        let mut memo = MemoryMemo::new();
        let cold = solve_with_memo(&set, &cfg, Some(&mut memo)).expect("cold solve succeeds");
        assert_eq!(cold.stats.memo_hits, 0);
        assert_eq!(memo.len(), 2);

        let warm = solve_with_memo(&set, &cfg, Some(&mut memo)).expect("warm solve succeeds");
        assert_eq!(warm.stats.memo_hits, 2);
        assert_eq!(warm.stats.unify_steps, 0, "replay must skip unification");
        for v in [TyVar(0), TyVar(1)] {
            assert_eq!(warm.ty_of(v), cold.ty_of(v));
        }

        // A renamed but isomorphic system hits the same entries.
        let mut renamed = ConstraintSet::new();
        renamed.push(eq(
            Scheme::Var(TyVar(9)),
            Scheme::Or(vec![Scheme::Int, Scheme::Float]),
        ));
        renamed.push(eq(Scheme::Var(TyVar(9)), Scheme::Float));
        renamed.push(eq(Scheme::Var(TyVar(3)), Scheme::Int));
        let iso =
            solve_with_memo(&renamed, &cfg, Some(&mut memo)).expect("isomorphic solve succeeds");
        assert_eq!(iso.stats.memo_hits, 2);
        assert_eq!(iso.ty_of(TyVar(9)), Some(Ty::Float));
        assert_eq!(iso.ty_of(TyVar(3)), Some(Ty::Int));
    }

    #[test]
    fn memory_memo_round_trips() {
        let mut memo = MemoryMemo::new();
        assert_eq!(memo.lookup(1), None);
        memo.store(1, &[Some(Ty::Int), None]);
        assert_eq!(memo.lookup(1), Some(vec![Some(Ty::Int), None]));
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.len(), 1);
    }
}
