//! Generators for constraint families with known structure.
//!
//! These model the shapes that arise in real LSS netlists — "long chains of
//! polymorphic data routing components and polymorphic state elements"
//! (§4.4) — and drive the §5 scaling benchmarks (seconds with heuristics vs
//! ">12 hours" without).

use crate::constraint::{Constraint, ConstraintSet};
use crate::rng::SplitMix64;
use crate::ty::{Scheme, TyVar};

/// The `k` overload alternatives used by the generators.
fn overload_alts(k: usize) -> Vec<Scheme> {
    let base = [Scheme::Int, Scheme::Float, Scheme::Bool, Scheme::String];
    let mut alts = Vec::with_capacity(k);
    for i in 0..k {
        if i < base.len() {
            alts.push(base[i].clone());
        } else {
            // Widen the overload family with distinct array types.
            alts.push(Scheme::Array(
                Box::new(base[i % base.len()].clone()),
                1 + i / base.len(),
            ));
        }
    }
    alts
}

/// A pipeline of `n` components, each overloaded `k` ways, with the far end
/// pinned to the *last* overload alternative.
///
/// Worst case for the naive in-order solver: all disjunctive domain
/// constraints appear before the equalities and the pin, so it explores
/// `k^n` assignments in the worst case. The heuristic solver reorders,
/// grounds the chain from the pin, and commits every disjunction without
/// branching.
pub fn overloaded_chain(n: usize, k: usize) -> ConstraintSet {
    assert!(k >= 1, "need at least one overload alternative");
    let alts = overload_alts(k);
    let mut set = ConstraintSet::new();
    for i in 0..n {
        set.push(Constraint::eq(
            Scheme::Var(TyVar(i as u32)),
            Scheme::Or(alts.clone()),
        ));
    }
    for i in 1..n {
        set.push(Constraint::eq(
            Scheme::Var(TyVar(i as u32 - 1)),
            Scheme::Var(TyVar(i as u32)),
        ));
    }
    set.push(Constraint::eq(
        Scheme::Var(TyVar(n as u32 - 1)),
        alts.last().expect("k >= 1").clone(),
    ));
    set
}

/// `m` structurally independent overloaded chains of length `n`.
///
/// Exercises the divide-and-conquer heuristic: partitioning solves the `m`
/// chains separately (cost `m * chain`), while an unpartitioned search
/// multiplies the branch factors.
pub fn independent_chains(m: usize, n: usize, k: usize) -> ConstraintSet {
    let mut set = ConstraintSet::new();
    for chain in 0..m {
        let base = (chain * n) as u32;
        let sub = overloaded_chain(n, k);
        for c in sub.iter() {
            set.push(Constraint::eq(shift(&c.lhs, base), shift(&c.rhs, base)));
        }
    }
    set
}

/// A crossbar: `n` producers each overloaded `k` ways, all connected to one
/// polymorphic consumer bus, pinned at the consumer.
///
/// Heavily favors the smart-disjunction heuristic (every producer is forced
/// once the bus type is known).
pub fn crossbar(n: usize, k: usize) -> ConstraintSet {
    let alts = overload_alts(k);
    let mut set = ConstraintSet::new();
    let bus = TyVar(n as u32);
    for i in 0..n {
        let producer = TyVar(i as u32);
        set.push(Constraint::eq(
            Scheme::Var(producer),
            Scheme::Or(alts.clone()),
        ));
        set.push(Constraint::eq(Scheme::Var(producer), Scheme::Var(bus)));
    }
    set.push(Constraint::eq(
        Scheme::Var(bus),
        alts.last().expect("k >= 1").clone(),
    ));
    set
}

/// An *unsatisfiable* variant of [`overloaded_chain`]: the two ends are
/// pinned to different overload alternatives. Forces full search-space
/// exhaustion in solvers without pruning.
pub fn contradictory_chain(n: usize, k: usize) -> ConstraintSet {
    assert!(k >= 2 && n >= 2);
    let alts = overload_alts(k);
    let mut set = overloaded_chain(n, k);
    set.push(Constraint::eq(Scheme::Var(TyVar(0)), alts[0].clone()));
    set
}

/// A seeded random constraint set over `n_vars` variables with up to
/// `n_constraints` constraints, mixing equalities between variables, ground
/// pins, array/struct wrappers, and `k`-way disjunctive domains.
///
/// Unlike the structured families above, the output is *not* guaranteed
/// satisfiable — roughly half the seeds produce contradictions — which makes
/// it the verdict-agreement workload for differential testing the heuristic
/// solver against an exhaustive oracle (`lss-verify`). Equal seeds yield
/// equal sets.
pub fn random_set(seed: u64, n_vars: usize, n_constraints: usize, k: usize) -> ConstraintSet {
    assert!(n_vars >= 1 && k >= 1);
    let mut rng = SplitMix64::new(seed);
    let alts = overload_alts(k);
    let mut set = ConstraintSet::new();
    let var = |rng: &mut SplitMix64| TyVar(rng.index(n_vars) as u32);
    for _ in 0..n_constraints {
        let lhs = Scheme::Var(var(&mut rng));
        let rhs = match rng.below(10) {
            // Chain link: two variables must agree.
            0..=3 => Scheme::Var(var(&mut rng)),
            // Ground pin to one of the overload alternatives.
            4..=5 => alts[rng.index(alts.len())].clone(),
            // Disjunctive domain (a random subset of >= 2 alternatives).
            6..=7 => {
                let n = 2 + rng.index(alts.len() - 1).min(alts.len() - 2);
                let mut pick = Vec::with_capacity(n);
                while pick.len() < n {
                    let alt = alts[rng.index(alts.len())].clone();
                    if !pick.contains(&alt) {
                        pick.push(alt);
                    }
                }
                Scheme::Or(pick)
            }
            // Array wrapper around another variable (structural nesting).
            8 => Scheme::Array(Box::new(Scheme::Var(var(&mut rng))), 1 + rng.index(3)),
            // Struct wrapper with one or two variable fields.
            _ => {
                let mut fields = vec![("a".to_string(), Scheme::Var(var(&mut rng)))];
                if rng.percent(50) {
                    fields.push(("b".to_string(), Scheme::Var(var(&mut rng))));
                }
                Scheme::Struct(fields)
            }
        };
        set.push(Constraint::eq(lhs, rhs));
    }
    set
}

/// Renames every variable in `scheme` by adding `offset` to its index.
fn shift(scheme: &Scheme, offset: u32) -> Scheme {
    match scheme {
        Scheme::Var(v) => Scheme::Var(TyVar(v.0 + offset)),
        Scheme::Array(t, n) => Scheme::Array(Box::new(shift(t, offset)), *n),
        Scheme::Struct(fields) => Scheme::Struct(
            fields
                .iter()
                .map(|(name, t)| (name.clone(), shift(t, offset)))
                .collect(),
        ),
        Scheme::Or(alts) => Scheme::Or(alts.iter().map(|t| shift(t, offset)).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::solve::{solve, SolveError, SolverConfig};
    use crate::ty::Ty;

    #[test]
    fn chain_solves_to_the_pinned_type() {
        let set = overloaded_chain(10, 3);
        let sol = solve(&set, &SolverConfig::heuristic()).unwrap();
        for i in 0..10 {
            assert_eq!(sol.ty_of(TyVar(i)), Some(Ty::Bool)); // 3rd alternative
        }
        assert_eq!(
            sol.stats.branches, 0,
            "chain should be solved purely by smart commits"
        );
    }

    #[test]
    fn independent_chains_partition_cleanly() {
        let set = independent_chains(5, 4, 2);
        let sol = solve(&set, &SolverConfig::heuristic()).unwrap();
        assert_eq!(sol.stats.partitions, 5);
        for v in 0..20 {
            assert_eq!(sol.ty_of(TyVar(v)), Some(Ty::Float));
        }
    }

    #[test]
    fn crossbar_resolves_all_producers() {
        let set = crossbar(8, 4);
        let sol = solve(&set, &SolverConfig::heuristic()).unwrap();
        for i in 0..=8 {
            assert_eq!(sol.ty_of(TyVar(i)), Some(Ty::String)); // 4th alternative
        }
    }

    #[test]
    fn contradictory_chain_is_unsat_in_all_modes() {
        let set = contradictory_chain(5, 2);
        for config in [
            SolverConfig::heuristic(),
            SolverConfig::naive().with_budget(2_000_000),
        ] {
            let err = solve(&set, &config).unwrap_err();
            assert!(
                matches!(err, SolveError::Unsatisfiable { .. }),
                "expected unsat, got {err:?}"
            );
        }
    }

    #[test]
    fn naive_work_grows_exponentially_with_chain_length() {
        // The shape claim behind Figure "§5": heuristics keep the cost flat
        // while the naive algorithm explodes.
        let steps = |n: usize, config: &SolverConfig| {
            solve(&overloaded_chain(n, 2), config)
                .unwrap()
                .stats
                .unify_steps
        };
        let naive = SolverConfig::naive();
        let heur = SolverConfig::heuristic();
        let naive_growth = steps(14, &naive) as f64 / steps(10, &naive) as f64;
        let heur_growth = steps(14, &heur) as f64 / steps(10, &heur) as f64;
        assert!(
            naive_growth > 4.0,
            "naive growth should be exponential, got {naive_growth}"
        );
        assert!(
            heur_growth < 3.0,
            "heuristic growth should be near-linear, got {heur_growth}"
        );
    }

    #[test]
    fn overload_alternatives_are_distinct() {
        let alts = overload_alts(10);
        for i in 0..alts.len() {
            for j in i + 1..alts.len() {
                assert_ne!(alts[i], alts[j], "alternatives {i} and {j} collide");
            }
        }
    }
}
