//! A minimal measurement harness for the `[[bench]]` binaries: wall-clock
//! repetition with warmup, median/mean/min summary, and a hand-rolled JSON
//! emitter so results are machine-readable without external crates.

use std::fmt::Write as _;
use std::time::Instant;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Group/case label, e.g. `sim_delay_chain_100cycles/static/64`.
    pub name: String,
    /// Number of measured iterations.
    pub iters: u32,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: u64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: u64,
    /// Fastest iteration in nanoseconds.
    pub min_ns: u64,
}

/// Runs `f` for `warmup` unmeasured and `iters` measured iterations and
/// returns the summary. Prints one human-readable line per case.
pub fn measure<F: FnMut()>(name: impl Into<String>, warmup: u32, iters: u32, mut f: F) -> Sample {
    let name = name.into();
    assert!(iters > 0, "need at least one measured iteration");
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<u64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    let median_ns = times[times.len() / 2];
    let mean_ns = times.iter().sum::<u64>() / times.len() as u64;
    let min_ns = times[0];
    println!(
        "{name:<48} median {:>10}  mean {:>10}  min {:>10}  ({iters} iters)",
        fmt_ns(median_ns),
        fmt_ns(mean_ns),
        fmt_ns(min_ns)
    );
    Sample {
        name,
        iters,
        median_ns,
        mean_ns,
        min_ns,
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Serializes samples as a JSON array (stable key order, no dependencies).
pub fn to_json(samples: &[Sample]) -> String {
    let mut out = String::from("[\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        writeln!(
            out,
            "  {{\"name\": \"{}\", \"iters\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}}}{comma}",
            escape(&s.name),
            s.iters,
            s.median_ns,
            s.mean_ns,
            s.min_ns
        )
        .unwrap();
    }
    out.push(']');
    out.push('\n');
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes samples to `path` as JSON, reporting where they went.
pub fn write_json(path: &str, samples: &[Sample]) {
    std::fs::write(path, to_json(samples)).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path} ({} cases)", samples.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_ordered_stats() {
        let s = measure("noop", 1, 5, || {
            std::hint::black_box(1 + 1);
        });
        assert!(s.min_ns <= s.median_ns);
        assert_eq!(s.iters, 5);
    }

    #[test]
    fn json_is_well_formed() {
        let samples = vec![Sample {
            name: "a\"b".into(),
            iters: 3,
            median_ns: 10,
            mean_ns: 11,
            min_ns: 9,
        }];
        let json = to_json(&samples);
        assert!(json.contains("\\\""));
        assert!(json.trim_end().starts_with('[') && json.trim_end().ends_with(']'));
    }
}
