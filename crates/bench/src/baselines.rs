//! In-repo baselines for the Table 1 capability comparison.
//!
//! The paper compares LSS against two modeling paradigms. To make each
//! Table 1 cell *executable* rather than anecdotal, we implement a minimal
//! but honest representative of each paradigm and probe it:
//!
//! * [`static_structural`] — a Ptolemy/Vergil-style declarative netlist:
//!   the description is data, so it is fully analyzable before execution,
//!   but there is no mechanism for a *parametric number* of instances or
//!   connections: flexible hierarchies must be unrolled by hand (§3.1).
//! * [`structural_oop`] — a SystemC-style run-time composition: structure
//!   is built by arbitrary host code with loops and conditionals, but that
//!   code only runs when the model runs, so nothing structural is known
//!   statically and polymorphism must be resolved by explicit type
//!   instantiation at construction time (§3.2).

/// The static-structural paradigm: a declarative, immediately-analyzable
/// netlist with per-instance value parameters only.
pub mod static_structural {
    use std::collections::BTreeMap;

    /// A declarative netlist description.
    #[derive(Debug, Default, Clone)]
    pub struct Description {
        /// (instance name, component kind).
        pub instances: Vec<(String, String)>,
        /// Value parameters per instance.
        pub params: BTreeMap<(String, String), i64>,
        /// (from.port, to.port) pairs.
        pub connections: Vec<(String, String)>,
    }

    impl Description {
        /// Creates an empty description.
        pub fn new() -> Self {
            Self::default()
        }

        /// Declares an instance. Note the signature: a *name and a kind* —
        /// there is deliberately no hook for code, so the set of instances
        /// is fixed by the description text. This is the paradigm's §3.1
        /// limitation, not an implementation shortcut.
        pub fn instance(&mut self, name: &str, kind: &str) -> &mut Self {
            self.instances.push((name.to_string(), kind.to_string()));
            self
        }

        /// Sets a value parameter (parameterizable components: supported).
        pub fn param(&mut self, instance: &str, key: &str, value: i64) -> &mut Self {
            self.params
                .insert((instance.to_string(), key.to_string()), value);
            self
        }

        /// Connects two ports.
        pub fn connect(&mut self, from: &str, to: &str) -> &mut Self {
            self.connections.push((from.to_string(), to.to_string()));
            self
        }

        /// Static analysis: the description *is* the structure, available
        /// without executing anything.
        pub fn instance_count(&self) -> usize {
            self.instances.len()
        }

        /// Static analysis: fan-in per port, computable pre-run.
        pub fn fan_in(&self, port: &str) -> usize {
            self.connections.iter().filter(|(_, to)| to == port).count()
        }
    }

    /// The only way to get an n-stage delay chain in this paradigm: a
    /// *generator outside the paradigm* (or a human) must unroll it into
    /// the description. The description itself cannot iterate.
    pub fn unrolled_delay_chain(n: usize) -> Description {
        let mut d = Description::new();
        d.instance("gen", "source");
        for i in 0..n {
            d.instance(&format!("d{i}"), "delay");
        }
        d.instance("hole", "sink");
        d.connect("gen.out", "d0.in");
        for i in 1..n {
            d.connect(&format!("d{}.out", i - 1), &format!("d{i}.in"));
        }
        d.connect(&format!("d{}.out", n - 1), "hole.in");
        d
    }
}

/// The structural-OOP paradigm: structure built by arbitrary host code at
/// model run time.
pub mod structural_oop {
    /// A component instance created at run time.
    #[derive(Debug, Clone)]
    pub struct Component {
        /// Instance name.
        pub name: String,
        /// Kind.
        pub kind: String,
        /// Explicitly instantiated port type — the user must write this;
        /// nothing can infer it because connectivity is only known after
        /// the construction code runs (§3.2).
        pub port_type: &'static str,
    }

    /// What executing a model's construction code yields: components plus
    /// name-to-name connections.
    pub type BuiltStructure = (Vec<Component>, Vec<(String, String)>);

    /// A model whose structure is produced by executing `build`.
    pub struct Model {
        build: Box<dyn Fn() -> BuiltStructure>,
    }

    impl Model {
        /// Wraps construction code. Loops, conditionals, parameters — any
        /// host-language control flow is fine (algorithmic structure:
        /// supported).
        pub fn new(build: impl Fn() -> BuiltStructure + 'static) -> Self {
            Model {
                build: Box::new(build),
            }
        }

        /// The *only* way to learn the structure: execute the model's
        /// construction code. Before this, no analysis is possible — this
        /// method is the paradigm's §3.2 limitation made concrete.
        pub fn elaborate_at_run_time(&self) -> (Vec<Component>, Vec<(String, String)>) {
            (self.build)()
        }
    }

    /// The n-stage delay chain is easy here (Figure 3's pseudo-code)...
    pub fn delay_chain(n: usize) -> Model {
        Model::new(move || {
            let mut comps = vec![Component {
                name: "gen".into(),
                kind: "source".into(),
                // ...but the type must be written explicitly: the OOP
                // paradigm cannot infer it from connections it has not
                // made yet.
                port_type: "int",
            }];
            let mut conns = Vec::new();
            for i in 0..n {
                comps.push(Component {
                    name: format!("d{i}"),
                    kind: "delay".into(),
                    port_type: "int",
                });
            }
            comps.push(Component {
                name: "hole".into(),
                kind: "sink".into(),
                port_type: "int",
            });
            conns.push(("gen.out".to_string(), "d0.in".to_string()));
            for i in 1..n {
                conns.push((format!("d{}.out", i - 1), format!("d{i}.in")));
            }
            conns.push((format!("d{}.out", n - 1), "hole.in".to_string()));
            (comps, conns)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_description_is_analyzable_without_running() {
        let d = static_structural::unrolled_delay_chain(3);
        assert_eq!(d.instance_count(), 5);
        assert_eq!(d.fan_in("d1.in"), 1);
        assert_eq!(d.fan_in("hole.in"), 1);
    }

    #[test]
    fn static_description_grows_linearly_with_n() {
        // The point of §3.1: the *description* (not a reusable component)
        // must contain one entry per stage.
        let d10 = static_structural::unrolled_delay_chain(10);
        let d20 = static_structural::unrolled_delay_chain(20);
        assert_eq!(d10.instance_count() + 10, d20.instance_count());
    }

    #[test]
    fn oop_structure_only_exists_after_execution() {
        let model = structural_oop::delay_chain(4);
        let (comps, conns) = model.elaborate_at_run_time();
        assert_eq!(comps.len(), 6);
        assert_eq!(conns.len(), 5);
        // Every component carries an explicitly-specified type.
        assert!(comps.iter().all(|c| c.port_type == "int"));
    }
}
