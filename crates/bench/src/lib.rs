//! Shared helpers for the experiment binaries and Criterion benches that
//! regenerate the paper's tables and figures (see DESIGN.md §4 for the
//! experiment index).

pub mod baselines;
pub mod timing;

use lss_driver::Elaborated;
use lss_interp::CompileOptions;
use lss_models::Model;
use lss_netlist::Netlist;

/// Compiles a Table 3 model, panicking with diagnostics on failure (the
/// experiment binaries treat model breakage as fatal).
pub fn compiled_model(model: &Model) -> Elaborated {
    lss_models::compile_model(model)
        .unwrap_or_else(|e| panic!("model {} failed to compile:\n{e}", model.id))
}

/// Compiles model source with explicit options.
pub fn compiled_source(src: &str, opts: &CompileOptions) -> Elaborated {
    lss_models::compile_source(src, opts)
        .unwrap_or_else(|e| panic!("source failed to compile:\n{e}"))
}

/// A generated delay-chain model of `n` stages and `width` lanes: the
/// scaling workload for elaboration and simulation benchmarks.
pub fn delay_chain_source(n: usize, lanes: usize) -> String {
    format!(
        r#"
        module widesrc {{ outport out:'a; tar_file = "corelib/source.tar"; }};
        module widesink {{ inport in:'a; runtime var count:int = 0; tar_file = "corelib/sink.tar"; }};
        module widedelay {{ inport in:'a; outport out:'a; tar_file = "corelib/latch.tar"; }};
        module widechain {{
            parameter n:int;
            inport in:'a;
            outport out:'a;
            var stages:instance ref[];
            stages = new instance[n](widedelay, "stages");
            var i:int;
            LSS_connect_bus(in, stages[0].in, in.width);
            for (i = 1; i < n; i = i + 1) {{
                LSS_connect_bus(stages[i-1].out, stages[i].in, in.width);
            }}
            LSS_connect_bus(stages[n-1].out, out, in.width);
        }};
        instance gen:widesrc;
        instance chain:widechain;
        chain.n = {n};
        instance hole:widesink;
        LSS_connect_bus(gen.out, chain.in, {lanes});
        LSS_connect_bus(chain.out, hole.in, {lanes});
        gen.out :: int;
        "#
    )
}

/// Builds a simulator for `netlist` with the corelib registry.
pub fn simulator(netlist: &Netlist, scheduler: lss_sim::Scheduler) -> lss_sim::Simulator {
    simulator_opts(
        netlist,
        lss_sim::SimOptions {
            scheduler,
            ..Default::default()
        },
    )
}

/// Builds a simulator with full engine options (compiled kernels, threads).
pub fn simulator_opts(netlist: &Netlist, opts: lss_sim::SimOptions) -> lss_sim::Simulator {
    lss_sim::build(netlist, &lss_corelib::registry(), opts)
        .unwrap_or_else(|e| panic!("simulator build failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_chain_scales() {
        for (n, lanes) in [(1, 1), (5, 3)] {
            let src = delay_chain_source(n, lanes);
            let compiled = compiled_source(&src, &CompileOptions::default());
            assert_eq!(compiled.netlist.instances.len(), 3 + n);
            let mut sim = simulator(&compiled.netlist, lss_sim::Scheduler::Static);
            sim.run(10).unwrap();
            let count = sim.rtv("hole", "count").unwrap().as_int().unwrap();
            // After n cycles of latency, `lanes` values arrive per cycle.
            assert_eq!(count, (10 - n as i64) * lanes as i64);
        }
    }
}
