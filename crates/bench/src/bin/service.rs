//! Service-layer benchmark: what the `lssd` daemon sustains, written to
//! `crates/bench/BENCH_service.json`.
//!
//! Three questions:
//!
//! 1. **Warm-compile service rate.** Requests per second and p50/p99
//!    latency for a hot-map compile of a Table 3 model at 1, 4, and 16
//!    concurrent clients.
//! 2. **Simulate service rate.** The same ladder for a 1000-cycle
//!    simulate (compile is hot; the cycles are the work).
//! 3. **Saturation behavior.** With 2 workers and a 2-deep queue under
//!    16 clients, the daemon must shed load with typed `busy` responses
//!    — this binary *asserts* that shedding (not timeout pileup) is
//!    what happens: every response is `ok` or `busy`, the shed counter
//!    moves, and no client sees a transport error.
//!
//! Run with `cargo run --release -p bench --bin service`.

use std::io::Write as _;
use std::time::{Duration, Instant};

use lss_netlist::jsonval::JsonValue;
use lssd::{Client, Endpoint, Request, Server, ServerConfig, Verb};

/// One measured service scenario.
struct ServiceSample {
    name: String,
    clients: usize,
    requests: u64,
    req_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    shed: u64,
}

struct Daemon {
    endpoint: Endpoint,
    drain: lssd::DrainHandle,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn boot(configure: impl FnOnce(&mut ServerConfig)) -> Daemon {
    let mut cfg = ServerConfig {
        cache_dir: None, // hot map only: the disk is not what we measure
        chaos: true,
        ..ServerConfig::default()
    };
    configure(&mut cfg);
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let endpoint = Endpoint::Tcp(server.tcp_addr().expect("tcp").to_string());
    let drain = server.drain_handle();
    let handle = std::thread::spawn(move || server.run());
    Daemon {
        endpoint,
        drain,
        handle: Some(handle),
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.drain.drain();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn status(value: &JsonValue) -> &str {
    value
        .get("status")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
}

fn stat(daemon: &Daemon, key: &str) -> u64 {
    let mut client = Client::connect(&daemon.endpoint).expect("stats connect");
    let value = client.request(&Request::new(Verb::Stats)).expect("stats");
    value.get(key).and_then(JsonValue::as_i64).unwrap_or(0) as u64
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Runs `per_client` requests from each of `clients` threads, one
/// connection per thread, and reports throughput and latency
/// percentiles across every request.
fn run_ladder(
    daemon: &Daemon,
    name: &str,
    clients: usize,
    per_client: u64,
    request: &Request,
) -> ServiceSample {
    let shed_before = stat(daemon, "shed");
    let start = Instant::now();
    let mut joins = Vec::new();
    for _ in 0..clients {
        let endpoint = daemon.endpoint.clone();
        let request = request.clone();
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(&endpoint).expect("bench connect");
            let mut latencies = Vec::with_capacity(per_client as usize);
            for _ in 0..per_client {
                let t0 = Instant::now();
                let value = client.request_with_retry(&request).expect("bench request");
                assert_eq!(
                    status(&value),
                    "ok",
                    "bench request must succeed: {value:?}"
                );
                latencies.push(t0.elapsed().as_nanos() as u64);
            }
            latencies
        }));
    }
    let mut latencies: Vec<u64> = Vec::new();
    for join in joins {
        latencies.extend(join.join().expect("bench thread"));
    }
    let elapsed = start.elapsed();
    latencies.sort_unstable();
    let requests = clients as u64 * per_client;
    let sample = ServiceSample {
        name: name.to_string(),
        clients,
        requests,
        req_per_sec: requests as f64 / elapsed.as_secs_f64(),
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        shed: stat(daemon, "shed") - shed_before,
    };
    println!(
        "{name}/{clients}: {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms ({} shed)",
        sample.req_per_sec,
        sample.p50_ns as f64 / 1e6,
        sample.p99_ns as f64 / 1e6,
        sample.shed
    );
    sample
}

/// The saturation gate: a burst of raw (no-retry) requests against a
/// deliberately under-provisioned daemon. Load-shedding means every
/// response comes back quickly as `ok` or `busy` — never a timeout,
/// never a transport error, and the `busy` path must actually fire.
fn saturation_gate(samples: &mut Vec<ServiceSample>) {
    let daemon = boot(|cfg| {
        cfg.workers = 2;
        cfg.queue = 2;
        cfg.admit_wait = Duration::from_millis(10);
    });
    let mut sleep = Request::new(Verb::Chaos);
    sleep.fault = Some("worker-sleep".into());

    let clients = 16;
    let per_client = 3u64;
    let shed_before = stat(&daemon, "shed");
    let start = Instant::now();
    let mut joins = Vec::new();
    for _ in 0..clients {
        let endpoint = daemon.endpoint.clone();
        let request = sleep.clone();
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(&endpoint).expect("saturation connect");
            let mut latencies = Vec::new();
            let mut ok = 0u64;
            let mut busy = 0u64;
            for _ in 0..per_client {
                let t0 = Instant::now();
                let value = client.request(&request).expect("saturation request");
                latencies.push(t0.elapsed().as_nanos() as u64);
                match status(&value) {
                    "ok" => ok += 1,
                    "busy" => busy += 1,
                    other => panic!("saturated daemon must shed typed, got {other}: {value:?}"),
                }
            }
            (latencies, ok, busy)
        }));
    }
    let mut latencies: Vec<u64> = Vec::new();
    let (mut ok, mut busy) = (0u64, 0u64);
    for join in joins {
        let (lat, o, b) = join.join().expect("saturation thread");
        latencies.extend(lat);
        ok += o;
        busy += b;
    }
    let elapsed = start.elapsed();
    let shed = stat(&daemon, "shed") - shed_before;
    assert!(
        busy > 0 && shed > 0,
        "saturation must trigger load-shedding (ok={ok}, busy={busy}, shed={shed})"
    );
    // Shedding, not pileup: a shed response returns in milliseconds, so
    // even the slowest request is bounded by queue-wait + one sleep
    // slot, far under the pileup regime (16 clients x 250 ms serialized
    // through 2 workers would be ~2 s per request).
    latencies.sort_unstable();
    let worst = *latencies.last().expect("latencies");
    assert!(
        worst < Duration::from_millis(1500).as_nanos() as u64,
        "worst-case latency {worst}ns looks like queue pileup, not shedding"
    );
    println!(
        "saturation: {ok} ok, {busy} busy ({shed} shed server-side), worst {:.0} ms",
        worst as f64 / 1e6
    );
    samples.push(ServiceSample {
        name: "service/saturation_burst".into(),
        clients,
        requests: clients as u64 * per_client,
        req_per_sec: (clients as u64 * per_client) as f64 / elapsed.as_secs_f64(),
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        shed,
    });
}

fn write_service_json(path: &str, samples: &[ServiceSample]) {
    let mut out = String::from("[\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"clients\": {}, \"requests\": {}, \
             \"req_per_sec\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"shed\": {}}}{comma}\n",
            lss_netlist::json::escape(&s.name),
            s.clients,
            s.requests,
            s.req_per_sec,
            s.p50_ns,
            s.p99_ns,
            s.shed
        ));
    }
    out.push_str("]\n");
    let mut file = std::fs::File::create(path).expect("create BENCH_service.json");
    file.write_all(out.as_bytes())
        .expect("write BENCH_service.json");
    println!("wrote {path}");
}

fn main() {
    let mut samples = Vec::new();

    // Service ladders against a normally-provisioned daemon. Model A
    // compiles once cold; every measured request is a warm repeat.
    let daemon = boot(|_| {});
    let mut compile = Request::new(Verb::Compile);
    compile.model = Some('A');
    let mut simulate = Request::new(Verb::Simulate);
    simulate.model = Some('A');
    simulate.cycles = 1000;

    // Prime the hot map so the ladders measure the steady state.
    let mut primer = Client::connect(&daemon.endpoint).expect("primer connect");
    let primed = primer.request(&compile).expect("prime compile");
    assert_eq!(status(&primed), "ok", "{primed:?}");

    for clients in [1usize, 4, 16] {
        samples.push(run_ladder(
            &daemon,
            "service/warm_compile",
            clients,
            30,
            &compile,
        ));
    }
    for clients in [1usize, 4, 16] {
        samples.push(run_ladder(
            &daemon,
            "service/simulate_1k_cycles",
            clients,
            10,
            &simulate,
        ));
    }
    drop(daemon);

    saturation_gate(&mut samples);

    write_service_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_service.json"),
        &samples,
    );
}
