//! Robustness-layer benchmark: what budget governance costs, and what
//! adversarial crash-fuzzing throughput looks like, written to
//! `crates/bench/BENCH_robustness.json`.
//!
//! Two questions (see `docs/ROBUSTNESS.md`):
//!
//! 1. **Budget overhead.** The same Table 3 model sweep compiled with no
//!    budget versus with every cap armed (deadline, depth, netlist size —
//!    all far above what the models need, so every check runs but none
//!    trips). The strided deadline poll is designed to keep this under
//!    3%, and this binary *asserts* that bar on the noise-robust minimum.
//! 2. **Adversarial throughput.** Hostile inputs checked against the
//!    never-panic/always-terminate contract per second — this bounds how
//!    much crash-fuzz coverage a CI time budget buys.
//!
//! Run with `cargo run --release -p bench --bin robustness`.

use std::time::Duration;

use bench::timing::{measure, write_json};
use lss_models::{driver_for_source, models};
use lss_types::BudgetCaps;
use lss_verify::{run_adversarial, AdversarialConfig};

/// Compiles every Table 3 model once, optionally under an armed budget.
fn compile_sweep(caps: Option<BudgetCaps>) {
    for model in models() {
        let mut driver = driver_for_source(model.source, &Default::default());
        if let Some(caps) = caps {
            driver.set_budget(caps);
        }
        let elaborated = driver
            .elaborate()
            .unwrap_or_else(|e| panic!("model {} failed: {e}", model.id));
        std::hint::black_box(elaborated.netlist.instances.len());
    }
}

fn main() {
    let mut samples = Vec::new();

    // Generous caps: armed (so every check executes) but never exhausted.
    let armed = BudgetCaps {
        deadline: Some(Duration::from_secs(600)),
        max_depth: Some(10_000),
        max_netlist_items: Some(100_000_000),
        max_sim_cycles: Some(u64::MAX),
    };

    // Scheduler/allocator jitter on a shared machine swamps the real
    // overhead (which is near zero by design), so the < 3% bar gets up
    // to three attempts: a genuine regression fails all of them, noise
    // does not.
    let mut kept = None;
    for attempt in 1..=3 {
        let off = measure("robustness/table3_compile_budget_off", 3, 15, || {
            compile_sweep(None);
        });
        let on = measure("robustness/table3_compile_budget_on", 3, 15, || {
            compile_sweep(Some(armed));
        });
        let overhead = on.min_ns as f64 / off.min_ns as f64 - 1.0;
        println!(
            "budget-check overhead (attempt {attempt}): {:.2}%",
            overhead * 100.0
        );
        if overhead < 0.03 {
            kept = Some((off, on));
            break;
        }
    }
    let (off, on) = kept.unwrap_or_else(|| {
        panic!("budget governance must cost < 3% on the Table 3 sweep in one of 3 attempts")
    });
    samples.push(off);
    samples.push(on);

    // Simulation budget overhead: the same Table 3 sweep run for 500
    // cycles with no budget versus with the cycle cap and deadline armed
    // far above need — every per-step check executes, none trips. The
    // cycle check is one integer compare and the deadline poll is
    // strided, so the design bar is < 1% on the noise-robust minimum,
    // with the same three-attempt jitter allowance as above.
    let compiled: Vec<_> = models().iter().map(bench::compiled_model).collect();
    let sim_sweep = |budget: Option<&lss_types::Budget>| {
        for model in &compiled {
            let opts = lss_sim::SimOptions {
                budget: budget.cloned().unwrap_or_else(lss_types::Budget::unlimited),
                ..Default::default()
            };
            let mut sim = bench::simulator_opts(&model.netlist, opts);
            sim.run(500).unwrap();
            std::hint::black_box(sim.stats().comp_evals);
        }
    };
    // The true overhead is far below the scheduler noise band on a
    // shared machine, so the gate compares *accumulated minima*: noise
    // only ever inflates a run, so the min across attempts converges to
    // the real cost while single-attempt ratios bounce around it.
    let mut kept = None;
    let (mut min_off, mut min_on) = (u64::MAX, u64::MAX);
    for attempt in 1..=5 {
        let off = measure("robustness/table3_sim_500cycles_budget_off", 1, 10, || {
            sim_sweep(None);
        });
        let armed_sim = armed.start();
        let on = measure("robustness/table3_sim_500cycles_budget_on", 1, 10, || {
            sim_sweep(Some(&armed_sim));
        });
        min_off = min_off.min(off.min_ns);
        min_on = min_on.min(on.min_ns);
        let overhead = min_on as f64 / min_off as f64 - 1.0;
        println!(
            "sim budget-check overhead (attempt {attempt}, accumulated min): {:.2}%",
            overhead * 100.0
        );
        kept = Some((off, on));
        if overhead < 0.01 {
            break;
        }
        if attempt == 5 {
            panic!("sim budget checks must cost < 1% on the Table 3 sweep (got {overhead:.4})");
        }
    }
    let (off, on) = kept.expect("at least one attempt ran");
    samples.push(off);
    samples.push(on);

    // Adversarial throughput: 50 hostile inputs per iteration, clean run
    // required (a finding would mean ddmin time pollutes the number —
    // and a broken compiler).
    samples.push(measure("robustness/adversarial_fuzz_50", 1, 5, || {
        let report = run_adversarial(
            &AdversarialConfig {
                seed: 1,
                iters: 50,
                deadline: Duration::from_secs(2),
                out_dir: std::env::temp_dir().join("lss-bench-robustness"),
            },
            |_| {},
        );
        assert!(report.clean(), "adversarial baseline must be clean");
    }));

    write_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_robustness.json"),
        &samples,
    );
}
