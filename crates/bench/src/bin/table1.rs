//! Regenerates the paper's Table 1: the capability matrix of modeling
//! paradigms. Every "yes" cell for LSS is backed by an *executed probe*
//! against this repository's implementation; the baseline columns are
//! probed against the in-repo paradigm representatives
//! (`bench::baselines`), so the claimed limitations are demonstrable, not
//! anecdotal.
//!
//! Run with `cargo run -p bench --bin table1`.

use bench::baselines::{static_structural, structural_oop};
use liberty::Lse;
use lss_types::Ty;

/// Compiles a snippet against the corelib, returning the netlist or the
/// error text.
fn lss(src: &str) -> Result<liberty::Compiled, String> {
    let mut lse = Lse::with_corelib();
    lse.add_source("probe.lss", src);
    lse.compile().map_err(|e| e.to_string())
}

fn check(name: &str, ok: bool, detail: &str) -> bool {
    println!("    [{}] {name}: {detail}", if ok { "ok" } else { "FAIL" });
    ok
}

fn main() {
    let mut all_ok = true;
    println!("Table 1: Capabilities of existing methods and systems");
    println!("-----------------------------------------------------");
    println!(
        "{:<28} {:>18} {:>18} {:>6}",
        "Capability", "Static structural", "Structural OOP", "LSS"
    );
    let rows = [
        ("Parameters (value)", "yes", "yes", "yes"),
        ("Parameters (structural)", "no", "yes", "yes"),
        ("Parameters (algorithmic)", "partial", "yes", "yes"),
        ("Parametric polymorphism", "yes", "explicit only", "yes"),
        ("Component overloading", "no", "no", "yes"),
        ("Static analysis", "yes", "no", "yes"),
        ("Instrumentation (AOP)", "yes", "no", "yes"),
    ];
    for (cap, st, oop, lss) in rows {
        println!("{cap:<28} {st:>18} {oop:>18} {lss:>6}");
    }
    println!();
    println!("Probes backing each LSS 'yes' (each cell is executed):");

    // Value parameters.
    let n = lss("instance d:delay;\nd.initial_state = 7;")
        .unwrap()
        .netlist;
    all_ok &= check(
        "value parameters",
        n.find("d").unwrap().params["initial_state"] == lss_types::Datum::Int(7),
        "delay.initial_state customized per instance",
    );

    // Structural parameters: delayn's length controls instance count.
    let n5 = lss("instance c:delayn;\nc.n = 5;").unwrap().netlist;
    let n9 = lss("instance c:delayn;\nc.n = 9;").unwrap().netlist;
    all_ok &= check(
        "structural parameters",
        n5.instances.len() == 6 && n9.instances.len() == 10,
        "delayn.n parameterizes the number of sub-instances",
    );

    // Algorithmic customization via userpoints.
    let arb = lss(
        "instance a:arbiter;\na.policy = \"return cycle % count;\";\n\
         instance s:source;\ninstance k:sink;\ns.out -> a.in;\na.out -> k.in;\ns.out :: int;",
    )
    .unwrap()
    .netlist;
    all_ok &= check(
        "algorithmic parameters",
        arb.find("a").unwrap().userpoints[0].code.contains("cycle"),
        "arbitration policy supplied as BSL code",
    );

    // Parametric polymorphism + inference.
    let poly = lss(
        "instance s:source;\ninstance q:queue;\ninstance d:delay;\ninstance k:sink;\n\
         s.out -> q.in;\nq.out -> d.in;\nd.out -> k.in;",
    )
    .unwrap()
    .netlist;
    all_ok &= check(
        "parametric polymorphism",
        poly.find("q").unwrap().port("in").unwrap().ty == Some(Ty::Int),
        "queue's 'a inferred as int from the connected delay",
    );

    // Component overloading.
    let over = lss(
        "module fsrc { outport out:float; tar_file = \"corelib/source.tar\"; };\n\
         instance s:fsrc;\ninstance x:alu;\ninstance k:sink;\n\
         s.out -> x.a;\ns.out -> x.b;\nx.res -> k.in;",
    )
    .unwrap()
    .netlist;
    all_ok &= check(
        "component overloading",
        over.find("x").unwrap().port("res").unwrap().ty == Some(Ty::Float),
        "int|float ALU resolved to the float member by connectivity",
    );

    // Static analysis: reuse stats + schedule computed before simulation.
    let compiled = lss("instance c:delayn;\nc.n = 3;").unwrap();
    let stats = liberty::reuse_stats(&compiled.netlist);
    all_ok &= check(
        "static analysis",
        stats.instances == 4 && compiled.solve_stats.unify_steps > 0,
        "reuse statistics and type inference ran pre-simulation",
    );

    // Instrumentation without modifying components.
    let instr = lss(
        "instance s:source;\ninstance k:sink;\ns.out -> k.in;\ns.out :: int;\n\
         collector s : out_fire = \"n = n + 1;\";",
    )
    .unwrap()
    .netlist;
    all_ok &= check(
        "aspect-oriented instrumentation",
        instr.collectors.len() == 1,
        "collector attached without touching source/sink",
    );

    println!();
    println!("Baseline demonstrations:");
    let d = static_structural::unrolled_delay_chain(8);
    all_ok &= check(
        "static paradigm analyzable",
        d.instance_count() == 10 && d.fan_in("hole.in") == 1,
        "description is data; analysis needs no execution",
    );
    all_ok &= check(
        "static paradigm not parametric",
        static_structural::unrolled_delay_chain(16).instance_count()
            != static_structural::unrolled_delay_chain(8).instance_count(),
        "each chain length requires a different hand-unrolled description",
    );
    let oop = structural_oop::delay_chain(8);
    let (comps, conns) = oop.elaborate_at_run_time();
    all_ok &= check(
        "OOP paradigm parametric but late",
        comps.len() == 10 && conns.len() == 9,
        "structure is only known after running construction code",
    );
    all_ok &= check(
        "OOP paradigm needs explicit types",
        comps.iter().all(|c| c.port_type == "int"),
        "every component carries a manually written type instantiation",
    );

    println!();
    if all_ok {
        println!("all Table 1 probes passed");
    } else {
        println!("SOME PROBES FAILED");
        std::process::exit(1);
    }
}
