//! Regenerates the paper's Table 2 (quantity of component-based reuse) and
//! Table 3 (model descriptions), plus the §7 aggregate claims.
//!
//! Run with `cargo run -p bench --bin table2 [--release]`.

use lss_models::{compile_model, models};
use lss_netlist::{format_row, header, reuse_stats, total, ReuseStats};

fn main() {
    println!("Table 3: Several models developed with LSS");
    println!("------------------------------------------");
    for m in models() {
        println!("  {}  {}", m.id, m.description);
    }
    println!();

    println!("Table 2: Quantity of Component-based Reuse");
    println!("------------------------------------------");
    println!("{}", header());
    let mut rows: Vec<(&str, ReuseStats)> = Vec::new();
    let mut library_modules = std::collections::BTreeSet::new();
    static IDS: [&str; 6] = ["A", "B", "C", "D", "E", "F"];
    for (m, id) in models().iter().zip(IDS) {
        let compiled = compile_model(m).unwrap_or_else(|e| panic!("model {}: {e}", m.id));
        for inst in &compiled.netlist.instances {
            if inst.from_library {
                library_modules.insert(inst.module);
            }
        }
        let stats = reuse_stats(&compiled.netlist);
        println!("{}", format_row(id, &stats));
        rows.push((id, stats));
    }
    let totals = total(&rows, library_modules.len());
    println!("{}", format_row("Total", &totals));
    println!();
    println!("(nt) columns discount trivial parameterless hierarchical wrappers,");
    println!("mirroring the paper's parenthesized figures.");
    println!();

    println!("Aggregate claims (paper section 7):");
    println!(
        "  * {} of {} instances ({:.0}%) come from the shared {}-module library \
         (paper: 80% from 22 modules)",
        (totals.pct_instances_from_library / 100.0 * totals.instances as f64).round() as u64,
        totals.instances,
        totals.pct_instances_from_library,
        library_modules.len(),
    );
    println!(
        "  * type inference cut explicit type instantiations from {} to {} \
         ({:.0}% reduction; paper: 679 -> 226, 66%)",
        totals.explicit_types_without_inference,
        totals.explicit_types_with_inference,
        totals.type_instantiation_reduction_pct(),
    );
    println!(
        "  * use-based specialization inferred {} port widths against {} connections \
         (paper: 3904 widths, 12050 connections)",
        totals.inferred_port_widths, totals.connections,
    );
    println!(
        "  * reuse factor: {:.2} instances per module ({:.2} discounting trivial wrappers; \
         paper: 12.26 and 22.83)",
        totals.instances_per_module, totals.instances_per_module_nontrivial,
    );
}
