//! Runs all six Table 3 models to completion and reports their
//! performance statistics (the "flexible models in practice" evidence of
//! §7: the same component library executes six very different machines).
//!
//! Run with `cargo run --release -p bench --bin run_models`.

use lss_models::runner::run_to_completion;
use lss_models::{compile_model, models};
use lss_sim::Scheduler;

fn main() {
    println!(
        "{:<6} {:<20} {:>10} {:>10} {:>7} {:>11} {:>12}",
        "Model", "Name", "Instrs", "Cycles", "CPI", "Mispredicts", "Evals/cycle"
    );
    for m in models() {
        let compiled = compile_model(m).unwrap_or_else(|e| panic!("model {}: {e}", m.id));
        let stats = run_to_completion(&compiled.netlist, Scheduler::Static, 10_000_000)
            .unwrap_or_else(|e| panic!("model {}: {e}", m.id));
        println!(
            "{:<6} {:<20} {:>10} {:>10} {:>7.3} {:>11} {:>12.1}",
            m.id,
            m.name,
            stats.committed,
            stats.cycles,
            stats.cpi,
            stats.mispredicts,
            stats.sim.comp_evals as f64 / stats.cycles.max(1) as f64,
        );
        let mut keys: Vec<&String> = stats.collectors.keys().collect();
        keys.sort();
        for key in keys {
            let table = &stats.collectors[key];
            let kv: Vec<String> = table.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!("         probe {key}: {}", kv.join(" "));
        }
    }
}
