//! Differential-testing throughput benchmark: how fast the `lss-verify`
//! subsystem generates, compiles, and cross-checks programs, written to
//! `crates/bench/BENCH_verify.json`.
//!
//! Three cases: generation + render alone (the fuzzer's inner loop
//! floor), a full two-oracle `difftest` of a fixed mid-size generated
//! program, and an end-to-end fuzz batch. Throughput here bounds how
//! much coverage a CI time budget buys.
//!
//! Run with `cargo run --release -p bench --bin verify`.

use bench::timing::{measure, write_json};
use lss_verify::{difftest_source, generate, run_fuzz, DiffOptions, FuzzConfig, GenConfig};

fn main() {
    let cfg = GenConfig::default();
    let mut samples = Vec::new();

    samples.push(measure("verify/generate_render_100", 2, 10, || {
        for seed in 0..100u64 {
            let spec = generate(seed, &cfg);
            std::hint::black_box(spec.render());
        }
    }));

    // A representative generated program, cross-checked by both oracles
    // plus the JSON round trip.
    let spec = generate(42, &cfg);
    let text = spec.render();
    let opts = DiffOptions::default();
    samples.push(measure("verify/difftest_one_program", 2, 20, || {
        let result = difftest_source("bench.lss", &text, &opts).expect("harness ok");
        assert!(result.is_none(), "seed 42 must diff clean");
    }));

    samples.push(measure("verify/fuzz_batch_20", 1, 5, || {
        let report = run_fuzz(
            &FuzzConfig {
                seed: 1,
                iters: 20,
                out_dir: std::env::temp_dir().join("lss-bench-verify"),
                ..FuzzConfig::default()
            },
            |_| {},
        );
        assert!(report.clean(), "baseline fuzz batch must be clean");
    }));

    write_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_verify.json"),
        &samples,
    );
}
