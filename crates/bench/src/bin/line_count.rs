//! Regenerates the §7 line-count experiment: "After a direct conversion of
//! the non-LSS version of the SimpleScalar model to the LSS-based model,
//! there was a 35% reduction in line count."
//!
//! For each Table 3 model we *generate* its static-structural equivalent
//! (a flat netlist with hand-unrolled structure and explicit type
//! instantiations — what the pre-LSS system required) and compare
//! specification sizes. We report both views:
//!
//! * per-model: flat text vs the model's own config lines (the shared
//!   hierarchy amortizes poorly over a single small model, so this favors
//!   LSS less than the paper's large models did);
//! * per-exploration: the whole six-model family against six flat
//!   specifications — the reuse the paper is actually about.
//!
//! Run with `cargo run -p bench --bin line_count`.

use lss_models::staticgen::static_source;
use lss_models::{compile_model, cpu_lib, loc, models};

fn main() {
    println!("Section 7: specification size, LSS vs static-structural");
    println!();
    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>12}",
        "Model", "model .lss", "shared cpu_lib", "static (flat)", "reduction"
    );
    let shared = loc(cpu_lib());
    let mut lss_total = shared;
    let mut static_total = 0usize;
    for m in models() {
        let compiled = compile_model(m).unwrap_or_else(|e| panic!("model {}: {e}", m.id));
        let flat = loc(&static_source(&compiled.netlist));
        let own = loc(m.source);
        lss_total += own;
        static_total += flat;
        let reduction = 100.0 * (1.0 - (own + shared) as f64 / flat as f64);
        println!(
            "{:<8} {:>12} {:>14} {:>14} {:>11.0}%",
            m.id, own, shared, flat, reduction
        );
    }
    println!();
    println!(
        "Exploration totals: LSS family = {lss_total} lines (cpu_lib written once + six \
         configurations)"
    );
    println!(
        "                    static     = {static_total} lines (six independent flat \
         specifications)"
    );
    println!(
        "                    reduction  = {:.0}%  (paper reports 35% for the one-model \
         SimpleScalar conversion; our models are far smaller than theirs, so single-model \
         reductions are smaller, but reuse across the exploration dominates)",
        100.0 * (1.0 - lss_total as f64 / static_total as f64)
    );
}
