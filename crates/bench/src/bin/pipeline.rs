//! Staged-pipeline benchmark: cold versus warm (cache-served) builds of
//! the largest Table 3 model, written to `crates/bench/BENCH_pipeline.json`.
//!
//! A warm build answers from the content-addressed netlist cache and skips
//! elaboration and type inference outright, so the headline metric is the
//! per-stage elaborate + infer time (the cache cannot skip parsing — the
//! cache key is derived from the source texts — nor the probe itself). The
//! end-to-end wall time for both paths is recorded alongside so the probe
//! overhead stays visible.
//!
//! Run with `cargo run --release -p bench --bin pipeline`.

use std::path::PathBuf;
use std::time::Duration;

use bench::timing::{write_json, Sample};
use lss_driver::{CacheOutcome, Driver};
use lss_interp::CompileOptions;
use lss_models::{driver_for_source, models, Model};

struct Build {
    total: Duration,
    elaborate_infer: Duration,
    cache: CacheOutcome,
    instances: usize,
}

fn build(model: &Model, cache: Option<&PathBuf>) -> Build {
    let mut driver: Driver = driver_for_source(model.source, &CompileOptions::default());
    driver.set_cache_dir(cache.cloned());
    let t0 = std::time::Instant::now();
    let elaborated = driver
        .elaborate()
        .unwrap_or_else(|e| panic!("model {} failed to compile:\n{e}", model.id));
    let total = t0.elapsed();
    let stages = driver.timings().stages();
    let elaborate_infer = stages
        .iter()
        .filter(|(name, _)| *name == "elaborate" || *name == "infer")
        .map(|(_, d)| *d)
        .sum();
    Build {
        total,
        elaborate_infer,
        cache: elaborated.cache,
        instances: elaborated.netlist.instances.len(),
    }
}

/// Summarizes a series of durations under the shared sample format.
fn sample(name: &str, times: &mut [Duration]) -> Sample {
    times.sort_unstable();
    let ns = |d: &Duration| d.as_nanos() as u64;
    Sample {
        name: name.to_string(),
        iters: times.len() as u32,
        median_ns: ns(&times[times.len() / 2]),
        mean_ns: times.iter().map(ns).sum::<u64>() / times.len() as u64,
        min_ns: ns(&times[0]),
    }
}

fn main() {
    const ITERS: usize = 30;

    // The largest model by elaborated instance count (E: two D cores plus a
    // shared memory hierarchy).
    let largest = models()
        .iter()
        .max_by_key(|m| build(m, None).instances)
        .unwrap();
    println!(
        "largest Table 3 model: {} ({} — {} instances)",
        largest.id,
        largest.name,
        build(largest, None).instances
    );

    let cache_dir = std::env::temp_dir().join(format!("lss-bench-pipeline-{}", std::process::id()));

    // Cold: every iteration starts from an empty cache, so the build runs
    // parse → elaborate → infer and then populates the cache.
    let (mut cold_total, mut cold_stage) = (Vec::new(), Vec::new());
    for _ in 0..ITERS {
        let _ = std::fs::remove_dir_all(&cache_dir);
        let b = build(largest, Some(&cache_dir));
        assert_eq!(b.cache, CacheOutcome::Miss, "cold build must miss");
        cold_total.push(b.total);
        cold_stage.push(b.elaborate_infer);
    }

    // Warm: the entry written by the last cold run answers every build. A
    // hit skips elaboration and inference outright, so there is no
    // `warm_elaborate_infer` sample — a stage that never ran is absent
    // from the report, not recorded as a zero.
    let mut warm_total = Vec::new();
    for _ in 0..ITERS {
        let b = build(largest, Some(&cache_dir));
        assert_eq!(b.cache, CacheOutcome::Hit, "warm build must hit");
        assert_eq!(
            b.elaborate_infer,
            Duration::ZERO,
            "a cache hit must skip elaboration and inference"
        );
        warm_total.push(b.total);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    let model = format!("model_{}", largest.id);
    let samples = vec![
        sample(
            &format!("pipeline/{model}/cold_elaborate_infer"),
            &mut cold_stage,
        ),
        sample(&format!("pipeline/{model}/cold_total"), &mut cold_total),
        sample(&format!("pipeline/{model}/warm_total"), &mut warm_total),
    ];

    println!(
        "cold elaborate+infer median: {:.3}ms",
        samples[0].median_ns as f64 / 1e6
    );
    let cold_total_ns = samples[1].median_ns;
    let warm_total_ns = samples[2].median_ns;
    println!(
        "cold total median: {:.3}ms, warm total median: {:.3}ms",
        cold_total_ns as f64 / 1e6,
        warm_total_ns as f64 / 1e6
    );
    // The end-to-end guarantee: a warm build (probe + binary decode) costs
    // at most 40% of a cold build (parse + elaborate + infer + encode).
    assert!(
        cold_total_ns > 0 && warm_total_ns * 10 <= cold_total_ns * 4,
        "warm total ({warm_total_ns}ns) must be <= 40% of cold total ({cold_total_ns}ns)"
    );
    println!("warm total is <= 40% of cold total: ok");

    write_json(
        concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_pipeline.json"),
        &samples,
    );
}
