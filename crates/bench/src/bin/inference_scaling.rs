//! Regenerates the §5 type-inference claim: "type inference completes in
//! several seconds for all cases we have observed ... Without these
//! heuristics, type inference times exceeded 12 hours for most models."
//!
//! We measure unification work (steps) and wall-clock time for the solver
//! with and without the three heuristics, on the constraint families that
//! arise in LSS netlists (§4.4's "long chains of polymorphic data routing
//! components"), plus a per-heuristic ablation. The no-heuristics solver is
//! work-bounded; runs that blow the budget are reported with an
//! extrapolated time instead of being allowed to run for hours.
//!
//! Run with `cargo run --release -p bench --bin inference_scaling`.

use std::time::Instant;

use lss_types::gen::{crossbar, independent_chains, overloaded_chain};
use lss_types::{solve, ConstraintSet, SolverConfig};

const BUDGET: u64 = 200_000_000;

struct Outcome {
    steps: Option<u64>,
    seconds: f64,
}

fn run(set: &ConstraintSet, config: &SolverConfig) -> Outcome {
    let start = Instant::now();
    let result = solve(set, config);
    let seconds = start.elapsed().as_secs_f64();
    match result {
        Ok(sol) => Outcome {
            steps: Some(sol.stats.unify_steps),
            seconds,
        },
        Err(lss_types::SolveError::BudgetExhausted { .. }) => Outcome {
            steps: None,
            seconds,
        },
        Err(e) => panic!("solver failed unexpectedly: {e}"),
    }
}

fn fmt(outcome: &Outcome) -> String {
    match outcome.steps {
        Some(steps) => format!("{steps:>14} steps {:>9.4}s", outcome.seconds),
        None => format!("{:>14} {:>9}", format!(">{BUDGET} (budget)"), "—"),
    }
}

fn main() {
    let heuristic = SolverConfig::heuristic();
    let naive = SolverConfig::naive().with_budget(BUDGET);

    println!("Section 5: inference work, heuristics vs naive unification extension");
    println!("(naive runs are capped at {BUDGET} unification steps)");
    println!();

    println!("Overloaded chains (n components, 2-way overload, pinned at the end):");
    println!("{:<6} {:>38} {:>38}", "n", "with heuristics", "naive");
    let mut last_ratio = 0.0;
    for n in [8, 12, 16, 20, 24, 32, 64, 128] {
        let set = overloaded_chain(n, 2);
        let h = run(&set, &heuristic);
        let v = run(&set, &naive);
        println!("{n:<6} {:>38} {:>38}", fmt(&h), fmt(&v));
        if let (Some(hs), Some(vs)) = (h.steps, v.steps) {
            last_ratio = vs as f64 / hs as f64;
        }
    }
    println!("last measurable naive/heuristic work ratio: {last_ratio:.0}x");
    println!();

    println!("Independent chains (m disjoint systems of 6 components, 2-way):");
    println!("{:<6} {:>38} {:>38}", "m", "with heuristics", "naive");
    for m in [2, 4, 6, 8, 10] {
        let set = independent_chains(m, 6, 2);
        let h = run(&set, &heuristic);
        let v = run(&set, &naive);
        println!("{m:<6} {:>38} {:>38}", fmt(&h), fmt(&v));
    }
    println!();

    println!("Crossbars (n overloaded producers on one bus, 4-way):");
    println!("{:<6} {:>38} {:>38}", "n", "with heuristics", "naive");
    for n in [8, 16, 32, 64] {
        let set = crossbar(n, 4);
        let h = run(&set, &heuristic);
        let v = run(&set, &naive);
        println!("{n:<6} {:>38} {:>38}", fmt(&h), fmt(&v));
    }
    println!();

    println!("Heuristic ablation on overloaded_chain(18, 3):");
    let set = overloaded_chain(18, 3);
    let configs: [(&str, SolverConfig); 5] = [
        ("all heuristics", SolverConfig::heuristic()),
        (
            "no reordering",
            SolverConfig {
                reorder: false,
                ..SolverConfig::heuristic()
            }
            .with_budget(BUDGET),
        ),
        (
            "no smart disjunctions",
            SolverConfig {
                smart: false,
                ..SolverConfig::heuristic()
            }
            .with_budget(BUDGET),
        ),
        (
            "no partitioning",
            SolverConfig {
                partition: false,
                ..SolverConfig::heuristic()
            }
            .with_budget(BUDGET),
        ),
        ("none (naive)", SolverConfig::naive().with_budget(BUDGET)),
    ];
    for (name, config) in configs {
        let o = run(&set, &config);
        println!("  {name:<24} {}", fmt(&o));
    }
    println!();

    println!("Extrapolation of the paper's '>12 hours' claim:");
    let small = run(&overloaded_chain(16, 2), &naive);
    let big = run(&overloaded_chain(20, 2), &naive);
    if let (Some(s), Some(b)) = (small.steps, big.steps) {
        let per_stage = (b as f64 / s as f64).powf(0.25);
        let steps_per_sec = b as f64 / big.seconds.max(1e-9);
        // A model with ~200 overloaded components in one partition:
        let projected_steps = b as f64 * per_stage.powi(180);
        let projected_hours = projected_steps / steps_per_sec / 3600.0;
        println!(
            "  naive growth per chain stage: {per_stage:.2}x; a 200-component chain projects \
             to ~{projected_hours:.1e} hours of naive inference,"
        );
        let h = run(&overloaded_chain(200, 2), &heuristic);
        println!(
            "  while the heuristic solver handles 200 components in {:.4}s — the paper's \
             'seconds vs >12 hours' shape.",
            h.seconds
        );
    }
}
