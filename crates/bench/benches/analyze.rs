//! Benchmark for the static-analysis layer: how much does a full
//! `lssc check` pass cost on the largest Table 3 model?
//!
//! The paper's analyzability pitch (§1, §3) only holds if whole-model
//! static analysis is cheap enough to run on every compile, so this
//! harness times the three stages separately — combinational-dependency
//! extraction, the port-graph condensation, and the full pass-manager
//! sweep — on the biggest netlist we have.
//!
//! Emits `BENCH_analyze.json` in the working directory so analyzer cost
//! shows up in the perf trajectory alongside simulation speed.

use bench::compiled_model;
use bench::timing::{measure, write_json, Sample};
use lss_analyze::{leaf_dep_graph, AnalysisConfig, PassManager};

fn main() {
    let mut samples: Vec<Sample> = Vec::new();

    // The largest model by instance count.
    let (id, compiled) = lss_models::models()
        .iter()
        .map(|m| (m.id, compiled_model(m)))
        .max_by_key(|(_, c)| c.netlist.instances.len())
        .expect("models");
    let registry = lss_corelib::registry();
    let wires = compiled.netlist.flatten();

    samples.push(measure(format!("analyze_comb_info/{id}"), 2, 20, || {
        let comb = lss_sim::comb_info(&compiled.netlist, &registry);
        std::hint::black_box(comb.independent_pairs());
    }));

    let comb = lss_sim::comb_info(&compiled.netlist, &registry);
    samples.push(measure(format!("analyze_dep_graph/{id}"), 2, 20, || {
        let deps = leaf_dep_graph(&compiled.netlist, &wires, &comb);
        std::hint::black_box(deps.ports.condense().sccs.len());
    }));

    let manager = PassManager::with_default_passes();
    let config = AnalysisConfig::default();
    samples.push(measure(format!("analyze_full_check/{id}"), 2, 20, || {
        let analysis = manager.run(&compiled.netlist, &comb, &config);
        std::hint::black_box(analysis.findings.len());
    }));

    // The protocol composition pass in isolation: its `run` method on the
    // precomputed context, without the shared flatten/dep-graph setup the
    // manager amortizes over the whole suite. Declared automata are tiny,
    // so composing them per wire must stay in the noise (< 5% of a full
    // check) or the pass gets evicted from the on-every-compile suite.
    let deps = leaf_dep_graph(&compiled.netlist, &wires, &comb);
    let ctx = lss_analyze::AnalysisCtx {
        netlist: &compiled.netlist,
        wires: &wires,
        deps: &deps,
        comb: &comb,
    };
    let pass = lss_analyze::passes::protocol::ProtocolPass;
    let protocol = measure(format!("analyze_protocol_pass/{id}"), 2, 20, || {
        let mut findings = Vec::new();
        lss_analyze::Pass::run(&pass, &ctx, &mut findings);
        std::hint::black_box(findings.len());
    });
    let full_median = samples.last().expect("full-check sample present").median_ns;
    assert!(
        protocol.median_ns <= full_median / 20,
        "protocol pass costs {}ns median, over 5% of the {}ns full check",
        protocol.median_ns,
        full_median
    );
    samples.push(protocol);

    write_json("BENCH_analyze.json", &samples);
}
