//! Benchmark for the §8 claim: "reusable components in LSE with LSS are at
//! least as fast as custom components written in SystemC".
//!
//! The mechanism behind the claim is static concurrency scheduling [12]:
//! LSE precomputes a topological evaluation order, while SystemC-style
//! systems re-evaluate components from a dynamic worklist until signals
//! settle. We benchmark the same compiled models under three engines —
//! the dynamic worklist baseline, the static-schedule interpreter, and
//! the compiled kernel engine that devirtualizes hot corelib behaviors
//! into direct arena reads/writes — and the ratios are the reproduced
//! result plus its extension.
//!
//! The run asserts the ordering the paper (and this repo's ISSUE 9)
//! promises: the compiled engine's median must not lose to the dynamic
//! baseline at any delay-chain size or on any measured Table 3 model,
//! and must win by at least 3x on model C.
//!
//! Emits `BENCH_sim_speed.json` in the working directory so successive PRs
//! can track the performance trajectory mechanically.

use std::collections::BTreeMap;

use bench::timing::{measure, write_json, Sample};
use bench::{compiled_model, compiled_source, delay_chain_source, simulator_opts};
use lss_interp::CompileOptions;
use lss_sim::{Engine, Scheduler, SimOptions};

fn engines() -> [(&'static str, SimOptions); 3] {
    [
        (
            "static",
            SimOptions {
                scheduler: Scheduler::Static,
                ..Default::default()
            },
        ),
        (
            "dynamic",
            SimOptions {
                scheduler: Scheduler::Dynamic,
                ..Default::default()
            },
        ),
        (
            "compiled",
            SimOptions {
                scheduler: Scheduler::Static,
                engine: Engine::Compiled,
                ..Default::default()
            },
        ),
    ]
}

fn main() {
    let mut samples: Vec<Sample> = Vec::new();

    for stages in [16usize, 64, 256] {
        let src = delay_chain_source(stages, 2);
        let compiled = compiled_source(&src, &CompileOptions::default());
        for (name, opts) in engines() {
            samples.push(measure(
                format!("sim_delay_chain_100cycles/{name}/{stages}"),
                2,
                20,
                || {
                    let mut sim = simulator_opts(&compiled.netlist, opts.clone());
                    sim.run(100).unwrap();
                    std::hint::black_box(sim.stats().comp_evals);
                },
            ));
        }
    }

    for m in lss_models::models() {
        let compiled = compiled_model(m);
        for (name, opts) in engines() {
            samples.push(measure(
                format!("sim_model_500cycles/{name}/{}", m.id),
                1,
                10,
                || {
                    let mut sim = simulator_opts(&compiled.netlist, opts.clone());
                    sim.run(500).unwrap();
                    std::hint::black_box(sim.stats().comp_evals);
                },
            ));
        }
    }

    write_json("BENCH_sim_speed.json", &samples);
    assert_compiled_wins(&samples);
}

/// Regression gate: the compiled engine may never lose to the dynamic
/// worklist baseline, erasing the old static-loses-at-16-stages inversion;
/// on model C (the largest single-trace model measured here) it must win
/// by at least 3x.
fn assert_compiled_wins(samples: &[Sample]) {
    let medians: BTreeMap<&str, u64> = samples
        .iter()
        .map(|s| (s.name.as_str(), s.median_ns))
        .collect();
    let get = |name: &str| {
        *medians
            .get(name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
    };
    let mut failures = Vec::new();
    for stages in [16usize, 64, 256] {
        let c = get(&format!("sim_delay_chain_100cycles/compiled/{stages}"));
        let d = get(&format!("sim_delay_chain_100cycles/dynamic/{stages}"));
        if c > d {
            failures.push(format!(
                "delay chain {stages}: compiled {c}ns slower than dynamic {d}ns"
            ));
        }
    }
    for m in lss_models::models() {
        let c = get(&format!("sim_model_500cycles/compiled/{}", m.id));
        let d = get(&format!("sim_model_500cycles/dynamic/{}", m.id));
        if c > d {
            failures.push(format!(
                "model {}: compiled {c}ns slower than dynamic {d}ns",
                m.id
            ));
        }
        if m.id == 'C' && c * 3 > d {
            failures.push(format!(
                "model C: compiled {c}ns is less than 3x faster than dynamic {d}ns"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "performance regression:\n{}",
        failures.join("\n")
    );
    println!("compiled-vs-dynamic regression gate: ok");
}
