//! Criterion benchmark for the §8 claim: "reusable components in LSE with
//! LSS are at least as fast as custom components written in SystemC".
//!
//! The mechanism behind the claim is static concurrency scheduling [12]:
//! LSE precomputes a topological evaluation order, while SystemC-style
//! systems re-evaluate components from a dynamic worklist until signals
//! settle. We benchmark the same compiled models under both schedulers —
//! the ratio is the reproduced result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{compiled_model, compiled_source, delay_chain_source, simulator};
use lss_interp::CompileOptions;
use lss_sim::Scheduler;

fn bench_delay_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_delay_chain_100cycles");
    group.sample_size(20);
    for stages in [16usize, 64, 256] {
        let src = delay_chain_source(stages, 2);
        let compiled = compiled_source(&src, &CompileOptions::default());
        for (name, scheduler) in
            [("static", Scheduler::Static), ("dynamic", Scheduler::Dynamic)]
        {
            group.bench_with_input(
                BenchmarkId::new(name, stages),
                &compiled.netlist,
                |b, netlist| {
                    b.iter(|| {
                        let mut sim = simulator(netlist, scheduler);
                        sim.run(100).unwrap();
                        sim.stats().comp_evals
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_model_500cycles");
    group.sample_size(10);
    for id in ['A', 'C'] {
        let model = lss_models::model(id).unwrap();
        let compiled = compiled_model(model);
        for (name, scheduler) in
            [("static", Scheduler::Static), ("dynamic", Scheduler::Dynamic)]
        {
            group.bench_with_input(
                BenchmarkId::new(name, id),
                &compiled.netlist,
                |b, netlist| {
                    b.iter(|| {
                        let mut sim = simulator(netlist, scheduler);
                        sim.run(500).unwrap();
                        sim.stats().comp_evals
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_delay_chain, bench_models);
criterion_main!(benches);
