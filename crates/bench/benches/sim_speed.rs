//! Benchmark for the §8 claim: "reusable components in LSE with LSS are at
//! least as fast as custom components written in SystemC".
//!
//! The mechanism behind the claim is static concurrency scheduling [12]:
//! LSE precomputes a topological evaluation order, while SystemC-style
//! systems re-evaluate components from a dynamic worklist until signals
//! settle. We benchmark the same compiled models under both schedulers —
//! the ratio is the reproduced result.
//!
//! Emits `BENCH_sim_speed.json` in the working directory so successive PRs
//! can track the performance trajectory mechanically.

use bench::timing::{measure, write_json, Sample};
use bench::{compiled_model, compiled_source, delay_chain_source, simulator};
use lss_interp::CompileOptions;
use lss_sim::Scheduler;

fn main() {
    let mut samples: Vec<Sample> = Vec::new();

    for stages in [16usize, 64, 256] {
        let src = delay_chain_source(stages, 2);
        let compiled = compiled_source(&src, &CompileOptions::default());
        for (name, scheduler) in [
            ("static", Scheduler::Static),
            ("dynamic", Scheduler::Dynamic),
        ] {
            samples.push(measure(
                format!("sim_delay_chain_100cycles/{name}/{stages}"),
                2,
                20,
                || {
                    let mut sim = simulator(&compiled.netlist, scheduler);
                    sim.run(100).unwrap();
                    std::hint::black_box(sim.stats().comp_evals);
                },
            ));
        }
    }

    for id in ['A', 'C'] {
        let model = lss_models::model(id).unwrap();
        let compiled = compiled_model(model);
        for (name, scheduler) in [
            ("static", Scheduler::Static),
            ("dynamic", Scheduler::Dynamic),
        ] {
            samples.push(measure(
                format!("sim_model_500cycles/{name}/{id}"),
                1,
                10,
                || {
                    let mut sim = simulator(&compiled.netlist, scheduler);
                    sim.run(500).unwrap();
                    std::hint::black_box(sim.stats().comp_evals);
                },
            ));
        }
    }

    write_json("BENCH_sim_speed.json", &samples);
}
