//! Benchmark for §5: type-inference wall-clock with the paper's heuristics
//! versus the naive unification extension, on the constraint families LSS
//! netlists produce.
//!
//! The headline shape: heuristic inference stays flat (milliseconds) as
//! models grow; the naive algorithm grows exponentially and is only
//! benchmarked at sizes where it still terminates quickly.

use std::hint::black_box;

use bench::timing::measure;
use lss_types::gen::{crossbar, independent_chains, overloaded_chain};
use lss_types::{solve, SolverConfig};

fn main() {
    let heuristic = SolverConfig::heuristic();

    for n in [16usize, 64, 256] {
        let set = overloaded_chain(n, 2);
        measure(format!("inference_chain/heuristic/{n}"), 2, 20, || {
            solve(black_box(&set), &heuristic).unwrap();
        });
    }
    // Naive only at sizes that stay sub-second.
    let naive = SolverConfig::naive();
    for n in [8usize, 12, 16] {
        let set = overloaded_chain(n, 2);
        measure(format!("inference_chain/naive/{n}"), 2, 20, || {
            solve(black_box(&set), &naive).unwrap();
        });
    }

    let with = SolverConfig::heuristic();
    let without = SolverConfig {
        partition: false,
        ..SolverConfig::heuristic()
    };
    let set = independent_chains(8, 6, 2);
    measure("inference_partitioning/partition_on", 2, 20, || {
        solve(black_box(&set), &with).unwrap();
    });
    measure("inference_partitioning/partition_off", 2, 20, || {
        solve(black_box(&set), &without).unwrap();
    });

    for n in [16usize, 64] {
        let set = crossbar(n, 4);
        measure(format!("inference_crossbar/heuristic/{n}"), 2, 20, || {
            solve(black_box(&set), &heuristic).unwrap();
        });
    }

    // The real constraint systems of the Table 3 models, solved end to end.
    for m in lss_models::models() {
        let compiled = bench::compiled_model(m);
        let constraints = compiled.netlist.constraints.clone();
        measure(format!("inference_models/model/{}", m.id), 1, 10, || {
            solve(black_box(&constraints), &heuristic).unwrap();
        });
    }
}
