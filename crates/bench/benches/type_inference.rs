//! Criterion benchmark for §5: type-inference wall-clock with the paper's
//! heuristics versus the naive unification extension, on the constraint
//! families LSS netlists produce.
//!
//! The headline shape: heuristic inference stays flat (milliseconds) as
//! models grow; the naive algorithm grows exponentially and is only
//! benchmarked at sizes where it still terminates quickly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lss_types::gen::{crossbar, independent_chains, overloaded_chain};
use lss_types::{solve, SolverConfig};

fn bench_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_chain");
    group.sample_size(20);
    let heuristic = SolverConfig::heuristic();
    for n in [16usize, 64, 256] {
        let set = overloaded_chain(n, 2);
        group.bench_with_input(BenchmarkId::new("heuristic", n), &set, |b, set| {
            b.iter(|| solve(black_box(set), &heuristic).unwrap())
        });
    }
    // Naive only at sizes that stay sub-second.
    let naive = SolverConfig::naive();
    for n in [8usize, 12, 16] {
        let set = overloaded_chain(n, 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &set, |b, set| {
            b.iter(|| solve(black_box(set), &naive).unwrap())
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_partitioning");
    group.sample_size(20);
    let with = SolverConfig::heuristic();
    let without = SolverConfig { partition: false, ..SolverConfig::heuristic() };
    let set = independent_chains(8, 6, 2);
    group.bench_function("partition_on", |b| {
        b.iter(|| solve(black_box(&set), &with).unwrap())
    });
    group.bench_function("partition_off", |b| {
        b.iter(|| solve(black_box(&set), &without).unwrap())
    });
    group.finish();
}

fn bench_crossbar(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_crossbar");
    group.sample_size(20);
    let heuristic = SolverConfig::heuristic();
    for n in [16usize, 64] {
        let set = crossbar(n, 4);
        group.bench_with_input(BenchmarkId::new("heuristic", n), &set, |b, set| {
            b.iter(|| solve(black_box(set), &heuristic).unwrap())
        });
    }
    group.finish();
}

fn bench_model_constraints(c: &mut Criterion) {
    // The real constraint systems of the Table 3 models, solved end to end.
    let mut group = c.benchmark_group("inference_models");
    group.sample_size(10);
    let heuristic = SolverConfig::heuristic();
    for m in lss_models::models() {
        let compiled = bench::compiled_model(m);
        let constraints = compiled.netlist.constraints.clone();
        group.bench_with_input(
            BenchmarkId::new("model", m.id),
            &constraints,
            |b, set| b.iter(|| solve(black_box(set), &heuristic).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chains,
    bench_partitioning,
    bench_crossbar,
    bench_model_constraints
);
criterion_main!(benches);
