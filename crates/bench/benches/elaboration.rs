//! Benchmark for compile-time elaboration (Figure 4's first phase):
//! executing LSS specifications into netlists, including use-based
//! specialization and type inference.

use std::hint::black_box;

use bench::delay_chain_source;
use bench::timing::measure;
use lss_interp::CompileOptions;

fn main() {
    for m in lss_models::models() {
        measure(format!("elaborate_model/{}", m.id), 1, 10, || {
            black_box(
                lss_models::compile_model(m)
                    .unwrap()
                    .netlist
                    .instances
                    .len(),
            );
        });
    }

    // Elaboration cost as the parametric structure grows: the same source
    // size produces 10x the instances.
    let opts = CompileOptions::default();
    for stages in [10usize, 100, 1000] {
        let src = delay_chain_source(stages, 1);
        measure(format!("elaborate_delay_chain/{stages}"), 1, 10, || {
            black_box(
                bench::compiled_source(black_box(&src), &opts)
                    .netlist
                    .instances
                    .len(),
            );
        });
    }
}
