//! Criterion benchmark for compile-time elaboration (Figure 4's first
//! phase): executing LSS specifications into netlists, including use-based
//! specialization and type inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::delay_chain_source;
use lss_interp::CompileOptions;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("elaborate_model");
    group.sample_size(10);
    for m in lss_models::models() {
        group.bench_with_input(BenchmarkId::new("model", m.id), m, |b, m| {
            b.iter(|| lss_models::compile_model(black_box(m)).unwrap().netlist.instances.len())
        });
    }
    group.finish();
}

fn bench_parametric_scaling(c: &mut Criterion) {
    // Elaboration cost as the parametric structure grows: the same source
    // size produces 10x the instances.
    let mut group = c.benchmark_group("elaborate_delay_chain");
    group.sample_size(10);
    let opts = CompileOptions::default();
    for stages in [10usize, 100, 1000] {
        let src = delay_chain_source(stages, 1);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &src, |b, src| {
            b.iter(|| bench::compiled_source(black_box(src), &opts).netlist.instances.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models, bench_parametric_scaling);
criterion_main!(benches);
