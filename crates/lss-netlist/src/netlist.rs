//! The elaborated-model IR.
//!
//! Executing an LSS specification at compile time produces a [`Netlist`]:
//! the static structure of the model (instances, ports, connections,
//! resolved parameters, userpoints, events, collectors) plus the type
//! constraints gathered along the way. All static analyses — type
//! inference, scheduling, reuse statistics — run over this IR, and the
//! simulator is built from it.
//!
//! All recurring names (modules, ports, runtime variables, userpoints,
//! events) are interned into [`Symbol`]s in the netlist's own [`Interner`];
//! instance *paths* stay plain strings because each is unique and only
//! read at boundaries (diagnostics, dumps), so interning would buy no
//! sharing. Strings are resolved from symbols only at output boundaries.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;

use lss_types::{ConstraintSet, Datum, Scheme, Ty, TyVar, VarGen};

use crate::intern::{Interner, PortId, Symbol};
use crate::protocol::ProtocolBinding;

/// Index of an instance in [`Netlist::instances`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u32);

impl InstanceId {
    /// The id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Port direction (netlist-level mirror of the AST's `PortDir`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Input port.
    In,
    /// Output port.
    Out,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::In => write!(f, "in"),
            Dir::Out => write!(f, "out"),
        }
    }
}

/// Whether an instance is a leaf (externally specified behavior) or a
/// hierarchical composition.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceKind {
    /// Leaf module; `tar_file` keys the behavior in the component registry
    /// (our substitute for the paper's BSL `.tar` payloads).
    Leaf {
        /// Registry key, e.g. `corelib/delay.tar`.
        tar_file: String,
    },
    /// Hierarchical module: behavior comes from sub-instances.
    Hierarchical,
}

/// One port on one instance.
///
/// Every LSS port is an array of *port instances*; `width` records how many
/// were connected (inferred by use-based specialization, §6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Interned port name.
    pub name: Symbol,
    /// Direction.
    pub dir: Dir,
    /// The declared scheme, instantiated with this instance's fresh type
    /// variables.
    pub scheme: Scheme,
    /// The instance-level type variable standing for this port's basic type.
    pub var: TyVar,
    /// Number of port instances connected (the implicit `width` parameter).
    pub width: u32,
    /// The inferred basic type, filled in after type inference.
    pub ty: Option<Ty>,
    /// True if the user pinned the type explicitly (`::` or a connection
    /// annotation). Counted for Table 2's "explicit type instantiations
    /// with inference".
    pub explicit: bool,
}

/// A userpoint attached to an instance: signature plus BSL code (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Userpoint {
    /// Interned userpoint (parameter) name.
    pub name: Symbol,
    /// Argument names (interned) and types visible to the BSL body.
    pub args: Vec<(Symbol, Ty)>,
    /// Type the body must return.
    pub ret: Ty,
    /// The BSL source code.
    pub code: String,
}

/// A runtime variable declared by the instance's module (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeVar {
    /// Interned variable name (visible to userpoints on the same instance).
    pub name: Symbol,
    /// Value type.
    pub ty: Ty,
    /// Initial value.
    pub init: Datum,
}

/// An event declared by a module (§4.5). The implicit port-firing event for
/// port `p` is named `p_fire` and is not listed here.
#[derive(Debug, Clone, PartialEq)]
pub struct EventDecl {
    /// Interned event name.
    pub name: Symbol,
    /// Types of the values carried by each emission.
    pub args: Vec<Ty>,
}

/// An elaborated module instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// This instance's id.
    pub id: InstanceId,
    /// Full hierarchical path, e.g. `cpu.fetch.delays[0]`. Unique per
    /// instance, so it is kept as a plain string (boundary-only data).
    pub path: String,
    /// Interned name of the module this instance was created from.
    pub module: Symbol,
    /// Leaf or hierarchical.
    pub kind: InstanceKind,
    /// Enclosing instance (None for top-level instances).
    pub parent: Option<InstanceId>,
    /// True if the module came from the shared component library.
    pub from_library: bool,
    /// Resolved parameter values (after use-based specialization).
    pub params: BTreeMap<String, Datum>,
    /// Ports in declaration order, addressed by [`PortId`].
    pub ports: Vec<Port>,
    /// Userpoints (algorithmic parameters) with their final code,
    /// addressed by `UserpointId`.
    pub userpoints: Vec<Userpoint>,
    /// Runtime variables, addressed by `RtvId`.
    pub runtime_vars: Vec<RuntimeVar>,
    /// Declared events, addressed by `EventId`.
    pub events: Vec<EventDecl>,
    /// Protocol contracts bound to this instance's port groups.
    pub protocols: Vec<ProtocolBinding>,
}

impl Instance {
    /// Looks up a port by interned name.
    pub fn port_sym(&self, name: Symbol) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Mutable port lookup by interned name.
    pub fn port_sym_mut(&mut self, name: Symbol) -> Option<&mut Port> {
        self.ports.iter_mut().find(|p| p.name == name)
    }

    /// The index of the port with the given interned name.
    pub fn port_id(&self, name: Symbol) -> Option<PortId> {
        self.ports
            .iter()
            .position(|p| p.name == name)
            .map(PortId::from_index)
    }

    /// Port access by dense id.
    pub fn port_by_id(&self, id: PortId) -> Option<&Port> {
        self.ports.get(id.index())
    }

    /// True for leaf instances.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, InstanceKind::Leaf { .. })
    }

    /// The protocol binding whose primary (data) port is `port`, if any.
    pub fn protocol_with_primary(&self, port: PortId) -> Option<&ProtocolBinding> {
        self.protocols.iter().find(|b| b.primary() == port)
    }

    /// The protocol binding that lists `port` anywhere in its group.
    pub fn protocol_with_port(&self, port: PortId) -> Option<&ProtocolBinding> {
        self.protocols.iter().find(|b| b.ports.contains(&port))
    }
}

/// A borrowed instance plus the netlist that owns it, so name-based lookups
/// can resolve through the interner. Dereferences to [`Instance`], which
/// keeps `netlist.find("x").unwrap().params[...]`-style call sites working.
#[derive(Clone, Copy)]
pub struct InstRef<'a> {
    /// The owning netlist (for symbol resolution).
    pub netlist: &'a Netlist,
    /// The instance itself.
    pub inst: &'a Instance,
}

impl<'a> Deref for InstRef<'a> {
    type Target = Instance;

    fn deref(&self) -> &Instance {
        self.inst
    }
}

impl<'a> InstRef<'a> {
    /// Looks up a port by name through the interner.
    pub fn port(&self, name: &str) -> Option<&'a Port> {
        let sym = self.netlist.interner.get(name)?;
        self.inst.ports.iter().find(|p| p.name == sym)
    }

    /// The instance's module name as a string.
    pub fn module_name(&self) -> &'a str {
        self.netlist.interner.resolve(self.inst.module)
    }

    /// Resolves any symbol through the owning netlist's interner.
    pub fn name_of(&self, sym: Symbol) -> &'a str {
        self.netlist.interner.resolve(sym)
    }
}

impl fmt::Debug for InstRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inst.fmt(f)
    }
}

/// One side of a connection: a specific port instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// The instance.
    pub inst: InstanceId,
    /// Index of the port within [`Instance::ports`].
    pub port: PortId,
    /// Port-instance index within the port's width.
    pub index: u32,
}

/// A directed point-to-point connection between two port instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// Data source (an outport of a sibling, or an inport of the enclosing
    /// instance seen from inside).
    pub src: Endpoint,
    /// Data sink.
    pub dst: Endpoint,
}

/// An instrumentation collector attached at the top level (§4.5).
#[derive(Debug, Clone, PartialEq)]
pub struct Collector {
    /// Instance whose events are observed.
    pub inst: InstanceId,
    /// Interned event name (`<port>_fire` for the implicit port-firing
    /// events).
    pub event: Symbol,
    /// BSL code executed per emission; it may read/update global collector
    /// state variables.
    pub code: String,
}

/// Counters the interpreter fills in during elaboration; inputs to the
/// Table 2 reuse statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElabStats {
    /// Explicit type instantiations present in the sources (`::` statements
    /// and annotated connections).
    pub explicit_type_instantiations: u32,
    /// Port widths inferred by use-based specialization.
    pub inferred_widths: u32,
    /// Parameter values inferred (defaults applied + widths), excluding
    /// explicit assignments.
    pub defaulted_params: u32,
    /// Number of `width` parameter reads performed by module bodies.
    pub width_reads: u32,
}

/// Metadata about each module template that was instantiated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleMeta {
    /// True if the module is hierarchical.
    pub hierarchical: bool,
    /// True if it came from the shared component library.
    pub from_library: bool,
    /// True for "trivial" hierarchical modules that merely wrap a fixed
    /// collection of components (no parameters — Table 2's parenthesized
    /// figures discount these).
    pub trivial: bool,
}

/// The elaborated model.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// All instances, topologically parent-before-child.
    pub instances: Vec<Instance>,
    /// All recorded connections (including pass-throughs at hierarchical
    /// ports; see [`Netlist::flatten`]).
    pub connections: Vec<Connection>,
    /// Collectors registered at elaboration time.
    pub collectors: Vec<Collector>,
    /// Type constraints gathered from ports, connections, and annotations.
    pub constraints: ConstraintSet,
    /// Generator for the instance-level type variables.
    pub vars: VarGen,
    /// Per-module metadata (keyed by interned module name).
    pub modules: BTreeMap<Symbol, ModuleMeta>,
    /// Elaboration counters.
    pub elab: ElabStats,
    /// The symbol table all of this netlist's [`Symbol`]s resolve through.
    pub interner: Interner,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a name in this netlist's symbol table.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Resolves a symbol back to its string.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Looks up an already-interned name.
    pub fn sym(&self, name: &str) -> Option<Symbol> {
        self.interner.get(name)
    }

    /// Adds an instance, assigning its id.
    pub fn add_instance(&mut self, mut inst: Instance) -> InstanceId {
        let id = InstanceId(self.instances.len() as u32);
        inst.id = id;
        self.instances.push(inst);
        id
    }

    /// Immutable instance access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this netlist.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id.index()]
    }

    /// Mutable instance access.
    pub fn instance_mut(&mut self, id: InstanceId) -> &mut Instance {
        &mut self.instances[id.index()]
    }

    /// Instance access with the netlist attached for name resolution.
    pub fn inst_ref(&self, id: InstanceId) -> InstRef<'_> {
        InstRef {
            netlist: self,
            inst: self.instance(id),
        }
    }

    /// Finds an instance by full hierarchical path.
    pub fn find(&self, path: &str) -> Option<InstRef<'_>> {
        self.instances
            .iter()
            .find(|i| i.path == path)
            .map(|inst| InstRef {
                netlist: self,
                inst,
            })
    }

    /// Module metadata looked up by name.
    pub fn module_meta(&self, name: &str) -> Option<&ModuleMeta> {
        self.modules.get(&self.interner.get(name)?)
    }

    /// Iterates over leaf instances.
    pub fn leaves(&self) -> impl Iterator<Item = &Instance> {
        self.instances.iter().filter(|i| i.is_leaf())
    }

    /// Human-readable name of an endpoint.
    pub fn endpoint_name(&self, e: Endpoint) -> String {
        let inst = self.instance(e.inst);
        let port = inst
            .ports
            .get(e.port.index())
            .map(|p| self.interner.resolve(p.name))
            .unwrap_or("?");
        format!("{}.{}[{}]", inst.path, port, e.index)
    }

    /// Resolves hierarchical pass-throughs, producing direct leaf-to-leaf
    /// wires.
    ///
    /// Every connection is point-to-point between port instances, and every
    /// port instance participates in at most one connection per side, so a
    /// backward walk from each leaf input is deterministic: follow the
    /// chain of drivers through hierarchical ports until a leaf output is
    /// reached.
    ///
    /// Dangling chains (a hierarchical port with no driver on the other
    /// side — legal, "unconnected port semantics") produce no wire.
    pub fn flatten(&self) -> Vec<Wire> {
        // Map each destination endpoint to its unique driver.
        let mut driver: BTreeMap<Endpoint, Endpoint> = BTreeMap::new();
        for c in &self.connections {
            driver.insert(c.dst, c.src);
        }
        let mut wires = Vec::new();
        for c in &self.connections {
            let dst_inst = self.instance(c.dst.inst);
            if !dst_inst.is_leaf() {
                continue;
            }
            // Only leaf *inputs* terminate a chain; a connection into a
            // leaf port that is an outport is the "inside" of a leaf, which
            // cannot happen (leaves have no inside).
            let Some(port) = dst_inst.ports.get(c.dst.port.index()) else {
                continue;
            };
            if port.dir != Dir::In {
                continue;
            }
            // Chase the driver chain backwards through hierarchical ports.
            let mut src = c.src;
            let mut hops = 0usize;
            loop {
                let inst = self.instance(src.inst);
                if inst.is_leaf() {
                    wires.push(Wire { src, dst: c.dst });
                    break;
                }
                match driver.get(&src) {
                    Some(&prev) => {
                        src = prev;
                        hops += 1;
                        assert!(
                            hops <= self.connections.len(),
                            "connection cycle through hierarchical ports at {}",
                            self.endpoint_name(src)
                        );
                    }
                    // Un-driven hierarchical port: dangles, no wire.
                    None => break,
                }
            }
        }
        wires
    }

    /// Total number of port instances (sum of widths) across all ports.
    pub fn port_instance_count(&self) -> usize {
        self.instances
            .iter()
            .flat_map(|i| i.ports.iter())
            .map(|p| p.width as usize)
            .sum()
    }
}

/// A flattened leaf-to-leaf wire produced by [`Netlist::flatten`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wire {
    /// Leaf output port instance.
    pub src: Endpoint,
    /// Leaf input port instance.
    pub dst: Endpoint,
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Adds an instance with the given ports, interning names through the
    /// netlist and drawing type variables from its generator.
    pub fn add(
        n: &mut Netlist,
        path: &str,
        module: &str,
        kind: InstanceKind,
        parent: Option<InstanceId>,
        ports: &[(&str, Dir)],
    ) -> InstanceId {
        let module = n.intern(module);
        let ports = ports
            .iter()
            .map(|(name, dir)| {
                let name_sym = n.intern(name);
                let var = n.vars.fresh(format!("{path}.{name}"));
                Port {
                    name: name_sym,
                    dir: *dir,
                    scheme: Scheme::Var(var),
                    var,
                    width: 0,
                    ty: None,
                    explicit: false,
                }
            })
            .collect();
        n.add_instance(Instance {
            id: InstanceId(0),
            path: path.to_string(),
            module,
            kind,
            parent,
            from_library: true,
            params: BTreeMap::new(),
            ports,
            userpoints: Vec::new(),
            runtime_vars: Vec::new(),
            events: Vec::new(),
            protocols: Vec::new(),
        })
    }

    /// Endpoint shorthand.
    pub fn ep(inst: InstanceId, port: u32, index: u32) -> Endpoint {
        Endpoint {
            inst,
            port: PortId(port),
            index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    /// Builds the paper's Figure 2 structure: gen -> delay3(in->d0->d1->d2->out) -> hole.
    fn delay_chain() -> (Netlist, Vec<InstanceId>) {
        let mut n = Netlist::new();
        let gen = add(
            &mut n,
            "gen",
            "source",
            InstanceKind::Leaf {
                tar_file: "corelib/source.tar".into(),
            },
            None,
            &[("out", Dir::Out)],
        );
        let hole = add(
            &mut n,
            "hole",
            "sink",
            InstanceKind::Leaf {
                tar_file: "corelib/sink.tar".into(),
            },
            None,
            &[("in", Dir::In)],
        );
        let chain = add(
            &mut n,
            "delay3",
            "delayn",
            InstanceKind::Hierarchical,
            None,
            &[("in", Dir::In), ("out", Dir::Out)],
        );
        let mut delays = Vec::new();
        for i in 0..3 {
            let d = add(
                &mut n,
                &format!("delay3.delays[{i}]"),
                "delay",
                InstanceKind::Leaf {
                    tar_file: "corelib/delay.tar".into(),
                },
                Some(chain),
                &[("in", Dir::In), ("out", Dir::Out)],
            );
            delays.push(d);
        }
        // External connections.
        n.connections.push(Connection {
            src: ep(gen, 0, 0),
            dst: ep(chain, 0, 0),
        });
        n.connections.push(Connection {
            src: ep(chain, 1, 0),
            dst: ep(hole, 0, 0),
        });
        // Internal connections of delay3.
        n.connections.push(Connection {
            src: ep(chain, 0, 0),
            dst: ep(delays[0], 0, 0),
        });
        n.connections.push(Connection {
            src: ep(delays[0], 1, 0),
            dst: ep(delays[1], 0, 0),
        });
        n.connections.push(Connection {
            src: ep(delays[1], 1, 0),
            dst: ep(delays[2], 0, 0),
        });
        n.connections.push(Connection {
            src: ep(delays[2], 1, 0),
            dst: ep(chain, 1, 0),
        });
        let ids = vec![gen, hole, chain, delays[0], delays[1], delays[2]];
        (n, ids)
    }

    #[test]
    fn flatten_resolves_hierarchical_pass_throughs() {
        let (n, ids) = delay_chain();
        let wires = n.flatten();
        // gen->d0, d0->d1, d1->d2, d2->hole: all four leaf-to-leaf wires.
        assert_eq!(wires.len(), 4);
        let gen = ids[0];
        let hole = ids[1];
        let d0 = ids[3];
        let d2 = ids[5];
        assert!(
            wires.iter().any(|w| w.src.inst == gen && w.dst.inst == d0),
            "gen must drive the first delay through the hierarchical inport"
        );
        assert!(
            wires.iter().any(|w| w.src.inst == d2 && w.dst.inst == hole),
            "the last delay must drive the sink through the hierarchical outport"
        );
    }

    #[test]
    fn flatten_ignores_dangling_hierarchical_ports() {
        let (mut n, ids) = delay_chain();
        // Remove the external driver of delay3.in: the internal chain then
        // dangles and produces no wire into delays[0].
        n.connections.retain(|c| c.src.inst != ids[0]);
        let wires = n.flatten();
        assert_eq!(wires.len(), 3);
        assert!(!wires.iter().any(|w| w.dst.inst == ids[3]));
    }

    #[test]
    fn endpoint_names_are_readable() {
        let (n, ids) = delay_chain();
        let name = n.endpoint_name(Endpoint {
            inst: ids[2],
            port: PortId(0),
            index: 0,
        });
        assert_eq!(name, "delay3.in[0]");
    }

    #[test]
    fn find_and_leaves() {
        let (n, _) = delay_chain();
        assert!(n.find("delay3.delays[1]").is_some());
        assert!(n.find("nope").is_none());
        assert_eq!(n.leaves().count(), 5);
        assert_eq!(n.instances.len(), 6);
    }

    #[test]
    fn inst_ref_resolves_ports_by_name() {
        let (n, _) = delay_chain();
        let gen = n.find("gen").unwrap();
        assert!(gen.port("out").is_some());
        assert!(gen.port("nonexistent").is_none());
        assert_eq!(gen.module_name(), "source");
        // Deref keeps plain field access working.
        assert_eq!(gen.path, "gen");
    }

    #[test]
    #[should_panic(expected = "connection cycle")]
    fn flatten_detects_cycles_through_hierarchy() {
        let mut n = Netlist::new();
        let h = add(
            &mut n,
            "h",
            "wrap",
            InstanceKind::Hierarchical,
            None,
            &[("in", Dir::In), ("out", Dir::Out)],
        );
        let leaf = add(
            &mut n,
            "h.l",
            "delay",
            InstanceKind::Leaf {
                tar_file: "x".into(),
            },
            Some(h),
            &[("in", Dir::In), ("out", Dir::Out)],
        );
        // Hierarchical ports driving each other in a loop, feeding the leaf.
        n.connections.push(Connection {
            src: ep(h, 1, 0),
            dst: ep(h, 0, 0),
        });
        n.connections.push(Connection {
            src: ep(h, 0, 0),
            dst: ep(h, 1, 0),
        });
        n.connections.push(Connection {
            src: ep(h, 0, 0),
            dst: ep(leaf, 0, 0),
        });
        let _ = n.flatten();
    }

    #[test]
    fn port_instance_count_sums_widths() {
        let (mut n, ids) = delay_chain();
        n.instance_mut(ids[0]).ports[0].width = 1;
        n.instance_mut(ids[1]).ports[0].width = 1;
        assert_eq!(n.port_instance_count(), 2);
    }
}
