//! JSON serialization of the elaborated netlist.
//!
//! [`to_json`] emits a complete, self-contained document (format 3):
//! interner symbols, type-variable names, elaboration counters, module
//! metadata, full instances (ports with schemes and inferred types,
//! userpoints, runtime variables, events), raw connections, derived
//! flattened wires, collector bindings, and the constraint set.
//! [`from_json`] parses it back into a [`Netlist`] that is
//! observationally identical: reuse statistics match and a second
//! `to_json` is byte-identical. This round-trip backs the driver's
//! on-disk netlist cache as well as external tooling (visualizers,
//! diffing, CI artifacts).
//!
//! Hand-rolled writer — the IR is small and a serializer dependency is
//! not warranted (DESIGN.md §6). The matching reader lives in
//! [`crate::jsonval`].

use std::collections::BTreeMap;
use std::fmt::Write;

use lss_types::{Constraint, ConstraintOrigin, Datum, Scheme, Ty, TyVar};

use crate::intern::PortId;
use crate::jsonval::{parse_json, JsonValue};
use crate::netlist::{
    Collector, Connection, Endpoint, EventDecl, Instance, InstanceId, InstanceKind, ModuleMeta,
    Netlist, Port, RuntimeVar, Userpoint,
};
use crate::protocol::{ActionDir, Automaton, ProtocolBinding, Role, SrcSpan, Template, Transition};

/// The serialization format this module reads and writes.
///
/// Format 3 added per-instance `protocols` (port-group protocol bindings);
/// format-2 documents are rejected, which transparently invalidates older
/// driver caches.
pub const JSON_FORMAT: u32 = 3;

/// Escapes a string for embedding in a JSON string literal (without the
/// surrounding quotes). Public so the driver's cache envelope and the CLI
/// timing emitters can share the escaping rules.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn datum_json(d: &Datum) -> String {
    match d {
        Datum::Int(v) => v.to_string(),
        Datum::Bool(b) => b.to_string(),
        Datum::Float(v) if v.is_finite() => {
            // Always keep a fractional part so the reader can tell a float
            // from an int (Rust's shortest-round-trip Display drops ".0").
            let s = v.to_string();
            if s.contains('.') {
                s
            } else {
                format!("{s}.0")
            }
        }
        // Tagged specials; `$` cannot begin an LSS struct field name, so
        // this object shape never collides with `Datum::Struct`.
        Datum::Float(v) if v.is_nan() => "{\"$f\":\"nan\"}".to_string(),
        Datum::Float(v) if *v > 0.0 => "{\"$f\":\"inf\"}".to_string(),
        Datum::Float(_) => "{\"$f\":\"-inf\"}".to_string(),
        Datum::Str(s) => format!("\"{}\"", escape(s)),
        Datum::Array(items) => {
            let inner: Vec<String> = items.iter().map(datum_json).collect();
            format!("[{}]", inner.join(","))
        }
        Datum::Struct(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape(k), datum_json(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

fn ty_json(ty: &Ty) -> String {
    match ty {
        Ty::Int => "\"int\"".to_string(),
        Ty::Bool => "\"bool\"".to_string(),
        Ty::Float => "\"float\"".to_string(),
        Ty::String => "\"string\"".to_string(),
        Ty::Array(t, n) => format!("{{\"array\":[{},{n}]}}", ty_json(t)),
        Ty::Struct(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, t)| format!("[\"{}\",{}]", escape(k), ty_json(t)))
                .collect();
            format!("{{\"struct\":[{}]}}", inner.join(","))
        }
    }
}

fn scheme_json(s: &Scheme) -> String {
    match s {
        Scheme::Int => "\"int\"".to_string(),
        Scheme::Bool => "\"bool\"".to_string(),
        Scheme::Float => "\"float\"".to_string(),
        Scheme::String => "\"string\"".to_string(),
        Scheme::Array(t, n) => format!("{{\"array\":[{},{n}]}}", scheme_json(t)),
        Scheme::Struct(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, t)| format!("[\"{}\",{}]", escape(k), scheme_json(t)))
                .collect();
            format!("{{\"struct\":[{}]}}", inner.join(","))
        }
        Scheme::Var(v) => format!("{{\"var\":{}}}", v.0),
        Scheme::Or(alts) => {
            let inner: Vec<String> = alts.iter().map(scheme_json).collect();
            format!("{{\"or\":[{}]}}", inner.join(","))
        }
    }
}

fn origin_json(o: &ConstraintOrigin) -> String {
    match o {
        ConstraintOrigin::Connection { src, dst } => {
            format!(
                "{{\"connection\":[\"{}\",\"{}\"]}}",
                escape(src),
                escape(dst)
            )
        }
        ConstraintOrigin::Annotation { target } => {
            format!("{{\"annotation\":\"{}\"}}", escape(target))
        }
        ConstraintOrigin::PortDecl { port } => {
            format!("{{\"portdecl\":\"{}\"}}", escape(port))
        }
        ConstraintOrigin::Synthetic => "\"synthetic\"".to_string(),
    }
}

fn endpoint_json(e: Endpoint) -> String {
    format!("[{},{},{}]", e.inst.0, e.port.0, e.index)
}

/// Writes `  "key": [` items one-per-line `],` — or `[]` when empty.
fn array_block(out: &mut String, key: &str, items: &[String], last: bool) {
    let tail = if last { "\n" } else { ",\n" };
    if items.is_empty() {
        let _ = write!(out, "  \"{key}\": []{tail}");
        return;
    }
    let _ = writeln!(out, "  \"{key}\": [");
    for (i, item) in items.iter().enumerate() {
        let sep = if i + 1 < items.len() { ",\n" } else { "\n" };
        let _ = write!(out, "    {item}{sep}");
    }
    let _ = write!(out, "  ]{tail}");
}

fn instance_json(netlist: &Netlist, inst: &Instance) -> String {
    let kind = match &inst.kind {
        InstanceKind::Leaf { tar_file } => {
            format!("\"leaf\", \"tar_file\": \"{}\"", escape(tar_file))
        }
        InstanceKind::Hierarchical => "\"hierarchical\"".to_string(),
    };
    let params: Vec<String> = inst
        .params
        .iter()
        .map(|(k, v)| format!("\"{}\": {}", escape(k), datum_json(v)))
        .collect();
    let ports: Vec<String> = inst
        .ports
        .iter()
        .map(|p| {
            format!(
                "{{\"name\": \"{}\", \"dir\": \"{}\", \"width\": {}, \"type\": {}, \
                 \"scheme\": {}, \"var\": {}, \"explicit\": {}}}",
                escape(netlist.name(p.name)),
                p.dir,
                p.width,
                p.ty.as_ref()
                    .map(ty_json)
                    .unwrap_or_else(|| "null".to_string()),
                scheme_json(&p.scheme),
                p.var.0,
                p.explicit,
            )
        })
        .collect();
    let userpoints: Vec<String> = inst
        .userpoints
        .iter()
        .map(|u| {
            let args: Vec<String> = u
                .args
                .iter()
                .map(|(name, ty)| format!("[\"{}\",{}]", escape(netlist.name(*name)), ty_json(ty)))
                .collect();
            format!(
                "{{\"name\": \"{}\", \"args\": [{}], \"ret\": {}, \"code\": \"{}\"}}",
                escape(netlist.name(u.name)),
                args.join(","),
                ty_json(&u.ret),
                escape(&u.code)
            )
        })
        .collect();
    let rtvs: Vec<String> = inst
        .runtime_vars
        .iter()
        .map(|r| {
            format!(
                "{{\"name\": \"{}\", \"ty\": {}, \"init\": {}}}",
                escape(netlist.name(r.name)),
                ty_json(&r.ty),
                datum_json(&r.init)
            )
        })
        .collect();
    let events: Vec<String> = inst
        .events
        .iter()
        .map(|e| {
            let args: Vec<String> = e.args.iter().map(ty_json).collect();
            format!(
                "{{\"name\": \"{}\", \"args\": [{}]}}",
                escape(netlist.name(e.name)),
                args.join(",")
            )
        })
        .collect();
    let protocols: Vec<String> = inst.protocols.iter().map(protocol_json).collect();
    format!(
        "{{\"path\": \"{}\", \"module\": \"{}\", \"kind\": {kind}, \
         \"from_library\": {}, \"parent\": {}, \"params\": {{{}}}, \"ports\": [{}], \
         \"userpoints\": [{}], \"runtime_vars\": [{}], \"events\": [{}], \
         \"protocols\": [{}]}}",
        escape(&inst.path),
        escape(netlist.name(inst.module)),
        inst.from_library,
        inst.parent
            .map(|p| p.0.to_string())
            .unwrap_or_else(|| "null".to_string()),
        params.join(", "),
        ports.join(", "),
        userpoints.join(", "),
        rtvs.join(", "),
        events.join(", "),
        protocols.join(", "),
    )
}

fn protocol_json(b: &ProtocolBinding) -> String {
    let template = match &b.automaton.template {
        Template::ValidReady => "\"valid_ready\"".to_string(),
        Template::Credit(None) => "{\"credit\": null}".to_string(),
        Template::Credit(Some(n)) => format!("{{\"credit\": {n}}}"),
        Template::ReqResp => "\"req_resp\"".to_string(),
        Template::Custom(name) => format!("{{\"custom\": \"{}\"}}", escape(name)),
    };
    let states: Vec<String> = b
        .automaton
        .states
        .iter()
        .map(|s| format!("\"{}\"", escape(s)))
        .collect();
    let transitions: Vec<String> = b
        .automaton
        .transitions
        .iter()
        .map(|t| {
            let dir = match t.dir {
                ActionDir::Send => "send",
                ActionDir::Recv => "recv",
            };
            format!(
                "[{}, {}, \"{dir}\", \"{}\"]",
                t.from,
                t.to,
                escape(&t.action)
            )
        })
        .collect();
    let ports: Vec<String> = b.ports.iter().map(|p| p.0.to_string()).collect();
    format!(
        "{{\"group\": \"{}\", \"role\": \"{}\", \"template\": {template}, \
         \"states\": [{}], \"transitions\": [{}], \"ports\": [{}], \
         \"span\": [{}, {}, {}]}}",
        escape(&b.group),
        b.role,
        states.join(", "),
        transitions.join(", "),
        ports.join(", "),
        b.span.file,
        b.span.start,
        b.span.end,
    )
}

/// Serializes the netlist to a complete JSON document (format 3).
///
/// Everything [`from_json`] needs to rebuild an observationally identical
/// netlist is included; the `wires` section is derived (ignored on read).
pub fn to_json(netlist: &Netlist) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"format\": {JSON_FORMAT},");

    let symbols: Vec<String> = netlist
        .interner
        .iter()
        .map(|(_, name)| format!("\"{}\"", escape(name)))
        .collect();
    array_block(&mut out, "symbols", &symbols, false);

    let tyvars: Vec<String> = (0..netlist.vars.len())
        .map(|i| format!("\"{}\"", escape(netlist.vars.name(TyVar(i as u32)))))
        .collect();
    array_block(&mut out, "tyvars", &tyvars, false);

    let e = &netlist.elab;
    let _ = writeln!(
        out,
        "  \"elab\": {{\"explicit_type_instantiations\": {}, \"inferred_widths\": {}, \
         \"defaulted_params\": {}, \"width_reads\": {}}},",
        e.explicit_type_instantiations, e.inferred_widths, e.defaulted_params, e.width_reads
    );

    let modules: Vec<String> = netlist
        .modules
        .iter()
        .map(|(sym, meta)| {
            format!(
                "{{\"name\": \"{}\", \"hierarchical\": {}, \"from_library\": {}, \
                 \"trivial\": {}}}",
                escape(netlist.name(*sym)),
                meta.hierarchical,
                meta.from_library,
                meta.trivial
            )
        })
        .collect();
    array_block(&mut out, "modules", &modules, false);

    let instances: Vec<String> = netlist
        .instances
        .iter()
        .map(|inst| instance_json(netlist, inst))
        .collect();
    array_block(&mut out, "instances", &instances, false);

    let connections: Vec<String> = netlist
        .connections
        .iter()
        .map(|c| format!("[{},{}]", endpoint_json(c.src), endpoint_json(c.dst)))
        .collect();
    array_block(&mut out, "connections", &connections, false);

    let wires: Vec<String> = netlist
        .flatten()
        .iter()
        .map(|w| {
            format!(
                "{{\"src\": \"{}\", \"dst\": \"{}\"}}",
                escape(&netlist.endpoint_name(w.src)),
                escape(&netlist.endpoint_name(w.dst))
            )
        })
        .collect();
    array_block(&mut out, "wires", &wires, false);

    let collectors: Vec<String> = netlist
        .collectors
        .iter()
        .map(|c| {
            format!(
                "{{\"instance\": {}, \"path\": \"{}\", \"event\": \"{}\", \"code\": \"{}\"}}",
                c.inst.0,
                escape(&netlist.instance(c.inst).path),
                escape(netlist.name(c.event)),
                escape(&c.code)
            )
        })
        .collect();
    array_block(&mut out, "collectors", &collectors, false);

    let constraints: Vec<String> = netlist
        .constraints
        .iter()
        .map(|c| {
            format!(
                "{{\"lhs\": {}, \"rhs\": {}, \"origin\": {}}}",
                scheme_json(&c.lhs),
                scheme_json(&c.rhs),
                origin_json(&c.origin)
            )
        })
        .collect();
    array_block(&mut out, "constraints", &constraints, true);

    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

fn want<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing key `{key}`"))
}

fn want_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    want(v, key)?
        .as_str()
        .ok_or_else(|| format!("key `{key}` is not a string"))
}

fn want_u32(v: &JsonValue, key: &str) -> Result<u32, String> {
    want(v, key)?
        .as_i64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| format!("key `{key}` is not a u32"))
}

fn want_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    want(v, key)?
        .as_bool()
        .ok_or_else(|| format!("key `{key}` is not a bool"))
}

fn want_array<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], String> {
    want(v, key)?
        .as_array()
        .ok_or_else(|| format!("key `{key}` is not an array"))
}

fn ty_from(v: &JsonValue) -> Result<Ty, String> {
    match v {
        JsonValue::Str(s) => match s.as_str() {
            "int" => Ok(Ty::Int),
            "bool" => Ok(Ty::Bool),
            "float" => Ok(Ty::Float),
            "string" => Ok(Ty::String),
            other => Err(format!("unknown type `{other}`")),
        },
        JsonValue::Object(_) => {
            if let Some(arr) = v.get("array").and_then(|a| a.as_array()) {
                let [elem, len] = arr else {
                    return Err("malformed array type".to_string());
                };
                let n = len
                    .as_i64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or("bad array length")?;
                Ok(Ty::Array(Box::new(ty_from(elem)?), n))
            } else if let Some(fields) = v.get("struct").and_then(|f| f.as_array()) {
                let fields = fields
                    .iter()
                    .map(|pair| {
                        let [name, ty] = pair.as_array().ok_or("malformed struct field")? else {
                            return Err("malformed struct field".to_string());
                        };
                        let name = name.as_str().ok_or("struct field name not a string")?;
                        Ok((name.to_string(), ty_from(ty)?))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Ty::Struct(fields))
            } else {
                Err("unknown type object".to_string())
            }
        }
        _ => Err("type must be a string or object".to_string()),
    }
}

fn scheme_from(v: &JsonValue) -> Result<Scheme, String> {
    match v {
        JsonValue::Str(s) => match s.as_str() {
            "int" => Ok(Scheme::Int),
            "bool" => Ok(Scheme::Bool),
            "float" => Ok(Scheme::Float),
            "string" => Ok(Scheme::String),
            other => Err(format!("unknown scheme `{other}`")),
        },
        JsonValue::Object(_) => {
            if let Some(var) = v.get("var") {
                let n = var
                    .as_i64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("bad type variable")?;
                Ok(Scheme::Var(TyVar(n)))
            } else if let Some(alts) = v.get("or").and_then(|a| a.as_array()) {
                Ok(Scheme::Or(
                    alts.iter().map(scheme_from).collect::<Result<_, _>>()?,
                ))
            } else if let Some(arr) = v.get("array").and_then(|a| a.as_array()) {
                let [elem, len] = arr else {
                    return Err("malformed array scheme".to_string());
                };
                let n = len
                    .as_i64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or("bad array length")?;
                Ok(Scheme::Array(Box::new(scheme_from(elem)?), n))
            } else if let Some(fields) = v.get("struct").and_then(|f| f.as_array()) {
                let fields = fields
                    .iter()
                    .map(|pair| {
                        let [name, s] = pair.as_array().ok_or("malformed struct field")? else {
                            return Err("malformed struct field".to_string());
                        };
                        let name = name.as_str().ok_or("struct field name not a string")?;
                        Ok((name.to_string(), scheme_from(s)?))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Scheme::Struct(fields))
            } else {
                Err("unknown scheme object".to_string())
            }
        }
        _ => Err("scheme must be a string or object".to_string()),
    }
}

fn datum_from(v: &JsonValue) -> Result<Datum, String> {
    match v {
        JsonValue::Int(n) => Ok(Datum::Int(*n)),
        JsonValue::Float(f) => Ok(Datum::Float(*f)),
        JsonValue::Bool(b) => Ok(Datum::Bool(*b)),
        JsonValue::Str(s) => Ok(Datum::Str(s.clone())),
        JsonValue::Array(items) => Ok(Datum::Array(
            items.iter().map(datum_from).collect::<Result<_, _>>()?,
        )),
        JsonValue::Object(members) => {
            // The tagged float specials.
            if let [(key, JsonValue::Str(tag))] = members.as_slice() {
                if key == "$f" {
                    return match tag.as_str() {
                        "nan" => Ok(Datum::Float(f64::NAN)),
                        "inf" => Ok(Datum::Float(f64::INFINITY)),
                        "-inf" => Ok(Datum::Float(f64::NEG_INFINITY)),
                        other => Err(format!("unknown float tag `{other}`")),
                    };
                }
            }
            Ok(Datum::Struct(
                members
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), datum_from(v)?)))
                    .collect::<Result<Vec<_>, String>>()?,
            ))
        }
        JsonValue::Null => Err("null is not a datum".to_string()),
    }
}

fn origin_from(v: &JsonValue) -> Result<ConstraintOrigin, String> {
    match v {
        JsonValue::Str(s) if s == "synthetic" => Ok(ConstraintOrigin::Synthetic),
        JsonValue::Object(_) => {
            if let Some(pair) = v.get("connection").and_then(|p| p.as_array()) {
                let [src, dst] = pair else {
                    return Err("malformed connection origin".to_string());
                };
                Ok(ConstraintOrigin::Connection {
                    src: src.as_str().ok_or("bad connection src")?.to_string(),
                    dst: dst.as_str().ok_or("bad connection dst")?.to_string(),
                })
            } else if let Some(t) = v.get("annotation") {
                Ok(ConstraintOrigin::Annotation {
                    target: t.as_str().ok_or("bad annotation target")?.to_string(),
                })
            } else if let Some(p) = v.get("portdecl") {
                Ok(ConstraintOrigin::PortDecl {
                    port: p.as_str().ok_or("bad portdecl port")?.to_string(),
                })
            } else {
                Err("unknown origin object".to_string())
            }
        }
        _ => Err("unknown constraint origin".to_string()),
    }
}

fn endpoint_from(v: &JsonValue) -> Result<Endpoint, String> {
    let triple = v.as_array().ok_or("endpoint is not an array")?;
    let [inst, port, index] = triple else {
        return Err("endpoint must be [inst, port, index]".to_string());
    };
    let as_u32 = |v: &JsonValue, what: &str| {
        v.as_i64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| format!("bad endpoint {what}"))
    };
    Ok(Endpoint {
        inst: InstanceId(as_u32(inst, "instance")?),
        port: PortId(as_u32(port, "port")?),
        index: as_u32(index, "index")?,
    })
}

fn instance_from(n: &Netlist, id: u32, v: &JsonValue) -> Result<Instance, String> {
    let sym = |name: &str| {
        n.interner
            .get(name)
            .ok_or_else(|| format!("name `{name}` not in symbol table"))
    };
    let kind = match want_str(v, "kind")? {
        "leaf" => InstanceKind::Leaf {
            tar_file: want_str(v, "tar_file")?.to_string(),
        },
        "hierarchical" => InstanceKind::Hierarchical,
        other => return Err(format!("unknown instance kind `{other}`")),
    };
    let parent = match want(v, "parent")? {
        JsonValue::Null => None,
        p => Some(InstanceId(
            p.as_i64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("bad parent id")?,
        )),
    };
    let params = want(v, "params")?
        .as_object()
        .ok_or("params is not an object")?
        .iter()
        .map(|(k, v)| Ok((k.clone(), datum_from(v)?)))
        .collect::<Result<BTreeMap<_, _>, String>>()?;
    let ports = want_array(v, "ports")?
        .iter()
        .map(|p| {
            let ty = match want(p, "type")? {
                JsonValue::Null => None,
                t => Some(ty_from(t)?),
            };
            Ok(Port {
                name: sym(want_str(p, "name")?)?,
                dir: match want_str(p, "dir")? {
                    "in" => crate::netlist::Dir::In,
                    "out" => crate::netlist::Dir::Out,
                    other => return Err(format!("unknown port dir `{other}`")),
                },
                scheme: scheme_from(want(p, "scheme")?)?,
                var: TyVar(want_u32(p, "var")?),
                width: want_u32(p, "width")?,
                ty,
                explicit: want_bool(p, "explicit")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let userpoints = want_array(v, "userpoints")?
        .iter()
        .map(|u| {
            let args = want_array(u, "args")?
                .iter()
                .map(|pair| {
                    let [name, ty] = pair.as_array().ok_or("malformed userpoint arg")? else {
                        return Err("malformed userpoint arg".to_string());
                    };
                    let name = name.as_str().ok_or("userpoint arg name not a string")?;
                    Ok((sym(name)?, ty_from(ty)?))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Userpoint {
                name: sym(want_str(u, "name")?)?,
                args,
                ret: ty_from(want(u, "ret")?)?,
                code: want_str(u, "code")?.to_string(),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let runtime_vars = want_array(v, "runtime_vars")?
        .iter()
        .map(|r| {
            Ok(RuntimeVar {
                name: sym(want_str(r, "name")?)?,
                ty: ty_from(want(r, "ty")?)?,
                init: datum_from(want(r, "init")?)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let events = want_array(v, "events")?
        .iter()
        .map(|e| {
            Ok(EventDecl {
                name: sym(want_str(e, "name")?)?,
                args: want_array(e, "args")?
                    .iter()
                    .map(ty_from)
                    .collect::<Result<Vec<_>, String>>()?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let protocols = want_array(v, "protocols")?
        .iter()
        .map(protocol_from)
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Instance {
        id: InstanceId(id),
        path: want_str(v, "path")?.to_string(),
        module: sym(want_str(v, "module")?)?,
        kind,
        parent,
        from_library: want_bool(v, "from_library")?,
        params,
        ports,
        userpoints,
        runtime_vars,
        events,
        protocols,
    })
}

fn protocol_from(v: &JsonValue) -> Result<ProtocolBinding, String> {
    let as_u32 = |v: &JsonValue, what: &str| {
        v.as_i64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| format!("bad protocol {what}"))
    };
    let role = match want_str(v, "role")? {
        "producer" => Role::Producer,
        "consumer" => Role::Consumer,
        other => return Err(format!("unknown protocol role `{other}`")),
    };
    let template = match want(v, "template")? {
        JsonValue::Str(s) if s == "valid_ready" => Template::ValidReady,
        JsonValue::Str(s) if s == "req_resp" => Template::ReqResp,
        obj @ JsonValue::Object(_) => {
            if let Some(credit) = obj.get("credit") {
                match credit {
                    JsonValue::Null => Template::Credit(None),
                    n => Template::Credit(Some(
                        n.as_i64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or("bad credit count")?,
                    )),
                }
            } else if let Some(name) = obj.get("custom") {
                Template::Custom(
                    name.as_str()
                        .ok_or("custom protocol name not a string")?
                        .to_string(),
                )
            } else {
                return Err("unknown protocol template object".to_string());
            }
        }
        other => return Err(format!("unknown protocol template `{other}`")),
    };
    let states = want_array(v, "states")?
        .iter()
        .map(|s| {
            Ok(s.as_str()
                .ok_or("protocol state is not a string")?
                .to_string())
        })
        .collect::<Result<Vec<_>, String>>()?;
    let transitions = want_array(v, "transitions")?
        .iter()
        .map(|t| {
            let [from, to, dir, action] = t.as_array().ok_or("malformed protocol transition")?
            else {
                return Err("malformed protocol transition".to_string());
            };
            Ok(Transition {
                from: as_u32(from, "transition from")?,
                to: as_u32(to, "transition to")?,
                dir: match dir.as_str().ok_or("transition dir not a string")? {
                    "send" => ActionDir::Send,
                    "recv" => ActionDir::Recv,
                    other => return Err(format!("unknown transition dir `{other}`")),
                },
                action: action
                    .as_str()
                    .ok_or("transition action not a string")?
                    .to_string(),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let ports = want_array(v, "ports")?
        .iter()
        .map(|p| Ok(PortId(as_u32(p, "protocol port")?)))
        .collect::<Result<Vec<_>, String>>()?;
    if ports.is_empty() {
        return Err("protocol binding has no ports".to_string());
    }
    let span = match want_array(v, "span")? {
        [file, start, end] => SrcSpan {
            file: as_u32(file, "span file")?,
            start: as_u32(start, "span start")?,
            end: as_u32(end, "span end")?,
        },
        _ => return Err("malformed protocol span".to_string()),
    };
    Ok(ProtocolBinding {
        group: want_str(v, "group")?.to_string(),
        role,
        automaton: Automaton {
            template,
            states,
            transitions,
        },
        ports,
        span,
    })
}

/// Rebuilds a [`Netlist`] from a parsed format-3 JSON document.
///
/// This is the entry point the driver's cache uses for the netlist object
/// nested inside its envelope; [`from_json`] wraps it for standalone
/// documents.
///
/// # Errors
///
/// Returns a message describing the first missing key, type mismatch, or
/// unresolvable reference. Callers treating the input as a cache entry
/// must fall back to a clean rebuild on error.
pub fn from_value(v: &JsonValue) -> Result<Netlist, String> {
    let format = want(v, "format")?
        .as_i64()
        .ok_or("format is not a number")?;
    if format != JSON_FORMAT as i64 {
        return Err(format!(
            "unsupported netlist format {format} (expected {JSON_FORMAT})"
        ));
    }
    let mut n = Netlist::new();
    for s in want_array(v, "symbols")? {
        n.interner
            .intern(s.as_str().ok_or("symbol is not a string")?);
    }
    for name in want_array(v, "tyvars")? {
        n.vars
            .fresh(name.as_str().ok_or("tyvar name is not a string")?);
    }
    let elab = want(v, "elab")?;
    n.elab = crate::netlist::ElabStats {
        explicit_type_instantiations: want_u32(elab, "explicit_type_instantiations")?,
        inferred_widths: want_u32(elab, "inferred_widths")?,
        defaulted_params: want_u32(elab, "defaulted_params")?,
        width_reads: want_u32(elab, "width_reads")?,
    };
    for m in want_array(v, "modules")? {
        let name = want_str(m, "name")?;
        let sym = n
            .interner
            .get(name)
            .ok_or_else(|| format!("module `{name}` not in symbol table"))?;
        n.modules.insert(
            sym,
            ModuleMeta {
                hierarchical: want_bool(m, "hierarchical")?,
                from_library: want_bool(m, "from_library")?,
                trivial: want_bool(m, "trivial")?,
            },
        );
    }
    for (i, inst_v) in want_array(v, "instances")?.iter().enumerate() {
        let inst = instance_from(&n, i as u32, inst_v)?;
        n.instances.push(inst);
    }
    for c in want_array(v, "connections")? {
        let pair = c.as_array().ok_or("connection is not an array")?;
        let [src, dst] = pair else {
            return Err("connection must be [src, dst]".to_string());
        };
        n.connections.push(Connection {
            src: endpoint_from(src)?,
            dst: endpoint_from(dst)?,
        });
    }
    // Validate endpoint references so a corrupt document cannot produce a
    // netlist that panics later.
    for c in &n.connections {
        for e in [c.src, c.dst] {
            let inst = n
                .instances
                .get(e.inst.index())
                .ok_or_else(|| format!("connection references unknown instance {}", e.inst))?;
            if inst.ports.get(e.port.index()).is_none() {
                return Err(format!(
                    "connection references unknown port {} on `{}`",
                    e.port, inst.path
                ));
            }
        }
    }
    for c in want_array(v, "collectors")? {
        let inst = InstanceId(want_u32(c, "instance")?);
        if inst.index() >= n.instances.len() {
            return Err(format!("collector references unknown instance {inst}"));
        }
        let event = want_str(c, "event")?;
        let event = n
            .interner
            .get(event)
            .ok_or_else(|| format!("collector event `{event}` not in symbol table"))?;
        n.collectors.push(Collector {
            inst,
            event,
            code: want_str(c, "code")?.to_string(),
        });
    }
    for c in want_array(v, "constraints")? {
        n.constraints.push(Constraint::with_origin(
            scheme_from(want(c, "lhs")?)?,
            scheme_from(want(c, "rhs")?)?,
            origin_from(want(c, "origin")?)?,
        ));
    }
    Ok(n)
}

/// Parses a format-2 JSON document produced by [`to_json`] back into a
/// [`Netlist`].
///
/// # Errors
///
/// Returns a message describing the first syntax error or schema
/// violation.
pub fn from_json(text: &str) -> Result<Netlist, String> {
    from_value(&parse_json(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::testutil::{add, ep};
    use crate::netlist::{Connection, Dir, InstanceKind, Userpoint};

    fn sample() -> Netlist {
        let mut n = Netlist::new();
        let a = add(
            &mut n,
            "a",
            "source",
            InstanceKind::Leaf {
                tar_file: "corelib/source.tar".into(),
            },
            None,
            &[("out", Dir::Out)],
        );
        let b = add(
            &mut n,
            "b",
            "sink",
            InstanceKind::Leaf {
                tar_file: "corelib/sink.tar".into(),
            },
            None,
            &[("in", Dir::In)],
        );
        let up_name = n.intern("p");
        n.instance_mut(a)
            .params
            .insert("start".into(), Datum::Int(3));
        n.instance_mut(a).ports[0].ty = Some(Ty::Int);
        n.instance_mut(a).ports[0].width = 1;
        n.instance_mut(a).userpoints.push(Userpoint {
            name: up_name,
            args: vec![],
            ret: Ty::Int,
            code: "return \"x\";".into(),
        });
        n.connections.push(Connection {
            src: ep(a, 0, 0),
            dst: ep(b, 0, 0),
        });
        n
    }

    #[test]
    fn exports_valid_looking_json() {
        let n = sample();
        let json = to_json(&n);
        assert!(json.contains("\"path\": \"a\""));
        assert!(json.contains("\"start\": 3"));
        assert!(json.contains("\"type\": \"int\""));
        assert!(json.contains("\"src\": \"a.out[0]\""));
        assert!(
            json.contains("return \\\"x\\\";"),
            "code must be escaped: {json}"
        );
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
        assert_eq!(datum_json(&Datum::Float(f64::NAN)), "{\"$f\":\"nan\"}");
        assert_eq!(
            datum_json(&Datum::Struct(vec![("k".into(), Datum::Bool(true))])),
            "{\"k\":true}"
        );
    }

    #[test]
    fn empty_netlist_exports() {
        let json = to_json(&Netlist::new());
        assert!(json.contains("\"instances\": ["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // And the empty document round-trips to identical bytes.
        let back = from_json(&json).unwrap();
        assert_eq!(to_json(&back), json);
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let mut n = sample();
        // Exercise every serialized corner: runtime vars, events,
        // constraints with each origin, module metadata, collectors,
        // struct/array/disjunctive schemes, and float params.
        let rtv = n.intern("count");
        let ev = n.intern("sent");
        n.instances[0].runtime_vars.push(RuntimeVar {
            name: rtv,
            ty: Ty::Int,
            init: Datum::Int(0),
        });
        n.instances[0].events.push(EventDecl {
            name: ev,
            args: vec![Ty::Int, Ty::record([("x", Ty::Float)])],
        });
        n.collectors.push(Collector {
            inst: InstanceId(0),
            event: ev,
            code: "total += 1;".into(),
        });
        n.instances[1]
            .params
            .insert("scale".into(), Datum::Float(2.0));
        n.instances[1]
            .params
            .insert("nan".into(), Datum::Float(f64::NAN));
        let src_sym = n.intern("wide");
        n.modules.insert(
            src_sym,
            ModuleMeta {
                hierarchical: true,
                from_library: false,
                trivial: true,
            },
        );
        n.constraints.push(Constraint::with_origin(
            Scheme::Var(TyVar(0)),
            Scheme::Or(vec![Scheme::Int, Scheme::Float]),
            ConstraintOrigin::Connection {
                src: "a.out".into(),
                dst: "b.in".into(),
            },
        ));
        n.constraints.push(Constraint::with_origin(
            Scheme::Array(Box::new(Scheme::Var(TyVar(1))), 4),
            Scheme::Struct(vec![("f".into(), Scheme::Bool)]),
            ConstraintOrigin::Annotation {
                target: "b.in".into(),
            },
        ));
        n.constraints.push(Constraint::with_origin(
            Scheme::Int,
            Scheme::Int,
            ConstraintOrigin::PortDecl {
                port: "a.out".into(),
            },
        ));
        // Protocol bindings: a built-in template plus a custom automaton.
        n.instances[0].protocols.push(ProtocolBinding {
            group: "outs".into(),
            role: Role::Producer,
            automaton: Automaton {
                template: Template::Credit(Some(4)),
                states: Vec::new(),
                transitions: Vec::new(),
            },
            ports: vec![PortId(0)],
            span: SrcSpan {
                file: 1,
                start: 10,
                end: 42,
            },
        });
        n.instances[1].protocols.push(ProtocolBinding {
            group: "ins".into(),
            role: Role::Consumer,
            automaton: Automaton {
                template: Template::Custom("loopy".into()),
                states: vec!["idle".into(), "busy".into()],
                transitions: vec![
                    Transition {
                        from: 0,
                        to: 1,
                        dir: ActionDir::Recv,
                        action: "item".into(),
                    },
                    Transition {
                        from: 1,
                        to: 0,
                        dir: ActionDir::Send,
                        action: "go".into(),
                    },
                ],
            },
            ports: vec![PortId(0)],
            span: SrcSpan::default(),
        });

        let json = to_json(&n);
        let back = from_json(&json).expect("round trip");
        let json2 = to_json(&back);
        assert_eq!(json, json2, "second emission must be byte-identical");

        // Observational equality on the pieces downstream passes read.
        assert_eq!(back.instances.len(), n.instances.len());
        assert_eq!(back.connections.len(), n.connections.len());
        assert_eq!(back.collectors.len(), n.collectors.len());
        assert_eq!(back.constraints, n.constraints);
        assert_eq!(back.elab, n.elab);
        assert_eq!(back.vars.len(), n.vars.len());
        // NaN params defeat PartialEq; Debug renders them identically.
        assert_eq!(
            format!("{:?}", back.instances),
            format!("{:?}", n.instances)
        );
        assert_eq!(
            crate::stats::reuse_stats(&back),
            crate::stats::reuse_stats(&n)
        );
        // NaN params survive (can't use ==; check the variant by re-dump).
        let nan = back.instances[1].params.get("nan").unwrap();
        assert!(matches!(nan, Datum::Float(f) if f.is_nan()));
        // Protocol bindings survive structurally, not just textually.
        assert_eq!(back.instances[0].protocols, n.instances[0].protocols);
        assert_eq!(back.instances[1].protocols, n.instances[1].protocols);
    }

    #[test]
    fn floats_keep_their_datum_variant() {
        assert_eq!(datum_json(&Datum::Float(2.0)), "2.0");
        assert_eq!(datum_json(&Datum::Float(-0.5)), "-0.5");
        assert_eq!(datum_json(&Datum::Int(2)), "2");
        assert_eq!(datum_json(&Datum::Float(f64::INFINITY)), "{\"$f\":\"inf\"}");
        assert_eq!(
            datum_json(&Datum::Float(f64::NEG_INFINITY)),
            "{\"$f\":\"-inf\"}"
        );
        // And they parse back to the same variant.
        assert!(matches!(
            datum_from(&parse_json("2.0").unwrap()).unwrap(),
            Datum::Float(f) if f == 2.0
        ));
        assert!(matches!(
            datum_from(&parse_json("2").unwrap()).unwrap(),
            Datum::Int(2)
        ));
    }

    #[test]
    fn corrupt_documents_are_rejected() {
        let n = sample();
        let json = to_json(&n);
        // Truncation.
        assert!(from_json(&json[..json.len() / 2]).is_err());
        // Wrong format version.
        assert!(from_json(&json.replace("\"format\": 3", "\"format\": 1")).is_err());
        // Dangling connection reference.
        let bad = json.replace("[[0,0,0],[1,0,0]]", "[[0,0,0],[9,0,0]]");
        assert!(from_json(&bad).is_err());
        // Not JSON at all.
        assert!(from_json("hello").is_err());
    }
}
