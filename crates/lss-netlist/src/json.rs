//! JSON export of the elaborated netlist, for external tooling
//! (visualizers, diffing, CI artifacts). Hand-rolled writer — the IR is
//! small and a serializer dependency is not warranted (DESIGN.md §6).

use std::fmt::Write;

use lss_types::{Datum, Ty};

use crate::netlist::{InstanceKind, Netlist};

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn datum_json(d: &Datum) -> String {
    match d {
        Datum::Int(v) => v.to_string(),
        Datum::Bool(b) => b.to_string(),
        Datum::Float(v) if v.is_finite() => v.to_string(),
        Datum::Float(_) => "null".to_string(),
        Datum::Str(s) => format!("\"{}\"", escape(s)),
        Datum::Array(items) => {
            let inner: Vec<String> = items.iter().map(datum_json).collect();
            format!("[{}]", inner.join(","))
        }
        Datum::Struct(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape(k), datum_json(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

fn ty_json(ty: &Ty) -> String {
    format!("\"{}\"", escape(&ty.to_string()))
}

/// Serializes the netlist to a JSON document: instances (with parameters,
/// ports, userpoints), connections, flattened wires, and collectors.
pub fn to_json(netlist: &Netlist) -> String {
    let mut out = String::from("{\n  \"instances\": [\n");
    for (i, inst) in netlist.instances.iter().enumerate() {
        let kind = match &inst.kind {
            InstanceKind::Leaf { tar_file } => {
                format!("\"leaf\", \"tar_file\": \"{}\"", escape(tar_file))
            }
            InstanceKind::Hierarchical => "\"hierarchical\"".to_string(),
        };
        let params: Vec<String> = inst
            .params
            .iter()
            .map(|(k, v)| format!("\"{}\": {}", escape(k), datum_json(v)))
            .collect();
        let ports: Vec<String> = inst
            .ports
            .iter()
            .map(|p| {
                format!(
                    "{{\"name\": \"{}\", \"dir\": \"{}\", \"width\": {}, \"type\": {}}}",
                    escape(netlist.name(p.name)),
                    p.dir,
                    p.width,
                    p.ty.as_ref()
                        .map(ty_json)
                        .unwrap_or_else(|| "null".to_string())
                )
            })
            .collect();
        let userpoints: Vec<String> = inst
            .userpoints
            .iter()
            .map(|u| {
                format!(
                    "{{\"name\": \"{}\", \"code\": \"{}\"}}",
                    escape(netlist.name(u.name)),
                    escape(&u.code)
                )
            })
            .collect();
        let _ = write!(
            out,
            "    {{\"path\": \"{}\", \"module\": \"{}\", \"kind\": {kind}, \
             \"from_library\": {}, \"parent\": {}, \"params\": {{{}}}, \"ports\": [{}], \
             \"userpoints\": [{}]}}",
            escape(&inst.path),
            escape(netlist.name(inst.module)),
            inst.from_library,
            inst.parent
                .map(|p| p.0.to_string())
                .unwrap_or_else(|| "null".to_string()),
            params.join(", "),
            ports.join(", "),
            userpoints.join(", "),
        );
        out.push_str(if i + 1 < netlist.instances.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"wires\": [\n");
    let wires = netlist.flatten();
    for (i, w) in wires.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"src\": \"{}\", \"dst\": \"{}\"}}",
            escape(&netlist.endpoint_name(w.src)),
            escape(&netlist.endpoint_name(w.dst))
        );
        out.push_str(if i + 1 < wires.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"collectors\": [\n");
    for (i, c) in netlist.collectors.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"instance\": \"{}\", \"event\": \"{}\", \"code\": \"{}\"}}",
            escape(&netlist.instance(c.inst).path),
            escape(netlist.name(c.event)),
            escape(&c.code)
        );
        out.push_str(if i + 1 < netlist.collectors.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::testutil::{add, ep};
    use crate::netlist::{Connection, Dir, InstanceKind, Userpoint};

    #[test]
    fn exports_valid_looking_json() {
        let mut n = Netlist::new();
        let a = add(
            &mut n,
            "a",
            "source",
            InstanceKind::Leaf {
                tar_file: "corelib/source.tar".into(),
            },
            None,
            &[("out", Dir::Out)],
        );
        let b = add(
            &mut n,
            "b",
            "sink",
            InstanceKind::Leaf {
                tar_file: "corelib/sink.tar".into(),
            },
            None,
            &[("in", Dir::In)],
        );
        let up_name = n.intern("p");
        n.instance_mut(a)
            .params
            .insert("start".into(), Datum::Int(3));
        n.instance_mut(a).ports[0].ty = Some(Ty::Int);
        n.instance_mut(a).ports[0].width = 1;
        n.instance_mut(a).userpoints.push(Userpoint {
            name: up_name,
            args: vec![],
            ret: Ty::Int,
            code: "return \"x\";".into(),
        });
        n.connections.push(Connection {
            src: ep(a, 0, 0),
            dst: ep(b, 0, 0),
        });
        let json = to_json(&n);
        assert!(json.contains("\"path\": \"a\""));
        assert!(json.contains("\"start\": 3"));
        assert!(json.contains("\"type\": \"int\""));
        assert!(json.contains("\"src\": \"a.out[0]\""));
        assert!(
            json.contains("return \\\"x\\\";"),
            "code must be escaped: {json}"
        );
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
        assert_eq!(datum_json(&Datum::Float(f64::NAN)), "null");
        assert_eq!(
            datum_json(&Datum::Struct(vec![("k".into(), Datum::Bool(true))])),
            "{\"k\":true}"
        );
    }

    #[test]
    fn empty_netlist_exports() {
        let json = to_json(&Netlist::new());
        assert!(json.contains("\"instances\": ["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
