//! Linking per-unit sub-netlists into one model netlist.
//!
//! Multi-file projects elaborate each source unit separately (so an edit
//! re-elaborates only the touched unit); the per-unit results are merged
//! here. Merging re-bases every unit-local table onto the combined
//! netlist — symbols re-interned, [`InstanceId`]s and [`TyVar`]s offset,
//! module metadata unioned, elaboration counters summed — and then
//! resolves the units' *deferred connections*: top-level `a.x -> b.y`
//! statements whose other end lives in a different unit and therefore
//! could not be recorded during that unit's elaboration.
//!
//! Resolution reproduces exactly what intra-unit elaboration would have
//! done: each endpoint gets the next free port-instance index (growing the
//! port's use-inferred width, §6.1), the connection is recorded, and the
//! two ports' type variables are equated (plus any annotation constraints,
//! §5). Cross-unit semantics is thus *separate compilation*: a module body
//! sees only its own unit's uses at elaboration time; widths induced by
//! other units appear at link time.
//!
//! Errors carry a [`SrcSpan`] (the connection statement) so the driver can
//! render them against the project's source map.

use std::collections::{HashMap, HashSet};

use lss_types::{Constraint, ConstraintOrigin, Scheme, TyVar};

use crate::intern::{PortId, Symbol};
use crate::netlist::{Connection, Dir, Endpoint, Instance, InstanceId, Netlist};
use crate::protocol::SrcSpan;

/// One side of a connection that crosses unit boundaries, kept textual
/// until link time.
#[derive(Debug, Clone, PartialEq)]
pub struct DeferredEndpoint {
    /// Full hierarchical instance path (`front.fetch` style).
    pub path: String,
    /// Port name on that instance.
    pub port: String,
}

impl std::fmt::Display for DeferredEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.path, self.port)
    }
}

/// A top-level connection recorded during per-unit elaboration whose
/// endpoints resolve only once every unit's instances exist.
#[derive(Debug, Clone, PartialEq)]
pub struct DeferredConnection {
    /// Data source.
    pub src: DeferredEndpoint,
    /// Data sink.
    pub dst: DeferredEndpoint,
    /// Connection type annotation, if written (`->` with `: scheme`).
    /// Variables are unit-local; [`link`] re-bases them.
    pub annot: Option<Scheme>,
    /// The connection statement's source span.
    pub span: SrcSpan,
}

/// One unit's elaboration result entering the link.
#[derive(Debug)]
pub struct LinkUnit {
    /// The unit's sub-netlist.
    pub netlist: Netlist,
    /// Cross-unit connections awaiting resolution. Their type-variable
    /// references (in `annot`) are local to `netlist`.
    pub deferred: Vec<DeferredConnection>,
}

/// Why linking failed. `span` (when present) points at the offending
/// deferred connection statement.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkError {
    /// Human-readable description.
    pub message: String,
    /// The source location to report, if one is known.
    pub span: Option<SrcSpan>,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for LinkError {}

fn remap_scheme(s: &Scheme, var_off: u32) -> Scheme {
    match s {
        Scheme::Int | Scheme::Bool | Scheme::Float | Scheme::String => s.clone(),
        Scheme::Array(t, n) => Scheme::Array(Box::new(remap_scheme(t, var_off)), *n),
        Scheme::Struct(fields) => Scheme::Struct(
            fields
                .iter()
                .map(|(name, t)| (name.clone(), remap_scheme(t, var_off)))
                .collect(),
        ),
        Scheme::Var(v) => Scheme::Var(TyVar(v.0 + var_off)),
        Scheme::Or(alts) => Scheme::Or(alts.iter().map(|a| remap_scheme(a, var_off)).collect()),
    }
}

/// Merges per-unit netlists and resolves their deferred connections.
///
/// Unit order is significant only for id assignment (instances keep their
/// relative order); the result is deterministic for a fixed unit order.
///
/// # Errors
///
/// * two units declare a top-level instance with the same path;
/// * a deferred endpoint names an unknown instance path, a non-top-level
///   instance, or an unknown port;
/// * a deferred connection's direction is illegal (source must be an
///   outport, sink an inport).
pub fn link(units: Vec<LinkUnit>) -> Result<Netlist, LinkError> {
    let mut merged = Netlist::new();
    let mut deferred = Vec::new();
    let mut top_paths: HashSet<String> = HashSet::new();

    for unit in units {
        let LinkUnit {
            netlist: n,
            deferred: unit_deferred,
        } = unit;
        let inst_off = merged.instances.len() as u32;
        let var_off = merged.vars.len() as u32;

        let sym_map: Vec<Symbol> = n
            .interner
            .iter()
            .map(|(_, name)| merged.interner.intern(name))
            .collect();
        for i in 0..n.vars.len() {
            let name = n.vars.name(TyVar(i as u32)).to_string();
            merged.vars.fresh(name);
        }

        for (sym, meta) in &n.modules {
            merged
                .modules
                .entry(sym_map[sym.index()])
                .or_insert_with(|| meta.clone());
        }
        merged.elab.explicit_type_instantiations += n.elab.explicit_type_instantiations;
        merged.elab.inferred_widths += n.elab.inferred_widths;
        merged.elab.defaulted_params += n.elab.defaulted_params;
        merged.elab.width_reads += n.elab.width_reads;

        for mut inst in n.instances {
            if inst.parent.is_none() && !top_paths.insert(inst.path.clone()) {
                return Err(LinkError {
                    message: format!(
                        "top-level instance `{}` is declared in more than one file",
                        inst.path
                    ),
                    span: None,
                });
            }
            rebase_instance(&mut inst, inst_off, var_off, &sym_map);
            merged.instances.push(inst);
        }
        for c in n.connections {
            merged.connections.push(Connection {
                src: rebase_endpoint(c.src, inst_off),
                dst: rebase_endpoint(c.dst, inst_off),
            });
        }
        for mut c in n.collectors {
            c.inst = InstanceId(c.inst.0 + inst_off);
            c.event = sym_map[c.event.index()];
            merged.collectors.push(c);
        }
        for c in n.constraints.iter() {
            merged.constraints.push(Constraint::with_origin(
                remap_scheme(&c.lhs, var_off),
                remap_scheme(&c.rhs, var_off),
                c.origin.clone(),
            ));
        }
        for d in unit_deferred {
            deferred.push(DeferredConnection {
                annot: d.annot.as_ref().map(|s| remap_scheme(s, var_off)),
                ..d
            });
        }
    }

    for d in &deferred {
        resolve_deferred(&mut merged, d)?;
    }
    Ok(merged)
}

fn rebase_instance(inst: &mut Instance, inst_off: u32, var_off: u32, sym_map: &[Symbol]) {
    inst.id = InstanceId(inst.id.0 + inst_off);
    inst.module = sym_map[inst.module.index()];
    inst.parent = inst.parent.map(|p| InstanceId(p.0 + inst_off));
    for p in &mut inst.ports {
        p.name = sym_map[p.name.index()];
        p.scheme = remap_scheme(&p.scheme, var_off);
        p.var = TyVar(p.var.0 + var_off);
    }
    for u in &mut inst.userpoints {
        u.name = sym_map[u.name.index()];
        for (arg, _) in &mut u.args {
            *arg = sym_map[arg.index()];
        }
    }
    for rv in &mut inst.runtime_vars {
        rv.name = sym_map[rv.name.index()];
    }
    for e in &mut inst.events {
        e.name = sym_map[e.name.index()];
    }
    // Protocol bindings address ports by per-instance `PortId` and carry
    // no symbols, so they rebase for free.
}

fn rebase_endpoint(e: Endpoint, inst_off: u32) -> Endpoint {
    Endpoint {
        inst: InstanceId(e.inst.0 + inst_off),
        ..e
    }
}

/// Resolves one textual endpoint: allocates the next port-instance index
/// (growing the width) and returns the endpoint plus the port's type
/// variable.
fn resolve_end(
    n: &mut Netlist,
    e: &DeferredEndpoint,
    want: Dir,
    span: SrcSpan,
) -> Result<(Endpoint, TyVar), LinkError> {
    let err = |message: String| LinkError {
        message,
        span: Some(span),
    };
    let inst_id = n.find(&e.path).map(|r| r.inst.id).ok_or_else(|| {
        err(format!(
            "no instance named `{}` in any project file",
            e.path
        ))
    })?;
    if n.instance(inst_id).parent.is_some() {
        return Err(err(format!(
            "`{}` is not a top-level instance; cross-file connections may only \
             reach top-level instances",
            e.path
        )));
    }
    let port_sym = n.interner.get(&e.port);
    let inst = n.instance_mut(inst_id);
    let pos = port_sym
        .and_then(|sym| inst.ports.iter().position(|p| p.name == sym))
        .ok_or_else(|| err(format!("`{}` has no port named `{}`", e.path, e.port)))?;
    let port = &mut inst.ports[pos];
    if port.dir != want {
        let (have, need) = match want {
            Dir::Out => ("an inport", "the data source"),
            Dir::In => ("an outport", "the data sink"),
        };
        return Err(err(format!(
            "`{}` is {have} and cannot be {need} of a cross-file connection",
            e
        )));
    }
    let index = port.width;
    port.width += 1;
    let var = port.var;
    Ok((
        Endpoint {
            inst: inst_id,
            port: PortId(pos as u32),
            index,
        },
        var,
    ))
}

fn resolve_deferred(n: &mut Netlist, d: &DeferredConnection) -> Result<(), LinkError> {
    let (src, src_var) = resolve_end(n, &d.src, Dir::Out, d.span)?;
    let (dst, dst_var) = resolve_end(n, &d.dst, Dir::In, d.span)?;
    n.connections.push(Connection { src, dst });
    let src_name = d.src.to_string();
    let dst_name = d.dst.to_string();
    n.constraints.push(Constraint::with_origin(
        Scheme::Var(src_var),
        Scheme::Var(dst_var),
        ConstraintOrigin::Connection {
            src: src_name.clone(),
            dst: dst_name.clone(),
        },
    ));
    if let Some(scheme) = &d.annot {
        n.constraints.push(Constraint::with_origin(
            Scheme::Var(src_var),
            scheme.clone(),
            ConstraintOrigin::Annotation { target: src_name },
        ));
        n.constraints.push(Constraint::with_origin(
            Scheme::Var(dst_var),
            scheme.clone(),
            ConstraintOrigin::Annotation { target: dst_name },
        ));
        n.elab.explicit_type_instantiations += 1;
        for (end, _) in [(src, ()), (dst, ())] {
            let inst = n.instance_mut(end.inst);
            inst.ports[end.port.index()].explicit = true;
        }
    }
    Ok(())
}

/// Convenience used by generators/tests: counts the deferred endpoints per
/// referenced path (useful for asserting a project's cross-file fan-out).
pub fn deferred_fanout(deferred: &[DeferredConnection]) -> HashMap<String, usize> {
    let mut map = HashMap::new();
    for d in deferred {
        *map.entry(d.src.path.clone()).or_insert(0) += 1;
        *map.entry(d.dst.path.clone()).or_insert(0) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::testutil::add;
    use crate::netlist::InstanceKind;

    fn unit_with(path: &str, port: &str, dir: Dir) -> Netlist {
        let mut n = Netlist::new();
        add(
            &mut n,
            path,
            "m",
            InstanceKind::Leaf {
                tar_file: "t".into(),
            },
            None,
            &[(port, dir)],
        );
        n
    }

    fn dc(src: &str, sport: &str, dst: &str, dport: &str) -> DeferredConnection {
        DeferredConnection {
            src: DeferredEndpoint {
                path: src.into(),
                port: sport.into(),
            },
            dst: DeferredEndpoint {
                path: dst.into(),
                port: dport.into(),
            },
            annot: None,
            span: SrcSpan {
                file: 0,
                start: 0,
                end: 0,
            },
        }
    }

    #[test]
    fn merges_disjoint_units_and_resolves_cross_links() {
        let a = unit_with("a", "out", Dir::Out);
        let b = unit_with("b", "in", Dir::In);
        let merged = link(vec![
            LinkUnit {
                netlist: a,
                deferred: vec![dc("a", "out", "b", "in")],
            },
            LinkUnit {
                netlist: b,
                deferred: vec![],
            },
        ])
        .expect("links");
        assert_eq!(merged.instances.len(), 2);
        assert_eq!(merged.connections.len(), 1);
        let c = merged.connections[0];
        assert_eq!(merged.endpoint_name(c.src), "a.out[0]");
        assert_eq!(merged.endpoint_name(c.dst), "b.in[0]");
        // The link grew both widths and equated the port vars.
        assert_eq!(merged.instances[0].ports[0].width, 1);
        assert_eq!(merged.instances[1].ports[0].width, 1);
        assert_eq!(merged.constraints.len(), 1);
    }

    #[test]
    fn rebases_ids_vars_and_symbols() {
        let mut a = unit_with("a", "out", Dir::Out);
        // Give unit A an extra interned name so B's symbols shift.
        a.intern("only_in_a");
        let b = unit_with("b", "in", Dir::In);
        let b_var = b.instances[0].ports[0].var;
        let merged = link(vec![
            LinkUnit {
                netlist: a,
                deferred: vec![],
            },
            LinkUnit {
                netlist: b,
                deferred: vec![],
            },
        ])
        .expect("links");
        let bi = &merged.instances[1];
        assert_eq!(bi.id, InstanceId(1));
        assert_eq!(merged.interner.resolve(bi.ports[0].name), "in");
        assert_ne!(bi.ports[0].var, b_var, "type vars must be offset");
        assert_eq!(
            merged.vars.name(bi.ports[0].var),
            "b.in",
            "offset var keeps its name"
        );
    }

    #[test]
    fn duplicate_top_level_paths_are_link_errors() {
        let a = unit_with("x", "out", Dir::Out);
        let b = unit_with("x", "in", Dir::In);
        let err = link(vec![
            LinkUnit {
                netlist: a,
                deferred: vec![],
            },
            LinkUnit {
                netlist: b,
                deferred: vec![],
            },
        ])
        .unwrap_err();
        assert!(err.message.contains("more than one file"), "{err}");
    }

    #[test]
    fn unknown_paths_ports_and_directions_are_errors() {
        let mk = || {
            vec![
                LinkUnit {
                    netlist: unit_with("a", "out", Dir::Out),
                    deferred: vec![],
                },
                LinkUnit {
                    netlist: unit_with("b", "in", Dir::In),
                    deferred: vec![],
                },
            ]
        };
        let mut units = mk();
        units[0].deferred.push(dc("ghost", "out", "b", "in"));
        let err = link(units).unwrap_err();
        assert!(err.message.contains("no instance named `ghost`"), "{err}");
        assert!(err.span.is_some());

        let mut units = mk();
        units[0].deferred.push(dc("a", "ghost", "b", "in"));
        let err = link(units).unwrap_err();
        assert!(err.message.contains("no port named `ghost`"), "{err}");

        let mut units = mk();
        units[0].deferred.push(dc("b", "in", "a", "out"));
        let err = link(units).unwrap_err();
        assert!(err.message.contains("inport"), "{err}");
    }

    #[test]
    fn annotations_add_constraints_and_mark_ports_explicit() {
        let mut d = dc("a", "out", "b", "in");
        d.annot = Some(Scheme::Int);
        let merged = link(vec![
            LinkUnit {
                netlist: unit_with("a", "out", Dir::Out),
                deferred: vec![d],
            },
            LinkUnit {
                netlist: unit_with("b", "in", Dir::In),
                deferred: vec![],
            },
        ])
        .expect("links");
        assert_eq!(merged.constraints.len(), 3);
        assert!(merged.instances.iter().all(|i| i.ports[0].explicit));
        assert_eq!(merged.elab.explicit_type_instantiations, 1);
    }

    #[test]
    fn repeated_cross_links_grow_widths_with_fresh_indices() {
        let merged = link(vec![
            LinkUnit {
                netlist: unit_with("a", "out", Dir::Out),
                deferred: vec![dc("a", "out", "b", "in"), dc("a", "out", "b", "in")],
            },
            LinkUnit {
                netlist: unit_with("b", "in", Dir::In),
                deferred: vec![],
            },
        ])
        .expect("links");
        assert_eq!(merged.instances[0].ports[0].width, 2);
        let idx: Vec<u32> = merged.connections.iter().map(|c| c.src.index).collect();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn fanout_counts_both_sides() {
        let d = vec![dc("a", "out", "b", "in"), dc("a", "out", "c", "in")];
        let f = deferred_fanout(&d);
        assert_eq!(f["a"], 2);
        assert_eq!(f["b"], 1);
    }
}
