//! Elaborated netlist IR for LSS models.
//!
//! Executing an LSS specification (see `lss-interp`) produces a
//! [`Netlist`]: instances, ports with use-inferred widths, point-to-point
//! connections, resolved parameters, userpoints, events, and collectors.
//! This crate also provides:
//!
//! * [`Netlist::flatten`] — resolution of hierarchical pass-through ports
//!   into direct leaf-to-leaf [`Wire`]s for the simulator;
//! * [`stats`] — the reuse metrics behind the paper's Table 2;
//! * [`lint`] — advisory static model checks (unconnected inputs, dangling
//!   hierarchical ports, suspicious width mismatches);
//! * [`json`] — complete JSON serialization ([`to_json`] / [`from_json`]
//!   round-trip) for the driver's netlist cache and external tooling;
//! * [`dump`] — ASCII-tree and GraphViz renderings.
//!
//! # Example
//!
//! ```
//! use lss_netlist::Netlist;
//!
//! let netlist = Netlist::new();
//! let stats = lss_netlist::reuse_stats(&netlist);
//! assert_eq!(stats.instances, 0);
//! ```

#![warn(missing_docs)]

pub mod binary;
pub mod dump;
pub mod intern;
pub mod json;
pub mod jsonval;
pub mod kernel;
pub mod link;
pub mod lint;
pub mod netlist;
pub mod protocol;
pub mod stats;

pub use binary::{from_binary, to_binary, BIN_FORMAT};
pub use intern::{CollectorId, EventId, Interner, PortId, RtvId, SlotId, Symbol, UserpointId};
pub use json::{from_json, from_value, to_json, JSON_FORMAT};
pub use jsonval::{parse_json, JsonValue};
pub use kernel::{KernelAluOp, KernelClass};
pub use link::{link, DeferredConnection, DeferredEndpoint, LinkError, LinkUnit};
pub use lint::{
    check_dangling_hierarchical, check_isolated, check_unbound_collectors, check_unconnected,
    check_width_mismatch, lint, Lint, LintKind,
};
pub use netlist::{
    Collector, Connection, Dir, ElabStats, Endpoint, EventDecl, InstRef, Instance, InstanceId,
    InstanceKind, ModuleMeta, Netlist, Port, RuntimeVar, Userpoint, Wire,
};
pub use protocol::{ActionDir, Automaton, ProtocolBinding, Role, SrcSpan, Template, Transition};
pub use stats::{format_row, header, reuse_stats, total, ReuseStats};
