//! A minimal JSON reader for the netlist serialization and the driver's
//! on-disk cache envelopes. Hand-rolled for the same reason the writer in
//! [`crate::json`] is: the documents are small, the schema is ours, and a
//! serializer dependency is not warranted (DESIGN.md §6).
//!
//! Objects preserve key order (they are stored as `Vec<(String, JsonValue)>`),
//! which is what lets `from_json(to_json(n))` re-emit byte-identical output.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without `.`, `e`, or `E` — kept exact as an `i64`.
    Int(i64),
    /// A number with a fractional or exponent part.
    Float(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members, if it is one.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(v) => write!(f, "{v}"),
            JsonValue::Float(v) => write!(f, "{v}"),
            JsonValue::Str(s) => write!(f, "{s:?}"),
            JsonValue::Array(_) => write!(f, "<array>"),
            JsonValue::Object(_) => write!(f, "<object>"),
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", JsonValue::Null),
            Some(b't') => self.eat_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_keyword("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            // Decode surrogate pairs; lone surrogates error.
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if !self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| "bad surrogate pair".to_string())?
                            } else {
                                char::from_u32(hi).ok_or_else(|| "bad \\u escape".to_string())?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| format!("bad UTF-8 at byte {}", self.pos))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    /// Reads the 4 hex digits after `\u`, leaving `pos` on the last digit.
    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let digits = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end - 1;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if fractional {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| format!("bad number `{text}`"))
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|_| format!("bad number `{text}`"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse_json(r#"{"a": 1, "b": -2.5, "c": [true, false, null], "d": {"k": "v"}}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(-2.5));
        let c = v.get("c").unwrap().as_array().unwrap();
        assert_eq!(c[0].as_bool(), Some(true));
        assert!(c[2].is_null());
        assert_eq!(v.get("d").unwrap().get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn integers_are_exact() {
        let v = parse_json("9007199254740993").unwrap();
        assert_eq!(v.as_i64(), Some(9007199254740993)); // > 2^53
        assert_eq!(parse_json("3").unwrap(), JsonValue::Int(3));
        assert_eq!(parse_json("3.0").unwrap(), JsonValue::Float(3.0));
        assert_eq!(parse_json("1e2").unwrap(), JsonValue::Float(100.0));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse_json(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let pair = parse_json(r#""😀""#).unwrap();
        assert_eq!(pair.as_str(), Some("😀"));
    }

    #[test]
    fn preserves_object_key_order() {
        let v = parse_json(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("nul").is_err());
        assert!(parse_json("\"abc").is_err());
        assert!(parse_json("{} junk").is_err());
        assert!(parse_json("1.2.3").is_err());
    }
}
