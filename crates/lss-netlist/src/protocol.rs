//! Port-protocol contracts carried on elaborated instances.
//!
//! A [`ProtocolBinding`] attaches a small interface automaton to a named
//! group of ports on one instance: the first port is the group's *primary*
//! (data) channel and any further ports form the *reverse* channel (credit
//! return / ready). Bindings are produced by elaborating `protocol`
//! annotations (see `lss-interp`), survive the netlist JSON format, and are
//! consumed by the `lss-analyze` composition checker and the `lss-sim`
//! runtime monitor.
//!
//! The types here are intentionally string-based (no [`crate::intern`]
//! coupling): bindings are sparse — a handful per annotated instance — and
//! are read at boundaries (diagnostics, JSON) where strings are needed
//! anyway.

use std::fmt;

use crate::intern::PortId;

/// Which side of a connection a binding describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The group drives data into the connection.
    Producer,
    /// The group accepts data from the connection.
    Consumer,
}

impl Role {
    /// Lowercase keyword form (`producer` / `consumer`).
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Producer => "producer",
            Role::Consumer => "consumer",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether the declaring side sends or receives a transition's action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionDir {
    /// The declaring side emits the action (`send` / `!`).
    Send,
    /// The declaring side consumes the action (`recv` / `?`).
    Recv,
}

impl ActionDir {
    /// The `!` / `?` prefix used in diagnostics.
    pub fn sigil(self) -> char {
        match self {
            ActionDir::Send => '!',
            ActionDir::Recv => '?',
        }
    }
}

/// One transition of an explicit automaton. States are indices into
/// [`Automaton::states`]; state 0 is initial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state index.
    pub from: u32,
    /// Destination state index.
    pub to: u32,
    /// Send or receive.
    pub dir: ActionDir,
    /// The named action carried on the channel.
    pub action: String,
}

/// The protocol template a binding was declared with.
///
/// Built-in templates expand to fixed automata over a canonical action
/// vocabulary (`item`/`credit` for credit flow control, `valid`/`ready`
/// for handshakes, `req`/`resp` for request-response); `Custom` names a
/// user-declared `protocol { .. }` automaton whose states and transitions
/// are stored verbatim in the owning [`Automaton`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Template {
    /// One item per ready handshake (`valid`/`ready` actions).
    ValidReady,
    /// Credit-based flow control: `None` is adaptive (the credit count is
    /// taken from the peer, or unbounded when the reverse channel is
    /// unwired), `Some(n)` declares a concrete count.
    Credit(Option<u32>),
    /// Strictly alternating request/response (`req`/`resp` actions).
    ReqResp,
    /// A named user-declared automaton.
    Custom(String),
}

impl Template {
    /// Human-readable template name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Template::ValidReady => "valid_ready".into(),
            Template::Credit(None) => "credit".into(),
            Template::Credit(Some(n)) => format!("credit({n})"),
            Template::ReqResp => "req_resp".into(),
            Template::Custom(name) => name.clone(),
        }
    }
}

/// A dependency-free source span mirror (`lss-netlist` does not depend on
/// `lss-ast`): file id plus byte offsets, exactly the fields of
/// `lss_ast::Span`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SrcSpan {
    /// File id in the driver's source map.
    pub file: u32,
    /// Starting byte offset.
    pub start: u32,
    /// Ending byte offset (exclusive).
    pub end: u32,
}

/// An explicit automaton: named states (index 0 initial) plus transitions.
/// Built-in templates leave `states` empty — their automata are expanded on
/// demand by the analyzer from [`Template`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Automaton {
    /// The declared template.
    pub template: Template,
    /// State names for `Custom` automata (first is initial); empty for
    /// built-in templates.
    pub states: Vec<String>,
    /// Transitions for `Custom` automata; empty for built-in templates.
    pub transitions: Vec<Transition>,
}

/// One protocol annotation bound to an instance's port group.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolBinding {
    /// Group name — the diagnostic label, unique per instance.
    pub group: String,
    /// Producer or consumer.
    pub role: Role,
    /// The declared automaton (template or custom).
    pub automaton: Automaton,
    /// Annotated ports on the owning instance; `ports[0]` is the primary
    /// (data) port, the rest form the reverse channel.
    pub ports: Vec<PortId>,
    /// Source span of the annotation (for diagnostics).
    pub span: SrcSpan,
}

impl ProtocolBinding {
    /// The primary (data) port of the group.
    pub fn primary(&self) -> PortId {
        self.ports[0]
    }

    /// The reverse-channel port, if the group declares one.
    pub fn reverse(&self) -> Option<PortId> {
        self.ports.get(1).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_describe() {
        assert_eq!(Template::ValidReady.describe(), "valid_ready");
        assert_eq!(Template::Credit(None).describe(), "credit");
        assert_eq!(Template::Credit(Some(8)).describe(), "credit(8)");
        assert_eq!(Template::ReqResp.describe(), "req_resp");
        assert_eq!(Template::Custom("loopy".into()).describe(), "loopy");
    }

    #[test]
    fn binding_port_accessors() {
        let b = ProtocolBinding {
            group: "ins".into(),
            role: Role::Consumer,
            automaton: Automaton {
                template: Template::Credit(Some(4)),
                states: Vec::new(),
                transitions: Vec::new(),
            },
            ports: vec![PortId(0), PortId(2)],
            span: SrcSpan::default(),
        };
        assert_eq!(b.primary(), PortId(0));
        assert_eq!(b.reverse(), Some(PortId(2)));
        assert_eq!(Role::Producer.to_string(), "producer");
        assert_eq!(ActionDir::Send.sigil(), '!');
        assert_eq!(ActionDir::Recv.sigil(), '?');
    }
}
