//! Compact binary serialization of the elaborated netlist (format 4).
//!
//! The document mirrors [`crate::json`]'s format-3 data model exactly —
//! interner symbols, type-variable names, elaboration counters, module
//! metadata, full instances, connections, collectors, and the constraint
//! set — but encodes it as length-prefixed binary sections instead of
//! JSON text: an interned-symbol table up front, dense ID arrays for
//! endpoints, LEB128 varints for lengths and indices, and raw IEEE-754
//! bits for floats (so NaN payloads survive without tagging tricks).
//!
//! [`to_binary`] is a pure function of the netlist, so
//! encode→decode→encode is byte-identical (the same invariant the JSON
//! round-trip suite pins). Decoding validates every cross-reference
//! (symbols, instance ids, port ids) before returning, mirroring the JSON
//! reader: a corrupt document yields `Err`, never a netlist that panics
//! later. This format backs the driver's on-disk cache (format 4 entries);
//! JSON remains for external tooling.

use std::collections::BTreeMap;

use lss_types::{Constraint, ConstraintOrigin, Datum, Scheme, Ty, TyVar};

use crate::intern::PortId;
use crate::netlist::{
    Collector, Connection, Dir, Endpoint, EventDecl, Instance, InstanceId, InstanceKind,
    ModuleMeta, Netlist, Port, RuntimeVar, Userpoint,
};
use crate::protocol::{ActionDir, Automaton, ProtocolBinding, Role, SrcSpan, Template, Transition};

/// The binary serialization format this module reads and writes.
///
/// Format 4 is the first binary netlist encoding; formats 1–3 were JSON
/// (see [`crate::json::JSON_FORMAT`]).
pub const BIN_FORMAT: u32 = 4;

/// The leading magic bytes of every binary netlist document.
pub const MAGIC: [u8; 4] = *b"LSSN";

// ---------------------------------------------------------------------------
// Primitive wire codec
// ---------------------------------------------------------------------------

/// An append-only byte buffer with the primitive encoders used by the
/// binary netlist format. Public so the driver's cache envelope and the
/// solver-partition memo files can share the exact wire conventions.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (for length back-patching by callers that
    /// build sections separately).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32` (fixed width; headers only).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a zigzag-encoded signed varint.
    pub fn put_i64(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends the raw IEEE-754 bits of `v` (NaN payloads preserved).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with a length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// A positional reader over a binary document; every accessor returns
/// `Err` on truncation instead of panicking.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, String> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| format!("truncated document at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated document at byte {}", self.pos))?;
        self.pos = end;
        Ok(u32::from_le_bytes([slice[0], slice[1], slice[2], slice[3]]))
    }

    /// Reads an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err("varint overflows 64 bits".to_string());
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a varint expected to fit a `u32`.
    pub fn get_varint_u32(&mut self) -> Result<u32, String> {
        u32::try_from(self.get_varint()?).map_err(|_| "varint does not fit u32".to_string())
    }

    /// Reads a varint length and sanity-caps it against the bytes left
    /// (an element needs at least one byte, so `len > remaining` is
    /// always corrupt and would otherwise trigger huge preallocations).
    pub fn get_len(&mut self) -> Result<usize, String> {
        let n = self.get_varint()?;
        let n = usize::try_from(n).map_err(|_| "length does not fit usize".to_string())?;
        if n > self.remaining() {
            return Err(format!(
                "declared length {n} exceeds {} remaining byte(s)",
                self.remaining()
            ));
        }
        Ok(n)
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn get_i64(&mut self) -> Result<i64, String> {
        let v = self.get_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads raw IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64, String> {
        let end = self.pos + 8;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated document at byte {}", self.pos))?;
        self.pos = end;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(slice);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, String> {
        let n = self.get_len()?;
        let end = self.pos + n;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        String::from_utf8(slice.to_vec()).map_err(|_| "string is not valid UTF-8".to_string())
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.get_len()?;
        let end = self.pos + n;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// True once every byte was consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

// ---------------------------------------------------------------------------
// Shared composite codecs (also used by the driver's partition memo)
// ---------------------------------------------------------------------------

/// Encodes a ground type.
pub fn write_ty(w: &mut Writer, ty: &Ty) {
    match ty {
        Ty::Int => w.put_u8(0),
        Ty::Bool => w.put_u8(1),
        Ty::Float => w.put_u8(2),
        Ty::String => w.put_u8(3),
        Ty::Array(t, n) => {
            w.put_u8(4);
            write_ty(w, t);
            w.put_varint(*n as u64);
        }
        Ty::Struct(fields) => {
            w.put_u8(5);
            w.put_varint(fields.len() as u64);
            for (name, t) in fields {
                w.put_str(name);
                write_ty(w, t);
            }
        }
    }
}

/// Decodes a ground type.
pub fn read_ty(r: &mut Reader<'_>) -> Result<Ty, String> {
    Ok(match r.get_u8()? {
        0 => Ty::Int,
        1 => Ty::Bool,
        2 => Ty::Float,
        3 => Ty::String,
        4 => {
            let t = read_ty(r)?;
            let n = r.get_varint()? as usize;
            Ty::Array(Box::new(t), n)
        }
        5 => {
            let n = r.get_len()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.get_str()?;
                fields.push((name, read_ty(r)?));
            }
            Ty::Struct(fields)
        }
        other => return Err(format!("unknown type tag {other}")),
    })
}

/// Encodes a type scheme.
pub fn write_scheme(w: &mut Writer, s: &Scheme) {
    match s {
        Scheme::Int => w.put_u8(0),
        Scheme::Bool => w.put_u8(1),
        Scheme::Float => w.put_u8(2),
        Scheme::String => w.put_u8(3),
        Scheme::Array(t, n) => {
            w.put_u8(4);
            write_scheme(w, t);
            w.put_varint(*n as u64);
        }
        Scheme::Struct(fields) => {
            w.put_u8(5);
            w.put_varint(fields.len() as u64);
            for (name, t) in fields {
                w.put_str(name);
                write_scheme(w, t);
            }
        }
        Scheme::Var(v) => {
            w.put_u8(6);
            w.put_varint(v.0 as u64);
        }
        Scheme::Or(alts) => {
            w.put_u8(7);
            w.put_varint(alts.len() as u64);
            for a in alts {
                write_scheme(w, a);
            }
        }
    }
}

/// Decodes a type scheme.
pub fn read_scheme(r: &mut Reader<'_>) -> Result<Scheme, String> {
    Ok(match r.get_u8()? {
        0 => Scheme::Int,
        1 => Scheme::Bool,
        2 => Scheme::Float,
        3 => Scheme::String,
        4 => {
            let t = read_scheme(r)?;
            let n = r.get_varint()? as usize;
            Scheme::Array(Box::new(t), n)
        }
        5 => {
            let n = r.get_len()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.get_str()?;
                fields.push((name, read_scheme(r)?));
            }
            Scheme::Struct(fields)
        }
        6 => Scheme::Var(TyVar(r.get_varint_u32()?)),
        7 => {
            let n = r.get_len()?;
            let mut alts = Vec::with_capacity(n);
            for _ in 0..n {
                alts.push(read_scheme(r)?);
            }
            Scheme::Or(alts)
        }
        other => return Err(format!("unknown scheme tag {other}")),
    })
}

/// Encodes a datum.
pub fn write_datum(w: &mut Writer, d: &Datum) {
    match d {
        Datum::Int(v) => {
            w.put_u8(0);
            w.put_i64(*v);
        }
        Datum::Bool(b) => {
            w.put_u8(1);
            w.put_u8(*b as u8);
        }
        Datum::Float(v) => {
            w.put_u8(2);
            w.put_f64(*v);
        }
        Datum::Str(s) => {
            w.put_u8(3);
            w.put_str(s);
        }
        Datum::Array(items) => {
            w.put_u8(4);
            w.put_varint(items.len() as u64);
            for item in items {
                write_datum(w, item);
            }
        }
        Datum::Struct(fields) => {
            w.put_u8(5);
            w.put_varint(fields.len() as u64);
            for (name, v) in fields {
                w.put_str(name);
                write_datum(w, v);
            }
        }
    }
}

/// Decodes a datum.
pub fn read_datum(r: &mut Reader<'_>) -> Result<Datum, String> {
    Ok(match r.get_u8()? {
        0 => Datum::Int(r.get_i64()?),
        1 => Datum::Bool(r.get_u8()? != 0),
        2 => Datum::Float(r.get_f64()?),
        3 => Datum::Str(r.get_str()?),
        4 => {
            let n = r.get_len()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_datum(r)?);
            }
            Datum::Array(items)
        }
        5 => {
            let n = r.get_len()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.get_str()?;
                fields.push((name, read_datum(r)?));
            }
            Datum::Struct(fields)
        }
        other => return Err(format!("unknown datum tag {other}")),
    })
}

fn write_endpoint(w: &mut Writer, e: Endpoint) {
    w.put_varint(e.inst.0 as u64);
    w.put_varint(e.port.0 as u64);
    w.put_varint(e.index as u64);
}

fn read_endpoint(r: &mut Reader<'_>) -> Result<Endpoint, String> {
    Ok(Endpoint {
        inst: InstanceId(r.get_varint_u32()?),
        port: PortId(r.get_varint_u32()?),
        index: r.get_varint_u32()?,
    })
}

fn write_origin(w: &mut Writer, o: &ConstraintOrigin) {
    match o {
        ConstraintOrigin::Connection { src, dst } => {
            w.put_u8(0);
            w.put_str(src);
            w.put_str(dst);
        }
        ConstraintOrigin::Annotation { target } => {
            w.put_u8(1);
            w.put_str(target);
        }
        ConstraintOrigin::PortDecl { port } => {
            w.put_u8(2);
            w.put_str(port);
        }
        ConstraintOrigin::Synthetic => w.put_u8(3),
    }
}

fn read_origin(r: &mut Reader<'_>) -> Result<ConstraintOrigin, String> {
    Ok(match r.get_u8()? {
        0 => ConstraintOrigin::Connection {
            src: r.get_str()?,
            dst: r.get_str()?,
        },
        1 => ConstraintOrigin::Annotation {
            target: r.get_str()?,
        },
        2 => ConstraintOrigin::PortDecl { port: r.get_str()? },
        3 => ConstraintOrigin::Synthetic,
        other => return Err(format!("unknown origin tag {other}")),
    })
}

fn write_protocol(w: &mut Writer, b: &ProtocolBinding) {
    w.put_str(&b.group);
    w.put_u8(match b.role {
        Role::Producer => 0,
        Role::Consumer => 1,
    });
    match &b.automaton.template {
        Template::ValidReady => w.put_u8(0),
        Template::Credit(None) => w.put_u8(1),
        Template::Credit(Some(n)) => {
            w.put_u8(2);
            w.put_varint(*n as u64);
        }
        Template::ReqResp => w.put_u8(3),
        Template::Custom(name) => {
            w.put_u8(4);
            w.put_str(name);
        }
    }
    w.put_varint(b.automaton.states.len() as u64);
    for s in &b.automaton.states {
        w.put_str(s);
    }
    w.put_varint(b.automaton.transitions.len() as u64);
    for t in &b.automaton.transitions {
        w.put_varint(t.from as u64);
        w.put_varint(t.to as u64);
        w.put_u8(match t.dir {
            ActionDir::Send => 0,
            ActionDir::Recv => 1,
        });
        w.put_str(&t.action);
    }
    w.put_varint(b.ports.len() as u64);
    for p in &b.ports {
        w.put_varint(p.0 as u64);
    }
    w.put_varint(b.span.file as u64);
    w.put_varint(b.span.start as u64);
    w.put_varint(b.span.end as u64);
}

fn read_protocol(r: &mut Reader<'_>) -> Result<ProtocolBinding, String> {
    let group = r.get_str()?;
    let role = match r.get_u8()? {
        0 => Role::Producer,
        1 => Role::Consumer,
        other => return Err(format!("unknown protocol role tag {other}")),
    };
    let template = match r.get_u8()? {
        0 => Template::ValidReady,
        1 => Template::Credit(None),
        2 => Template::Credit(Some(r.get_varint_u32()?)),
        3 => Template::ReqResp,
        4 => Template::Custom(r.get_str()?),
        other => return Err(format!("unknown protocol template tag {other}")),
    };
    let n_states = r.get_len()?;
    let mut states = Vec::with_capacity(n_states);
    for _ in 0..n_states {
        states.push(r.get_str()?);
    }
    let n_trans = r.get_len()?;
    let mut transitions = Vec::with_capacity(n_trans);
    for _ in 0..n_trans {
        transitions.push(Transition {
            from: r.get_varint_u32()?,
            to: r.get_varint_u32()?,
            dir: match r.get_u8()? {
                0 => ActionDir::Send,
                1 => ActionDir::Recv,
                other => return Err(format!("unknown transition dir tag {other}")),
            },
            action: r.get_str()?,
        });
    }
    let n_ports = r.get_len()?;
    let mut ports = Vec::with_capacity(n_ports);
    for _ in 0..n_ports {
        ports.push(PortId(r.get_varint_u32()?));
    }
    if ports.is_empty() {
        return Err("protocol binding has no ports".to_string());
    }
    let span = SrcSpan {
        file: r.get_varint_u32()?,
        start: r.get_varint_u32()?,
        end: r.get_varint_u32()?,
    };
    Ok(ProtocolBinding {
        group,
        role,
        automaton: Automaton {
            template,
            states,
            transitions,
        },
        ports,
        span,
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_instance(w: &mut Writer, n: &Netlist, inst: &Instance) {
    w.put_str(&inst.path);
    w.put_varint(inst.module.0 as u64);
    match &inst.kind {
        InstanceKind::Hierarchical => w.put_u8(0),
        InstanceKind::Leaf { tar_file } => {
            w.put_u8(1);
            w.put_str(tar_file);
        }
    }
    match inst.parent {
        None => w.put_u8(0),
        Some(p) => {
            w.put_u8(1);
            w.put_varint(p.0 as u64);
        }
    }
    w.put_u8(inst.from_library as u8);
    w.put_varint(inst.params.len() as u64);
    for (k, v) in &inst.params {
        w.put_str(k);
        write_datum(w, v);
    }
    w.put_varint(inst.ports.len() as u64);
    for p in &inst.ports {
        w.put_varint(p.name.0 as u64);
        w.put_u8(match p.dir {
            Dir::In => 0,
            Dir::Out => 1,
        });
        write_scheme(w, &p.scheme);
        w.put_varint(p.var.0 as u64);
        w.put_varint(p.width as u64);
        match &p.ty {
            None => w.put_u8(0),
            Some(t) => {
                w.put_u8(1);
                write_ty(w, t);
            }
        }
        w.put_u8(p.explicit as u8);
    }
    w.put_varint(inst.userpoints.len() as u64);
    for u in &inst.userpoints {
        w.put_varint(u.name.0 as u64);
        w.put_varint(u.args.len() as u64);
        for (name, ty) in &u.args {
            w.put_varint(name.0 as u64);
            write_ty(w, ty);
        }
        write_ty(w, &u.ret);
        w.put_str(&u.code);
    }
    w.put_varint(inst.runtime_vars.len() as u64);
    for rv in &inst.runtime_vars {
        w.put_varint(rv.name.0 as u64);
        write_ty(w, &rv.ty);
        write_datum(w, &rv.init);
    }
    w.put_varint(inst.events.len() as u64);
    for e in &inst.events {
        w.put_varint(e.name.0 as u64);
        w.put_varint(e.args.len() as u64);
        for a in &e.args {
            write_ty(w, a);
        }
    }
    w.put_varint(inst.protocols.len() as u64);
    for b in &inst.protocols {
        write_protocol(w, b);
    }
    let _ = n; // symbols are written as dense ids; the table is up front
}

/// Serializes the netlist to a complete binary document (format 4).
pub fn to_binary(netlist: &Netlist) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&MAGIC);
    w.put_u32(BIN_FORMAT);

    // Symbol table.
    w.put_varint(netlist.interner.len() as u64);
    for (_, name) in netlist.interner.iter() {
        w.put_str(name);
    }
    // Type-variable names.
    w.put_varint(netlist.vars.len() as u64);
    for i in 0..netlist.vars.len() {
        w.put_str(netlist.vars.name(TyVar(i as u32)));
    }
    // Elaboration counters.
    let e = &netlist.elab;
    w.put_varint(e.explicit_type_instantiations as u64);
    w.put_varint(e.inferred_widths as u64);
    w.put_varint(e.defaulted_params as u64);
    w.put_varint(e.width_reads as u64);
    // Module metadata (BTreeMap order: sorted by symbol id).
    w.put_varint(netlist.modules.len() as u64);
    for (sym, meta) in &netlist.modules {
        w.put_varint(sym.0 as u64);
        w.put_u8(meta.hierarchical as u8);
        w.put_u8(meta.from_library as u8);
        w.put_u8(meta.trivial as u8);
    }
    // Instances.
    w.put_varint(netlist.instances.len() as u64);
    for inst in &netlist.instances {
        write_instance(&mut w, netlist, inst);
    }
    // Connections (dense endpoint triples).
    w.put_varint(netlist.connections.len() as u64);
    for c in &netlist.connections {
        write_endpoint(&mut w, c.src);
        write_endpoint(&mut w, c.dst);
    }
    // Collectors.
    w.put_varint(netlist.collectors.len() as u64);
    for c in &netlist.collectors {
        w.put_varint(c.inst.0 as u64);
        w.put_varint(c.event.0 as u64);
        w.put_str(&c.code);
    }
    // Constraints.
    w.put_varint(netlist.constraints.len() as u64);
    for c in netlist.constraints.iter() {
        write_scheme(&mut w, &c.lhs);
        write_scheme(&mut w, &c.rhs);
        write_origin(&mut w, &c.origin);
    }
    w.finish()
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

fn read_instance(r: &mut Reader<'_>, id: u32, n_symbols: usize) -> Result<Instance, String> {
    let sym = |r: &mut Reader<'_>| -> Result<crate::intern::Symbol, String> {
        let v = r.get_varint_u32()?;
        if (v as usize) >= n_symbols {
            return Err(format!("symbol id {v} out of range ({n_symbols} symbols)"));
        }
        Ok(crate::intern::Symbol(v))
    };
    let path = r.get_str()?;
    let module = sym(r)?;
    let kind = match r.get_u8()? {
        0 => InstanceKind::Hierarchical,
        1 => InstanceKind::Leaf {
            tar_file: r.get_str()?,
        },
        other => return Err(format!("unknown instance kind tag {other}")),
    };
    let parent = match r.get_u8()? {
        0 => None,
        1 => Some(InstanceId(r.get_varint_u32()?)),
        other => return Err(format!("unknown parent tag {other}")),
    };
    let from_library = r.get_u8()? != 0;
    let n_params = r.get_len()?;
    let mut params = BTreeMap::new();
    for _ in 0..n_params {
        let k = r.get_str()?;
        params.insert(k, read_datum(r)?);
    }
    let n_ports = r.get_len()?;
    let mut ports = Vec::with_capacity(n_ports);
    for _ in 0..n_ports {
        let name = sym(r)?;
        let dir = match r.get_u8()? {
            0 => Dir::In,
            1 => Dir::Out,
            other => return Err(format!("unknown port dir tag {other}")),
        };
        let scheme = read_scheme(r)?;
        let var = TyVar(r.get_varint_u32()?);
        let width = r.get_varint_u32()?;
        let ty = match r.get_u8()? {
            0 => None,
            1 => Some(read_ty(r)?),
            other => return Err(format!("unknown port type tag {other}")),
        };
        let explicit = r.get_u8()? != 0;
        ports.push(Port {
            name,
            dir,
            scheme,
            var,
            width,
            ty,
            explicit,
        });
    }
    let n_ups = r.get_len()?;
    let mut userpoints = Vec::with_capacity(n_ups);
    for _ in 0..n_ups {
        let name = sym(r)?;
        let n_args = r.get_len()?;
        let mut args = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            let a = sym(r)?;
            args.push((a, read_ty(r)?));
        }
        let ret = read_ty(r)?;
        let code = r.get_str()?;
        userpoints.push(Userpoint {
            name,
            args,
            ret,
            code,
        });
    }
    let n_rtvs = r.get_len()?;
    let mut runtime_vars = Vec::with_capacity(n_rtvs);
    for _ in 0..n_rtvs {
        let name = sym(r)?;
        let ty = read_ty(r)?;
        let init = read_datum(r)?;
        runtime_vars.push(RuntimeVar { name, ty, init });
    }
    let n_events = r.get_len()?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let name = sym(r)?;
        let n_args = r.get_len()?;
        let mut args = Vec::with_capacity(n_args);
        for _ in 0..n_args {
            args.push(read_ty(r)?);
        }
        events.push(EventDecl { name, args });
    }
    let n_protos = r.get_len()?;
    let mut protocols = Vec::with_capacity(n_protos);
    for _ in 0..n_protos {
        protocols.push(read_protocol(r)?);
    }
    Ok(Instance {
        id: InstanceId(id),
        path,
        module,
        kind,
        parent,
        from_library,
        params,
        ports,
        userpoints,
        runtime_vars,
        events,
        protocols,
    })
}

/// Rebuilds a [`Netlist`] from a format-4 binary document.
///
/// # Errors
///
/// Returns a message describing the first truncation, tag mismatch, or
/// unresolvable reference. Callers treating the input as a cache entry
/// must fall back to a clean rebuild on error.
pub fn from_binary(bytes: &[u8]) -> Result<Netlist, String> {
    let mut r = Reader::new(bytes);
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.get_u8()?;
    }
    if magic != MAGIC {
        return Err("not a binary netlist document (bad magic)".to_string());
    }
    let format = r.get_u32()?;
    if format != BIN_FORMAT {
        return Err(format!(
            "unsupported netlist format {format} (expected {BIN_FORMAT})"
        ));
    }
    let mut n = Netlist::new();
    let n_syms = r.get_len()?;
    for _ in 0..n_syms {
        let s = r.get_str()?;
        n.interner.intern(&s);
    }
    if n.interner.len() != n_syms {
        return Err("symbol table contains duplicate entries".to_string());
    }
    let n_vars = r.get_len()?;
    for _ in 0..n_vars {
        let name = r.get_str()?;
        n.vars.fresh(name);
    }
    n.elab = crate::netlist::ElabStats {
        explicit_type_instantiations: r.get_varint_u32()?,
        inferred_widths: r.get_varint_u32()?,
        defaulted_params: r.get_varint_u32()?,
        width_reads: r.get_varint_u32()?,
    };
    let n_modules = r.get_len()?;
    for _ in 0..n_modules {
        let sym = r.get_varint_u32()?;
        if (sym as usize) >= n_syms {
            return Err(format!("module symbol id {sym} out of range"));
        }
        let meta = ModuleMeta {
            hierarchical: r.get_u8()? != 0,
            from_library: r.get_u8()? != 0,
            trivial: r.get_u8()? != 0,
        };
        n.modules.insert(crate::intern::Symbol(sym), meta);
    }
    let n_insts = r.get_len()?;
    for i in 0..n_insts {
        let inst = read_instance(&mut r, i as u32, n_syms)?;
        if let Some(p) = inst.parent {
            if p.index() >= n_insts {
                return Err(format!("instance `{}` has out-of-range parent", inst.path));
            }
        }
        n.instances.push(inst);
    }
    let n_conns = r.get_len()?;
    for _ in 0..n_conns {
        let src = read_endpoint(&mut r)?;
        let dst = read_endpoint(&mut r)?;
        n.connections.push(Connection { src, dst });
    }
    // Validate endpoint references so a corrupt document cannot produce a
    // netlist that panics later (mirrors the JSON reader).
    for c in &n.connections {
        for e in [c.src, c.dst] {
            let inst = n
                .instances
                .get(e.inst.index())
                .ok_or_else(|| format!("connection references unknown instance {}", e.inst))?;
            if inst.ports.get(e.port.index()).is_none() {
                return Err(format!(
                    "connection references unknown port {} on `{}`",
                    e.port, inst.path
                ));
            }
        }
    }
    let n_colls = r.get_len()?;
    for _ in 0..n_colls {
        let inst = InstanceId(r.get_varint_u32()?);
        if inst.index() >= n.instances.len() {
            return Err(format!("collector references unknown instance {inst}"));
        }
        let event = r.get_varint_u32()?;
        if (event as usize) >= n_syms {
            return Err(format!("collector event symbol {event} out of range"));
        }
        let code = r.get_str()?;
        n.collectors.push(Collector {
            inst,
            event: crate::intern::Symbol(event),
            code,
        });
    }
    let n_cons = r.get_len()?;
    for _ in 0..n_cons {
        let lhs = read_scheme(&mut r)?;
        let rhs = read_scheme(&mut r)?;
        let origin = read_origin(&mut r)?;
        n.constraints
            .push(Constraint::with_origin(lhs, rhs, origin));
    }
    if !r.at_end() {
        return Err(format!("{} trailing byte(s) after document", r.remaining()));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{from_json, to_json};
    use crate::netlist::testutil::{add, ep};

    fn sample() -> Netlist {
        let mut n = Netlist::new();
        let a = add(
            &mut n,
            "a",
            "source",
            InstanceKind::Leaf {
                tar_file: "corelib/source.tar".into(),
            },
            None,
            &[("out", Dir::Out)],
        );
        let b = add(
            &mut n,
            "b",
            "sink",
            InstanceKind::Leaf {
                tar_file: "corelib/sink.tar".into(),
            },
            None,
            &[("in", Dir::In)],
        );
        let up_name = n.intern("p");
        n.instance_mut(a)
            .params
            .insert("start".into(), Datum::Int(3));
        n.instance_mut(a)
            .params
            .insert("nan".into(), Datum::Float(f64::NAN));
        n.instance_mut(a).ports[0].ty = Some(Ty::Int);
        n.instance_mut(a).ports[0].width = 1;
        n.instance_mut(a).userpoints.push(Userpoint {
            name: up_name,
            args: vec![],
            ret: Ty::Int,
            code: "return \"x\";".into(),
        });
        n.connections.push(Connection {
            src: ep(a, 0, 0),
            dst: ep(b, 0, 0),
        });
        n.constraints.push(Constraint::with_origin(
            Scheme::Var(TyVar(0)),
            Scheme::Or(vec![Scheme::Int, Scheme::Float]),
            ConstraintOrigin::Connection {
                src: "a.out".into(),
                dst: "b.in".into(),
            },
        ));
        n.instances[0].protocols.push(ProtocolBinding {
            group: "outs".into(),
            role: Role::Producer,
            automaton: Automaton {
                template: Template::Custom("loopy".into()),
                states: vec!["idle".into(), "busy".into()],
                transitions: vec![Transition {
                    from: 0,
                    to: 1,
                    dir: ActionDir::Recv,
                    action: "item".into(),
                }],
            },
            ports: vec![PortId(0)],
            span: SrcSpan {
                file: 1,
                start: 10,
                end: 42,
            },
        });
        n
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let n = sample();
        let bytes = to_binary(&n);
        let back = from_binary(&bytes).expect("round trip");
        let bytes2 = to_binary(&back);
        assert_eq!(bytes, bytes2, "second emission must be byte-identical");
        // And it agrees with the JSON model observationally.
        assert_eq!(to_json(&back), to_json(&n));
    }

    #[test]
    fn empty_netlist_round_trips() {
        let bytes = to_binary(&Netlist::new());
        let back = from_binary(&bytes).unwrap();
        assert_eq!(to_binary(&back), bytes);
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let n = sample();
        assert!(to_binary(&n).len() < to_json(&n).len());
    }

    #[test]
    fn agrees_with_json_reader() {
        // A netlist that passed through JSON equals one that passed
        // through binary (modulo NaN, compared via re-dump).
        let n = sample();
        let via_json = from_json(&to_json(&n)).unwrap();
        let via_bin = from_binary(&to_binary(&n)).unwrap();
        assert_eq!(to_json(&via_json), to_json(&via_bin));
    }

    #[test]
    fn corrupt_documents_are_rejected() {
        let n = sample();
        let bytes = to_binary(&n);
        // Truncation at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(from_binary(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(from_binary(&bad).is_err());
        // Wrong format version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(from_binary(&bad).is_err());
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(from_binary(&bad).is_err());
        // Random bit flips must error or round-trip; never panic.
        for i in (0..bytes.len()).step_by(7) {
            let mut fuzzed = bytes.clone();
            fuzzed[i] ^= 0x55;
            if let Ok(back) = from_binary(&fuzzed) {
                let _ = to_binary(&back);
            }
        }
    }
}
