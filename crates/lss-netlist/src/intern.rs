//! String interning and dense index types for the elaborated IR.
//!
//! Every recurring name in a netlist — module names, port names, runtime
//! variables, userpoints, events — is interned once at elaboration time
//! into a [`Symbol`] (a `u32` newtype). All IR comparisons and simulator
//! lookups then work on integers; strings are resolved back only at output
//! boundaries (dumps, JSON, diagnostics).
//!
//! The [`Interner`] is owned by the `Netlist` (no global state), so two
//! netlists can intern independently and a netlist clone carries its own
//! symbol table.
//!
//! Alongside `Symbol` this module defines the dense index newtypes used to
//! address IR and engine tables without hashing: [`PortId`], [`SlotId`],
//! [`EventId`], [`UserpointId`], [`CollectorId`], and [`RtvId`].

use std::collections::HashMap;
use std::fmt;

/// An interned string: an index into the owning netlist's [`Interner`].
///
/// Symbols from different interners must not be mixed; all symbols inside
/// one `Netlist` come from its own interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The symbol as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A bidirectional string ↔ [`Symbol`] table.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.map.get(name) {
            return Symbol(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), id);
        Symbol(id)
    }

    /// Looks up an already-interned name without adding it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied().map(Symbol)
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Symbol, name)` pairs in intern order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a table index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a table index.
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

dense_id!(
    /// Index of a port within its instance's `ports` vector.
    PortId,
    "port#"
);
dense_id!(
    /// Index of a value slot in the simulator's flat signal store.
    SlotId,
    "slot#"
);
dense_id!(
    /// Index of an event in a component's event table (declared events
    /// followed by implicit `<port>_fire` events).
    EventId,
    "event#"
);
dense_id!(
    /// Index of a userpoint within its instance's `userpoints` vector.
    UserpointId,
    "userpoint#"
);
dense_id!(
    /// Index of a collector in the netlist's `collectors` vector.
    CollectorId,
    "collector#"
);
dense_id!(
    /// Index of a runtime variable within its instance's `runtime_vars`.
    RtvId,
    "rtv#"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let x = i.intern("x");
        assert_eq!(i.get("x"), Some(x));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn clone_is_independent() {
        let mut i = Interner::new();
        i.intern("shared");
        let mut j = i.clone();
        let only_j = j.intern("later");
        assert_eq!(i.get("later"), None);
        assert_eq!(j.resolve(only_j), "later");
    }

    #[test]
    fn iter_is_in_intern_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let pairs: Vec<_> = i.iter().map(|(s, n)| (s.0, n.to_string())).collect();
        assert_eq!(pairs, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }

    #[test]
    fn dense_ids_roundtrip_indices() {
        assert_eq!(PortId::from_index(3).index(), 3);
        assert_eq!(EventId(7).to_string(), "event#7");
        assert_eq!(RtvId::from_index(0), RtvId(0));
    }
}
