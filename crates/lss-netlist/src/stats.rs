//! Reuse statistics extraction — the machinery behind the paper's Table 2.
//!
//! Each metric is computed from the elaborated netlist:
//!
//! * **instances** — total module instances elaborated;
//! * **hierarchical / leaf modules** — distinct module templates used, by
//!   kind; the parenthesized variant discounts *trivial* hierarchical
//!   modules (parameterless wrappers);
//! * **instances per module** — reuse factor;
//! * **% instances from library** — fraction of instances whose module came
//!   from the shared component library;
//! * **explicit type instantiations w/o inference** — how many explicit
//!   type instantiations a user *would* have needed without the inference
//!   engine: one per distinct type variable per instance, plus one per
//!   variable-free disjunctive (overloaded) port;
//! * **explicit type instantiations w/ inference** — annotations actually
//!   present in the sources (counted during elaboration);
//! * **inferred port widths** — ports whose implicit `width` parameter was
//!   set by counting connections (use-based specialization);
//! * **connections** — total recorded connections.

use std::collections::BTreeSet;

use crate::netlist::Netlist;

/// Table 2 metrics for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseStats {
    /// Total module instances.
    pub instances: usize,
    /// Distinct hierarchical module templates used.
    pub hierarchical_modules: usize,
    /// Hierarchical templates discounting trivial wrappers.
    pub hierarchical_modules_nontrivial: usize,
    /// Distinct leaf module templates used.
    pub leaf_modules: usize,
    /// Instances per module (reuse factor).
    pub instances_per_module: f64,
    /// Reuse factor discounting trivial wrappers.
    pub instances_per_module_nontrivial: f64,
    /// Fraction of instances from the shared library, in percent.
    pub pct_instances_from_library: f64,
    /// Distinct library modules used.
    pub modules_from_library: usize,
    /// Explicit type instantiations a user would need without inference.
    pub explicit_types_without_inference: usize,
    /// Explicit type instantiations actually written (with inference).
    pub explicit_types_with_inference: usize,
    /// Port widths inferred by use-based specialization.
    pub inferred_port_widths: usize,
    /// Total connections.
    pub connections: usize,
}

impl ReuseStats {
    /// Percent reduction in explicit type instantiations thanks to
    /// inference (the paper reports 66% across all models).
    pub fn type_instantiation_reduction_pct(&self) -> f64 {
        if self.explicit_types_without_inference == 0 {
            return 0.0;
        }
        100.0
            * (1.0
                - self.explicit_types_with_inference as f64
                    / self.explicit_types_without_inference as f64)
    }
}

/// Computes reuse statistics for a netlist.
pub fn reuse_stats(netlist: &Netlist) -> ReuseStats {
    let instances = netlist.instances.len();

    let mut hier = BTreeSet::new();
    let mut hier_trivial = BTreeSet::new();
    let mut leaf = BTreeSet::new();
    let mut library = BTreeSet::new();
    let mut from_library_count = 0usize;
    for inst in &netlist.instances {
        let meta = netlist.modules.get(&inst.module);
        if inst.is_leaf() {
            leaf.insert(inst.module);
        } else {
            hier.insert(inst.module);
            if meta.map(|m| m.trivial).unwrap_or(false) {
                hier_trivial.insert(inst.module);
            }
        }
        if inst.from_library {
            from_library_count += 1;
            library.insert(inst.module);
        }
    }

    let module_count = hier.len() + leaf.len();
    let module_count_nontrivial = module_count - hier_trivial.len();
    let instances_per_module = if module_count == 0 {
        0.0
    } else {
        instances as f64 / module_count as f64
    };
    // For the discounted figure the paper also discounts the *instances* of
    // trivial wrappers.
    let nontrivial_instances = netlist
        .instances
        .iter()
        .filter(|i| {
            !netlist
                .modules
                .get(&i.module)
                .map(|m| m.trivial && m.hierarchical)
                .unwrap_or(false)
        })
        .count();
    let instances_per_module_nontrivial = if module_count_nontrivial == 0 {
        0.0
    } else {
        nontrivial_instances as f64 / module_count_nontrivial as f64
    };

    // Explicit instantiations without inference: per instance, one per
    // distinct port type variable plus one per ground disjunctive port.
    let mut without_inference = 0usize;
    for inst in &netlist.instances {
        let mut vars_seen = BTreeSet::new();
        for port in &inst.ports {
            let vars = port.scheme.vars();
            if vars.is_empty() {
                if port.scheme.has_disjunction() {
                    without_inference += 1;
                }
            } else {
                for v in vars {
                    vars_seen.insert(v);
                }
            }
        }
        without_inference += vars_seen.len();
    }

    let inferred_port_widths = netlist
        .instances
        .iter()
        .flat_map(|i| i.ports.iter())
        .filter(|p| p.width > 0)
        .count();

    ReuseStats {
        instances,
        hierarchical_modules: hier.len(),
        hierarchical_modules_nontrivial: hier.len() - hier_trivial.len(),
        leaf_modules: leaf.len(),
        instances_per_module,
        instances_per_module_nontrivial,
        pct_instances_from_library: if instances == 0 {
            0.0
        } else {
            100.0 * from_library_count as f64 / instances as f64
        },
        modules_from_library: library.len(),
        explicit_types_without_inference: without_inference,
        explicit_types_with_inference: netlist.elab.explicit_type_instantiations as usize,
        inferred_port_widths,
        connections: netlist.connections.len(),
    }
}

/// Formats stats as one Table 2 row.
pub fn format_row(model: &str, s: &ReuseStats) -> String {
    format!(
        "{model:<6} {inst:>9} {hier:>6} ({hnt:>2}) {leaf:>6} {ipm:>6.2} ({ipmnt:>5.2}) {pct:>5.0}% {libm:>5} {wo:>6} {w:>5} {widths:>7} {conns:>8}",
        model = model,
        inst = s.instances,
        hier = s.hierarchical_modules,
        hnt = s.hierarchical_modules_nontrivial,
        leaf = s.leaf_modules,
        ipm = s.instances_per_module,
        ipmnt = s.instances_per_module_nontrivial,
        pct = s.pct_instances_from_library,
        libm = s.modules_from_library,
        wo = s.explicit_types_without_inference,
        w = s.explicit_types_with_inference,
        widths = s.inferred_port_widths,
        conns = s.connections,
    )
}

/// The Table 2 header matching [`format_row`].
pub fn header() -> String {
    format!(
        "{:<6} {:>9} {:>11} {:>6} {:>14} {:>6} {:>5} {:>6} {:>5} {:>7} {:>8}",
        "Model",
        "Instances",
        "HierMod(nt)",
        "LeafM",
        "Inst/Mod(nt)",
        "Lib%",
        "LibM",
        "TyW/O",
        "TyW/",
        "Widths",
        "Conns"
    )
}

/// Aggregates several models' stats into a "Total" row (module counts take
/// the union semantics the paper uses: distinct modules across all models
/// are already distinct within each netlist, so totals sum instance-derived
/// quantities and take the max of module-count quantities as an
/// approximation of the cross-model union when module names are shared).
pub fn total(stats: &[(&str, ReuseStats)], shared_modules: usize) -> ReuseStats {
    let instances: usize = stats.iter().map(|(_, s)| s.instances).sum();
    let connections: usize = stats.iter().map(|(_, s)| s.connections).sum();
    let widths: usize = stats.iter().map(|(_, s)| s.inferred_port_widths).sum();
    let wo: usize = stats
        .iter()
        .map(|(_, s)| s.explicit_types_without_inference)
        .sum();
    let w: usize = stats
        .iter()
        .map(|(_, s)| s.explicit_types_with_inference)
        .sum();
    let from_lib: f64 = stats
        .iter()
        .map(|(_, s)| s.pct_instances_from_library / 100.0 * s.instances as f64)
        .sum();
    let hier = stats
        .iter()
        .map(|(_, s)| s.hierarchical_modules)
        .max()
        .unwrap_or(0);
    let hier_nt = stats
        .iter()
        .map(|(_, s)| s.hierarchical_modules_nontrivial)
        .max()
        .unwrap_or(0);
    let leaf = stats.iter().map(|(_, s)| s.leaf_modules).max().unwrap_or(0);
    let module_count = (hier + leaf).max(1);
    ReuseStats {
        instances,
        hierarchical_modules: hier,
        hierarchical_modules_nontrivial: hier_nt,
        leaf_modules: leaf,
        instances_per_module: instances as f64 / module_count as f64,
        instances_per_module_nontrivial: instances as f64 / (hier_nt + leaf).max(1) as f64,
        pct_instances_from_library: if instances == 0 {
            0.0
        } else {
            100.0 * from_lib / instances as f64
        },
        modules_from_library: shared_modules,
        explicit_types_without_inference: wo,
        explicit_types_with_inference: w,
        inferred_port_widths: widths,
        connections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::testutil::{add, ep};
    use crate::netlist::{Connection, Dir, InstanceKind, ModuleMeta};
    use lss_types::Scheme;

    fn sample() -> Netlist {
        let mut n = Netlist::new();
        let a = add(
            &mut n,
            "a",
            "source",
            InstanceKind::Leaf {
                tar_file: "t".into(),
            },
            None,
            &[("out", Dir::Out)],
        );
        let b = add(
            &mut n,
            "b",
            "delay",
            InstanceKind::Leaf {
                tar_file: "t".into(),
            },
            None,
            &[("in", Dir::In), ("out", Dir::Out)],
        );
        let c = add(
            &mut n,
            "c",
            "delay",
            InstanceKind::Leaf {
                tar_file: "t".into(),
            },
            None,
            &[("in", Dir::In), ("out", Dir::Out)],
        );
        let source = n.intern("source");
        let delay = n.intern("delay");
        n.modules.insert(
            source,
            ModuleMeta {
                hierarchical: false,
                from_library: true,
                trivial: false,
            },
        );
        n.modules.insert(
            delay,
            ModuleMeta {
                hierarchical: false,
                from_library: true,
                trivial: false,
            },
        );
        n.connections.push(Connection {
            src: ep(a, 0, 0),
            dst: ep(b, 0, 0),
        });
        n.connections.push(Connection {
            src: ep(b, 1, 0),
            dst: ep(c, 0, 0),
        });
        n.instance_mut(a).ports[0].width = 1;
        n.instance_mut(b).ports[0].width = 1;
        n.instance_mut(b).ports[1].width = 1;
        n.instance_mut(c).ports[0].width = 1;
        n
    }

    #[test]
    fn counts_basic_quantities() {
        let n = sample();
        let s = reuse_stats(&n);
        assert_eq!(s.instances, 3);
        assert_eq!(s.leaf_modules, 2);
        assert_eq!(s.hierarchical_modules, 0);
        assert_eq!(s.connections, 2);
        assert_eq!(s.inferred_port_widths, 4);
        assert!((s.instances_per_module - 1.5).abs() < 1e-9);
        assert!((s.pct_instances_from_library - 100.0).abs() < 1e-9);
        assert_eq!(s.modules_from_library, 2);
    }

    #[test]
    fn explicit_without_inference_counts_var_classes() {
        let n = sample();
        // Each test instance has one fresh var per port: a has 1, b has 2,
        // c has 2 → 5 would-be explicit instantiations.
        let s = reuse_stats(&n);
        assert_eq!(s.explicit_types_without_inference, 5);
    }

    #[test]
    fn shared_var_across_ports_counts_once() {
        let mut n = sample();
        // Make b's two ports share one variable (like delayn's 'a).
        let var = n.instance(crate::netlist::InstanceId(1)).ports[0].var;
        n.instance_mut(crate::netlist::InstanceId(1)).ports[1].scheme = Scheme::Var(var);
        n.instance_mut(crate::netlist::InstanceId(1)).ports[1].var = var;
        let s = reuse_stats(&n);
        assert_eq!(s.explicit_types_without_inference, 4);
    }

    #[test]
    fn ground_disjunctive_port_counts_one() {
        let mut n = sample();
        n.instance_mut(crate::netlist::InstanceId(0)).ports[0].scheme =
            Scheme::Or(vec![Scheme::Int, Scheme::Float]);
        let s = reuse_stats(&n);
        // a's var is replaced by a ground disjunction: still 1 for a.
        assert_eq!(s.explicit_types_without_inference, 5);
    }

    #[test]
    fn reduction_percentage() {
        let mut n = sample();
        n.elab.explicit_type_instantiations = 1;
        let s = reuse_stats(&n);
        assert_eq!(s.explicit_types_with_inference, 1);
        let pct = s.type_instantiation_reduction_pct();
        assert!(
            (pct - 80.0).abs() < 1e-9,
            "expected 80% reduction, got {pct}"
        );
    }

    #[test]
    fn trivial_wrappers_are_discounted() {
        let mut n = sample();
        add(
            &mut n,
            "w",
            "wrapper",
            InstanceKind::Hierarchical,
            None,
            &[],
        );
        let wrapper = n.intern("wrapper");
        n.modules.insert(
            wrapper,
            ModuleMeta {
                hierarchical: true,
                from_library: false,
                trivial: true,
            },
        );
        let s = reuse_stats(&n);
        assert_eq!(s.hierarchical_modules, 1);
        assert_eq!(s.hierarchical_modules_nontrivial, 0);
        // Discounted reuse factor excludes the wrapper instance and module.
        assert!((s.instances_per_module_nontrivial - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rows_and_header_align() {
        let n = sample();
        let s = reuse_stats(&n);
        let row = format_row("A", &s);
        assert!(row.starts_with("A"));
        assert!(!header().is_empty());
    }

    #[test]
    fn totals_sum_instancewise_metrics() {
        let n = sample();
        let s1 = reuse_stats(&n);
        let s2 = reuse_stats(&n);
        let t = total(&[("A", s1.clone()), ("B", s2)], 2);
        assert_eq!(t.instances, 6);
        assert_eq!(t.connections, 4);
        assert_eq!(t.inferred_port_widths, 8);
        assert_eq!(t.modules_from_library, 2);
    }
}
