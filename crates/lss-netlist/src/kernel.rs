//! Kernel-lowerable behavior metadata.
//!
//! The compiled simulation engine (`lss-sim`'s `exec` module) devirtualizes
//! hot corelib behaviors into direct port-slot reads and writes. A behavior
//! opts in by describing itself as a [`KernelClass`]: which of its ports
//! play which structural role, plus the resolved parameters the kernel
//! needs. The description is pure metadata — port numbers are the
//! behavior's own port indices, exactly as handed to its factory — and the
//! engine resolves them against the flat slot arena at build time. A
//! behavior without a `KernelClass` (or one the engine declines to lower,
//! e.g. because it sits inside a combinational cycle or carries userpoints)
//! simply stays on the dyn `Component` path.
//!
//! This lives in `lss-netlist` rather than `lss-sim` so the metadata sits
//! next to the rest of the structural IR and stays usable by tooling that
//! never links the engine.

use lss_types::Datum;

use crate::protocol::SrcSpan;

/// The arithmetic operation of an ALU kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelAluOp {
    /// Wrapping addition (int) / IEEE addition (float).
    Add,
    /// Wrapping subtraction / IEEE subtraction.
    Sub,
    /// Wrapping multiplication / IEEE multiplication.
    Mul,
}

/// A behavior's self-description for kernel lowering.
///
/// Every variant mirrors one corelib behavior's `eval`/`end_of_timestep`
/// contract exactly; the kernel-equivalence suite in the workspace root
/// pins the two implementations against each other (and against the naive
/// reference simulator) cycle by cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelClass {
    /// `corelib/source.tar`: every `out` lane carries `start + seed +
    /// cycle` for `int` ports, or the fixed default value `konst` for any
    /// other inferred type.
    Source {
        /// `out` port index.
        out: usize,
        /// Counter base for the `int` overload.
        start: i64,
        /// `Some(default)` for non-`int` types; `None` selects the counter.
        konst: Option<Datum>,
    },
    /// `corelib/sink.tar`: counts arrivals on `in` into the `count`
    /// runtime variable at end of timestep.
    Sink {
        /// `in` port index.
        inp: usize,
    },
    /// `corelib/delay.tar`: `out` carries the state, which takes `in[0]`'s
    /// value at end of timestep.
    Delay {
        /// `in` port index.
        inp: usize,
        /// `out` port index.
        out: usize,
        /// Initial state.
        init: Datum,
    },
    /// `corelib/latch.tar`: each `out` lane carries what the matching `in`
    /// lane held at the end of the previous cycle.
    Latch {
        /// `in` port index.
        inp: usize,
        /// `out` port index.
        out: usize,
    },
    /// `corelib/tee.tar`: combinational fan-out of `in[0]` to every `out`
    /// lane.
    Tee {
        /// `in` port index.
        inp: usize,
        /// `out` port index.
        out: usize,
    },
    /// `corelib/queue.tar`: the elastic FIFO with the credit discipline.
    Queue {
        /// `in` port index.
        inp: usize,
        /// `out` port index.
        out: usize,
        /// `credit` port index.
        credit: usize,
        /// `credit_in` port index.
        credit_in: usize,
        /// Buffer capacity.
        depth: usize,
        /// Protocol group name for overflow diagnostics.
        group: String,
        /// Annotation span for overflow diagnostics.
        span: Option<SrcSpan>,
    },
    /// `corelib/issue.tar`: the out-of-order (or `in_order`) issue window
    /// with RAW/WAW scoreboarding and per-lane FU class constraints.
    Issue {
        /// `in` port index.
        inp: usize,
        /// `credit` port index.
        credit: usize,
        /// `out` port index.
        out: usize,
        /// `fu_credit` port index.
        fu_credit: usize,
        /// `complete` port index.
        complete: usize,
        /// Window capacity.
        window_size: usize,
        /// Maximum issues per cycle.
        issue_width: usize,
        /// Strict program-order issue when set.
        in_order: bool,
        /// Per-out-lane accepted op-class codes (0 = any).
        classes: Vec<i64>,
        /// Protocol group name for overflow diagnostics.
        group: String,
        /// Annotation span for overflow diagnostics.
        span: Option<SrcSpan>,
    },
    /// `corelib/fu.tar`: the pipelined functional unit with an
    /// address-generation stage, optional cache-port and CDB-grant
    /// interfaces. Instructions travel as `Datum::Struct` values; the
    /// kernel reads the `op`/`lat`/`tgt` fields directly.
    Fu {
        /// `in` port index.
        inp: usize,
        /// `credit` port index.
        credit: usize,
        /// `done` port index.
        done: usize,
        /// `grant_in` port index.
        grant_in: usize,
        /// `mem_req` port index.
        mem_req: usize,
        /// `mem_resp` port index.
        mem_resp: usize,
        /// Accept a new instruction every cycle when set.
        pipelined: bool,
        /// In-flight instruction capacity.
        max_inflight: usize,
        /// Protocol group name for overflow diagnostics.
        group: String,
        /// Annotation span for overflow diagnostics.
        span: Option<SrcSpan>,
    },
    /// `corelib/alu.tar`: per-lane arithmetic on `a`/`b` into `res`.
    Alu {
        /// `a` port index.
        a: usize,
        /// `b` port index.
        b: usize,
        /// `res` port index.
        res: usize,
        /// Operation.
        op: KernelAluOp,
        /// True when the overload resolved to the float family member.
        float: bool,
    },
}
