//! Human-readable netlist dumps: an ASCII hierarchy tree and GraphViz dot.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::netlist::{InstanceId, Netlist};

/// Renders the instance hierarchy as an indented tree.
pub fn tree(netlist: &Netlist) -> String {
    let mut children: BTreeMap<Option<InstanceId>, Vec<InstanceId>> = BTreeMap::new();
    for inst in &netlist.instances {
        children.entry(inst.parent).or_default().push(inst.id);
    }
    let mut out = String::new();
    fn walk(
        netlist: &Netlist,
        children: &BTreeMap<Option<InstanceId>, Vec<InstanceId>>,
        id: InstanceId,
        depth: usize,
        out: &mut String,
    ) {
        let inst = netlist.instance(id);
        let local = inst.path.rsplit('.').next().unwrap_or(&inst.path);
        let kind = if inst.is_leaf() { "leaf" } else { "hier" };
        let ports: Vec<String> = inst
            .ports
            .iter()
            .map(|p| {
                let ty =
                    p.ty.as_ref()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "?".into());
                format!("{}:{}[w={}]", netlist.name(p.name), ty, p.width)
            })
            .collect();
        let _ = writeln!(
            out,
            "{}{} : {} ({}) {}",
            "  ".repeat(depth),
            local,
            netlist.name(inst.module),
            kind,
            ports.join(" ")
        );
        if let Some(kids) = children.get(&Some(id)) {
            for &kid in kids {
                walk(netlist, children, kid, depth + 1, out);
            }
        }
    }
    if let Some(roots) = children.get(&None) {
        for &root in roots {
            walk(netlist, &children, root, 0, &mut out);
        }
    }
    out
}

/// Renders the flattened wire graph in GraphViz dot syntax.
pub fn dot(netlist: &Netlist) -> String {
    let mut out = String::from("digraph model {\n  rankdir=LR;\n");
    for inst in netlist.leaves() {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box,label=\"{}\\n{}\"];",
            inst.path,
            inst.path,
            netlist.name(inst.module)
        );
    }
    for wire in netlist.flatten() {
        let src = netlist.instance(wire.src.inst);
        let dst = netlist.instance(wire.dst.inst);
        let src_port = netlist.name(src.ports[wire.src.port.index()].name);
        let dst_port = netlist.name(dst.ports[wire.dst.port.index()].name);
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}->{}\"];",
            src.path, dst.path, src_port, dst_port
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::testutil::{add, ep};
    use crate::netlist::{Connection, Dir, InstanceKind};

    fn sample() -> Netlist {
        let mut n = Netlist::new();
        let a = add(
            &mut n,
            "a",
            "source",
            InstanceKind::Leaf {
                tar_file: "t".into(),
            },
            None,
            &[("out", Dir::Out)],
        );
        let h = add(
            &mut n,
            "h",
            "wrap",
            InstanceKind::Hierarchical,
            None,
            &[("in", Dir::In)],
        );
        let b = add(
            &mut n,
            "h.b",
            "sink",
            InstanceKind::Leaf {
                tar_file: "t".into(),
            },
            Some(h),
            &[("in", Dir::In)],
        );
        n.connections.push(Connection {
            src: ep(a, 0, 0),
            dst: ep(h, 0, 0),
        });
        n.connections.push(Connection {
            src: ep(h, 0, 0),
            dst: ep(b, 0, 0),
        });
        n
    }

    #[test]
    fn tree_shows_hierarchy() {
        let t = tree(&sample());
        assert!(t.contains("a : source (leaf)"));
        assert!(t.contains("h : wrap (hier)"));
        assert!(
            t.contains("  b : sink (leaf)"),
            "child should be indented: {t}"
        );
    }

    #[test]
    fn dot_contains_flattened_wires() {
        let d = dot(&sample());
        assert!(d.contains("digraph model"));
        assert!(
            d.contains("\"a\" -> \"h.b\""),
            "leaf-to-leaf wire missing: {d}"
        );
    }
}
