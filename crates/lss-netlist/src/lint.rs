//! Static model lints — the "user convenience" analyses §3 asks of a
//! modeling system, run over the elaborated netlist before simulation.
//!
//! Lints are advisory: unconnected-port semantics (§4.2) make many of
//! these situations legal, but experience with large models shows they are
//! usually mistakes, so the checker surfaces them with precise paths.

use std::collections::BTreeSet;
use std::fmt;

use crate::netlist::{Dir, Netlist};

/// The category of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// A leaf input port with zero width on an instance that has at least
    /// one connected port — probably a forgotten connection.
    UnconnectedInput,
    /// A leaf output port with zero width — computed values go nowhere.
    UnconnectedOutput,
    /// A hierarchical instance with no connected ports at all.
    IsolatedInstance,
    /// A hierarchical port whose outside face is connected but whose inside
    /// never uses it (or vice versa): data falls off the boundary.
    DanglingHierarchicalPort,
    /// Two ports of one instance declared with the same type variable
    /// resolved to different widths — legal, but often a bus-width bug.
    WidthMismatch,
    /// A collector bound to an event its target instance never declares
    /// (and that is not an implicit `<port>_fire` event) — the collector
    /// can never fire.
    UnboundCollector,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintKind::UnconnectedInput => "unconnected input",
            LintKind::UnconnectedOutput => "unconnected output",
            LintKind::IsolatedInstance => "isolated instance",
            LintKind::DanglingHierarchicalPort => "dangling hierarchical port",
            LintKind::WidthMismatch => "width mismatch",
            LintKind::UnboundCollector => "unbound collector",
        };
        write!(f, "{s}")
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Category.
    pub kind: LintKind,
    /// Instance (and possibly port) path the finding refers to.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.subject, self.message)
    }
}

/// Runs all lints over the netlist.
///
/// This is a thin aggregation shim over the individual `check_*`
/// functions; the pass-manager framework in `lss-analyze` registers each
/// check as its own pass with a stable diagnostic code.
pub fn lint(netlist: &Netlist) -> Vec<Lint> {
    let mut findings = Vec::new();
    check_unconnected(netlist, &mut findings);
    check_isolated(netlist, &mut findings);
    check_dangling_hierarchical(netlist, &mut findings);
    check_width_mismatch(netlist, &mut findings);
    check_unbound_collectors(netlist, &mut findings);
    findings
}

/// Unconnected inputs/outputs on leaves that have at least one connected
/// port ([`LintKind::UnconnectedInput`], [`LintKind::UnconnectedOutput`]).
pub fn check_unconnected(netlist: &Netlist, findings: &mut Vec<Lint>) {
    for inst in netlist.leaves() {
        let any_connected = inst.ports.iter().any(|p| p.width > 0);
        if !any_connected {
            continue; // handled by the isolated-instance lint
        }
        let module = netlist.name(inst.module);
        for port in &inst.ports {
            if port.width > 0 {
                continue;
            }
            let pname = netlist.name(port.name);
            match port.dir {
                Dir::In => findings.push(Lint {
                    kind: LintKind::UnconnectedInput,
                    subject: format!("{}.{}", inst.path, pname),
                    message: format!(
                        "input `{}` of `{}` ({}) is never driven; the behavior will see no data \
                         on it",
                        pname, inst.path, module
                    ),
                }),
                Dir::Out => findings.push(Lint {
                    kind: LintKind::UnconnectedOutput,
                    subject: format!("{}.{}", inst.path, pname),
                    message: format!(
                        "output `{}` of `{}` ({}) has no consumers; values sent on it are \
                         discarded",
                        pname, inst.path, module
                    ),
                }),
            }
        }
    }
}

/// Instances declaring ports with none connected
/// ([`LintKind::IsolatedInstance`]).
pub fn check_isolated(netlist: &Netlist, findings: &mut Vec<Lint>) {
    // A hierarchical wrapper with unused boundary ports is not isolated if
    // anything inside it is wired: mark every ancestor of a connected port.
    let mut live_subtree = vec![false; netlist.instances.len()];
    for inst in &netlist.instances {
        if inst.ports.iter().any(|p| p.width > 0) {
            let mut cur = inst.parent;
            while let Some(id) = cur {
                if std::mem::replace(&mut live_subtree[id.0 as usize], true) {
                    break;
                }
                cur = netlist.instance(id).parent;
            }
        }
    }
    for inst in &netlist.instances {
        if inst.ports.is_empty() {
            continue; // sinks of pure state are fine
        }
        if live_subtree[inst.id.0 as usize] {
            continue;
        }
        if inst.ports.iter().all(|p| p.width == 0) {
            findings.push(Lint {
                kind: LintKind::IsolatedInstance,
                subject: inst.path.clone(),
                message: format!(
                    "`{}` ({}) declares {} port(s) but none are connected",
                    inst.path,
                    netlist.name(inst.module),
                    inst.ports.len()
                ),
            });
        }
    }
}

/// Hierarchical ports connected on only one face
/// ([`LintKind::DanglingHierarchicalPort`]).
pub fn check_dangling_hierarchical(netlist: &Netlist, findings: &mut Vec<Lint>) {
    // A hierarchical port instance should appear on both faces: as a dst
    // (outside drives an inport / inside drives an outport) and as a src.
    let mut srcs: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
    let mut dsts: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
    for c in &netlist.connections {
        srcs.insert((c.src.inst.0, c.src.port.0, c.src.index));
        dsts.insert((c.dst.inst.0, c.dst.port.0, c.dst.index));
    }
    for inst in &netlist.instances {
        if inst.is_leaf() {
            continue;
        }
        for (pidx, port) in inst.ports.iter().enumerate() {
            for lane in 0..port.width {
                let key = (inst.id.0, pidx as u32, lane);
                let as_src = srcs.contains(&key);
                let as_dst = dsts.contains(&key);
                if as_src != as_dst {
                    let (have, missing) = if as_dst {
                        ("driven", "never consumed on the other side")
                    } else {
                        ("consumed", "never driven on the other side")
                    };
                    findings.push(Lint {
                        kind: LintKind::DanglingHierarchicalPort,
                        subject: format!("{}.{}[{}]", inst.path, netlist.name(port.name), lane),
                        message: format!(
                            "hierarchical port instance is {have} but {missing}; data crossing \
                             this boundary is lost"
                        ),
                    });
                }
            }
        }
    }
}

/// Ports sharing a type variable but differing in width
/// ([`LintKind::WidthMismatch`]).
pub fn check_width_mismatch(netlist: &Netlist, findings: &mut Vec<Lint>) {
    for inst in &netlist.instances {
        // Group ports by shared type variables in their declared schemes.
        for (i, a) in inst.ports.iter().enumerate() {
            for b in inst.ports.iter().skip(i + 1) {
                if a.width == b.width || a.width == 0 || b.width == 0 {
                    continue;
                }
                let a_vars: BTreeSet<_> = a.scheme.vars().into_iter().collect();
                let shares_var = b.scheme.vars().iter().any(|v| a_vars.contains(v));
                if shares_var {
                    let (an, bn) = (netlist.name(a.name), netlist.name(b.name));
                    findings.push(Lint {
                        kind: LintKind::WidthMismatch,
                        subject: format!("{}.{}/{}", inst.path, an, bn),
                        message: format!(
                            "ports `{}` (width {}) and `{}` (width {}) share a type variable \
                             but differ in width — is a lane dropped?",
                            an, a.width, bn, b.width
                        ),
                    });
                }
            }
        }
    }
}

/// Collectors bound to events their target can never emit
/// ([`LintKind::UnboundCollector`]).
pub fn check_unbound_collectors(netlist: &Netlist, findings: &mut Vec<Lint>) {
    for coll in &netlist.collectors {
        let inst = netlist.instance(coll.inst);
        if inst.events.iter().any(|e| e.name == coll.event) {
            continue;
        }
        let ev = netlist.name(coll.event);
        // Implicit per-port firing event: `<port>_fire`.
        if let Some(port) = ev.strip_suffix("_fire") {
            if inst.ports.iter().any(|p| netlist.name(p.name) == port) {
                continue;
            }
        }
        findings.push(Lint {
            kind: LintKind::UnboundCollector,
            subject: format!("{}:{}", inst.path, ev),
            message: format!(
                "collector on `{}` listens for `{}`, but `{}` declares no such event and has no \
                 port of that name; the collector will never fire",
                inst.path,
                ev,
                netlist.name(inst.module)
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::testutil::{add, ep};
    use crate::netlist::{Connection, InstanceKind};

    fn leaf(
        netlist: &mut Netlist,
        path: &str,
        ports: &[(&str, Dir)],
    ) -> crate::netlist::InstanceId {
        add(
            netlist,
            path,
            "m",
            InstanceKind::Leaf {
                tar_file: "t".into(),
            },
            None,
            ports,
        )
    }

    #[test]
    fn reports_unconnected_ports_on_partially_wired_leaves() {
        let mut n = Netlist::new();
        let a = leaf(&mut n, "a", &[("out", Dir::Out)]);
        let b = leaf(
            &mut n,
            "b",
            &[("in", Dir::In), ("aux", Dir::In), ("res", Dir::Out)],
        );
        n.connections.push(Connection {
            src: ep(a, 0, 0),
            dst: ep(b, 0, 0),
        });
        n.instance_mut(a).ports[0].width = 1;
        n.instance_mut(b).ports[0].width = 1;
        let findings = lint(&n);
        assert!(findings
            .iter()
            .any(|l| l.kind == LintKind::UnconnectedInput && l.subject == "b.aux"));
        assert!(findings
            .iter()
            .any(|l| l.kind == LintKind::UnconnectedOutput && l.subject == "b.res"));
    }

    #[test]
    fn reports_isolated_instances_once() {
        let mut n = Netlist::new();
        leaf(&mut n, "lonely", &[("in", Dir::In), ("out", Dir::Out)]);
        let findings = lint(&n);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, LintKind::IsolatedInstance);
    }

    #[test]
    fn reports_dangling_hierarchical_ports() {
        let mut n = Netlist::new();
        let g = leaf(&mut n, "g", &[("out", Dir::Out)]);
        let h = add(
            &mut n,
            "h",
            "wrap",
            InstanceKind::Hierarchical,
            None,
            &[("in", Dir::In)],
        );
        // Outside drives h.in but nothing inside consumes it.
        n.connections.push(Connection {
            src: ep(g, 0, 0),
            dst: ep(h, 0, 0),
        });
        n.instance_mut(g).ports[0].width = 1;
        n.instance_mut(h).ports[0].width = 1;
        let findings = lint(&n);
        assert!(
            findings
                .iter()
                .any(|l| l.kind == LintKind::DanglingHierarchicalPort && l.subject == "h.in[0]"),
            "{findings:?}"
        );
    }

    #[test]
    fn reports_width_mismatch_on_shared_type_vars() {
        let mut n = Netlist::new();
        let id = leaf(&mut n, "q", &[("in", Dir::In), ("out", Dir::Out)]);
        // Tie both ports to the same variable, then give them different widths.
        let shared = n.instance(id).ports[0].var;
        n.instance_mut(id).ports[1].scheme = lss_types::Scheme::Var(shared);
        n.instance_mut(id).ports[0].width = 3;
        n.instance_mut(id).ports[1].width = 1;
        let findings = lint(&n);
        assert!(
            findings.iter().any(|l| l.kind == LintKind::WidthMismatch),
            "{findings:?}"
        );
    }

    #[test]
    fn reports_collectors_bound_to_nonexistent_events() {
        let mut n = Netlist::new();
        let a = leaf(&mut n, "a", &[("out", Dir::Out)]);
        let b = leaf(&mut n, "b", &[("in", Dir::In)]);
        n.connections.push(Connection {
            src: ep(a, 0, 0),
            dst: ep(b, 0, 0),
        });
        n.instance_mut(a).ports[0].width = 1;
        n.instance_mut(b).ports[0].width = 1;
        let declared = n.intern("tick");
        n.instance_mut(a).events.push(crate::netlist::EventDecl {
            name: declared,
            args: Vec::new(),
        });
        // Fine: declared event, implicit port-firing event.
        let tick = n.intern("tick");
        let out_fire = n.intern("out_fire");
        let typo = n.intern("tock");
        for event in [tick, out_fire, typo] {
            n.collectors.push(crate::netlist::Collector {
                inst: a,
                event,
                code: "n = n + 1;".into(),
            });
        }
        let findings = lint(&n);
        let unbound: Vec<_> = findings
            .iter()
            .filter(|l| l.kind == LintKind::UnboundCollector)
            .collect();
        assert_eq!(unbound.len(), 1, "{findings:?}");
        assert_eq!(unbound[0].subject, "a:tock");
    }

    #[test]
    fn clean_model_is_lint_free() {
        let mut n = Netlist::new();
        let a = leaf(&mut n, "a", &[("out", Dir::Out)]);
        let b = leaf(&mut n, "b", &[("in", Dir::In)]);
        n.connections.push(Connection {
            src: ep(a, 0, 0),
            dst: ep(b, 0, 0),
        });
        n.instance_mut(a).ports[0].width = 1;
        n.instance_mut(b).ports[0].width = 1;
        assert!(lint(&n).is_empty());
    }

    #[test]
    fn display_is_informative() {
        let l = Lint {
            kind: LintKind::UnconnectedInput,
            subject: "x.in".into(),
            message: "m".into(),
        };
        assert_eq!(l.to_string(), "[unconnected input] x.in: m");
    }
}
