//! Golden-file diagnostic tests: handcrafted netlists with known defects
//! must render to byte-identical reports, and every Table 3 model must
//! come out clean under the default deny set.
//!
//! Regenerate the expected files with `UPDATE_GOLDEN=1 cargo test -p
//! lss-analyze --test golden` after an intentional output change, and
//! review the diff like any other code change.

use std::collections::BTreeMap;
use std::path::PathBuf;

use lss_analyze::{to_text, AnalysisConfig, CombInfo, PassManager};
use lss_netlist::{
    ActionDir, Automaton, Connection, Dir, Endpoint, Instance, InstanceId, InstanceKind, Netlist,
    Port, PortId, ProtocolBinding, Role, SrcSpan, Template, Transition,
};
use lss_types::Scheme;

/// Adds a leaf instance with the given `(name, dir, width)` ports.
/// Mirrors `lss_netlist::netlist::testutil::add`, which is `cfg(test)`.
fn add_leaf(n: &mut Netlist, path: &str, module: &str, ports: &[(&str, Dir, u32)]) -> InstanceId {
    let module_sym = n.intern(module);
    let tar_file = format!("corelib/{module}.tar");
    let ports = ports
        .iter()
        .map(|(name, dir, width)| {
            let name_sym = n.intern(name);
            let var = n.vars.fresh(format!("{path}.{name}"));
            Port {
                name: name_sym,
                dir: *dir,
                scheme: Scheme::Var(var),
                var,
                width: *width,
                ty: None,
                explicit: false,
            }
        })
        .collect();
    n.add_instance(Instance {
        id: InstanceId(0),
        path: path.to_string(),
        module: module_sym,
        kind: InstanceKind::Leaf { tar_file },
        parent: None,
        from_library: true,
        params: BTreeMap::new(),
        ports,
        userpoints: Vec::new(),
        runtime_vars: Vec::new(),
        events: Vec::new(),
        protocols: Vec::new(),
    })
}

/// Endpoint shorthand.
fn ep(inst: InstanceId, port: u32, index: u32) -> Endpoint {
    Endpoint {
        inst,
        port: PortId(port),
        index,
    }
}

fn connect(n: &mut Netlist, src: Endpoint, dst: Endpoint) {
    n.connections.push(Connection { src, dst });
}

/// Runs the default pass suite and renders the human report.
fn report(netlist: &Netlist, comb: &CombInfo) -> String {
    let analysis =
        PassManager::with_default_passes().run(netlist, comb, &AnalysisConfig::default());
    to_text(&analysis.findings)
}

fn assert_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "report differs from {}; run with UPDATE_GOLDEN=1 to regenerate",
        path.display()
    );
}

/// Two combinational pass-throughs wired head-to-tail: a true zero-delay
/// cycle, plus the dead-logic warnings (nothing observes the loop).
fn cyclic_netlist() -> Netlist {
    let mut n = Netlist::new();
    let a = add_leaf(
        &mut n,
        "a",
        "tee",
        &[("in", Dir::In, 1), ("out", Dir::Out, 1)],
    );
    let b = add_leaf(
        &mut n,
        "b",
        "tee",
        &[("in", Dir::In, 1), ("out", Dir::Out, 1)],
    );
    connect(&mut n, ep(a, 1, 0), ep(b, 0, 0));
    connect(&mut n, ep(b, 1, 0), ep(a, 0, 0));
    n
}

#[test]
fn cyclic_netlist_reports_lss101() {
    let n = cyclic_netlist();
    assert_golden("cyclic.txt", &report(&n, &CombInfo::all_combinational()));
}

#[test]
fn registering_an_input_breaks_the_cycle() {
    let n = cyclic_netlist();
    let b = n.instances[1].id;
    let mut comb = CombInfo::all_combinational();
    comb.set_non_combinational(b, PortId(0));
    let analysis = PassManager::with_default_passes().run(&n, &comb, &AnalysisConfig::default());
    assert_eq!(analysis.with_code(lss_analyze::Code::CombCycle).count(), 0);
    assert_eq!(analysis.denied, 0);
}

#[test]
fn independent_port_paths_break_the_cycle() {
    // Same wiring, but b's behavior declares `out` independent of `in`
    // (a credit-style component): the loop dissolves at port granularity.
    let n = cyclic_netlist();
    let b = n.instances[1].id;
    let mut comb = CombInfo::all_combinational();
    comb.set_independent(b, PortId(1), PortId(0));
    let analysis = PassManager::with_default_passes().run(&n, &comb, &AnalysisConfig::default());
    assert_eq!(analysis.with_code(lss_analyze::Code::CombCycle).count(), 0);
}

#[test]
fn multi_driver_netlist_reports_lss102() {
    let mut n = Netlist::new();
    let s1 = add_leaf(&mut n, "s1", "source", &[("out", Dir::Out, 1)]);
    let s2 = add_leaf(&mut n, "s2", "source", &[("out", Dir::Out, 1)]);
    let k = add_leaf(&mut n, "k", "sink", &[("in", Dir::In, 1)]);
    connect(&mut n, ep(s1, 0, 0), ep(k, 0, 0));
    connect(&mut n, ep(s2, 0, 0), ep(k, 0, 0));
    assert_golden(
        "multidriver.txt",
        &report(&n, &CombInfo::all_combinational()),
    );
}

#[test]
fn dead_logic_netlist_reports_lss203() {
    let mut n = Netlist::new();
    // Observed chain: gen -> hole (hole has no outputs, so it counts as an
    // observation point).
    let gen = add_leaf(&mut n, "gen", "source", &[("out", Dir::Out, 1)]);
    let hole = add_leaf(&mut n, "hole", "sink", &[("in", Dir::In, 1)]);
    connect(&mut n, ep(gen, 0, 0), ep(hole, 0, 0));
    // Dead chain: gen2 -> stage, whose output goes nowhere.
    let gen2 = add_leaf(&mut n, "gen2", "source", &[("out", Dir::Out, 1)]);
    let stage = add_leaf(
        &mut n,
        "stage",
        "tee",
        &[("in", Dir::In, 1), ("out", Dir::Out, 0)],
    );
    connect(&mut n, ep(gen2, 0, 0), ep(stage, 0, 0));
    assert_golden("deadlogic.txt", &report(&n, &CombInfo::all_combinational()));
}

/// Attaches a template-based protocol binding to an instance.
fn annotate(
    n: &mut Netlist,
    inst: InstanceId,
    group: &str,
    role: Role,
    template: Template,
    ports: &[u32],
) {
    n.instances[inst.0 as usize]
        .protocols
        .push(ProtocolBinding {
            group: group.to_string(),
            role,
            automaton: Automaton {
                template,
                states: Vec::new(),
                transitions: Vec::new(),
            },
            ports: ports.iter().map(|&p| PortId(p)).collect(),
            span: SrcSpan::default(),
        });
}

fn analyze(n: &Netlist) -> lss_analyze::Analysis {
    PassManager::with_default_passes().run(
        n,
        &CombInfo::all_combinational(),
        &AnalysisConfig::default(),
    )
}

/// fetch-like producer (out, credit_in) into a queue-like consumer
/// (in, credit) with the credit channel wired back.
fn credit_pair(n: &mut Netlist) -> (InstanceId, InstanceId) {
    let f = add_leaf(
        n,
        "f",
        "fetch",
        &[("out", Dir::Out, 8), ("credit_in", Dir::In, 1)],
    );
    let q = add_leaf(
        n,
        "q",
        "queue",
        &[
            ("in", Dir::In, 8),
            ("out", Dir::Out, 8),
            ("credit", Dir::Out, 1),
            ("credit_in", Dir::In, 1),
        ],
    );
    connect(n, ep(f, 0, 0), ep(q, 0, 0));
    connect(n, ep(q, 2, 0), ep(f, 1, 0));
    (f, q)
}

#[test]
fn matched_credit_pair_is_protocol_clean() {
    let mut n = Netlist::new();
    let (f, q) = credit_pair(&mut n);
    annotate(
        &mut n,
        f,
        "outs",
        Role::Producer,
        Template::Credit(None),
        &[0, 1],
    );
    annotate(
        &mut n,
        q,
        "ins",
        Role::Consumer,
        Template::Credit(Some(4)),
        &[0, 2],
    );
    let analysis = analyze(&n);
    for code in [
        lss_analyze::Code::ProtocolMismatch,
        lss_analyze::Code::ProtocolUnannotatedPeer,
        lss_analyze::Code::ProtocolDeadlock,
    ] {
        assert_eq!(
            analysis.with_code(code).count(),
            0,
            "unexpected {code} in:\n{}",
            to_text(&analysis.findings)
        );
    }
}

#[test]
fn role_flip_reports_lss105() {
    let mut n = Netlist::new();
    let (f, q) = credit_pair(&mut n);
    // Both sides claim to consume: the wire's source cannot be a consumer.
    annotate(
        &mut n,
        f,
        "outs",
        Role::Consumer,
        Template::Credit(None),
        &[0, 1],
    );
    annotate(
        &mut n,
        q,
        "ins",
        Role::Consumer,
        Template::Credit(Some(4)),
        &[0, 2],
    );
    let analysis = analyze(&n);
    let f = analysis
        .with_code(lss_analyze::Code::ProtocolMismatch)
        .next()
        .expect("role flip must be a protocol mismatch");
    assert!(f.message.contains("requires a producer"), "{}", f.message);
}

#[test]
fn credit_over_issue_reports_lss105() {
    let mut n = Netlist::new();
    let (f, q) = credit_pair(&mut n);
    annotate(
        &mut n,
        f,
        "outs",
        Role::Producer,
        Template::Credit(Some(8)),
        &[0, 1],
    );
    annotate(
        &mut n,
        q,
        "ins",
        Role::Consumer,
        Template::Credit(Some(4)),
        &[0, 2],
    );
    let analysis = analyze(&n);
    let f = analysis
        .with_code(lss_analyze::Code::ProtocolMismatch)
        .next()
        .expect("credit over-issue must be a protocol mismatch");
    assert!(f.message.contains("only buffers 4"), "{}", f.message);
}

#[test]
fn custom_wait_loop_reports_lss107() {
    let mut n = Netlist::new();
    let (f, q) = credit_pair(&mut n);
    // Producer that must *receive* `go` before it ever sends, wired to a
    // consumer that only sends `go` *after* receiving an item.
    n.instances[f.0 as usize].protocols.push(ProtocolBinding {
        group: "outs".to_string(),
        role: Role::Producer,
        automaton: Automaton {
            template: Template::Custom("polite".to_string()),
            states: vec!["p0".to_string(), "p1".to_string()],
            transitions: vec![
                Transition {
                    from: 0,
                    to: 1,
                    dir: ActionDir::Recv,
                    action: "go".to_string(),
                },
                Transition {
                    from: 1,
                    to: 0,
                    dir: ActionDir::Send,
                    action: "item".to_string(),
                },
            ],
        },
        ports: vec![PortId(0), PortId(1)],
        span: SrcSpan::default(),
    });
    n.instances[q.0 as usize].protocols.push(ProtocolBinding {
        group: "ins".to_string(),
        role: Role::Consumer,
        automaton: Automaton {
            template: Template::Custom("shy".to_string()),
            states: vec!["c0".to_string(), "c1".to_string()],
            transitions: vec![
                Transition {
                    from: 0,
                    to: 1,
                    dir: ActionDir::Recv,
                    action: "item".to_string(),
                },
                Transition {
                    from: 1,
                    to: 0,
                    dir: ActionDir::Send,
                    action: "go".to_string(),
                },
            ],
        },
        ports: vec![PortId(0), PortId(2)],
        span: SrcSpan::default(),
    });
    let analysis = analyze(&n);
    let f = analysis
        .with_code(lss_analyze::Code::ProtocolDeadlock)
        .next()
        .expect("mutual wait must be a protocol deadlock");
    assert!(f.message.contains("wait for the other"), "{}", f.message);
}

#[test]
fn engaged_unannotated_peer_reports_lss106() {
    let mut n = Netlist::new();
    let (f, q) = credit_pair(&mut n);
    // Only the queue declares its discipline; fetch still wires the credit
    // return path, so it demonstrably participates.
    let _ = f;
    annotate(
        &mut n,
        q,
        "ins",
        Role::Consumer,
        Template::Credit(Some(4)),
        &[0, 2],
    );
    let analysis = analyze(&n);
    let f = analysis
        .with_code(lss_analyze::Code::ProtocolUnannotatedPeer)
        .next()
        .expect("engaged peer must warn");
    assert_eq!(f.subject, "f");
    assert!(f.message.contains("credit traffic"), "{}", f.message);
}

#[test]
fn unengaged_peer_stays_silent() {
    let mut n = Netlist::new();
    let s = add_leaf(&mut n, "s", "source", &[("out", Dir::Out, 8)]);
    let q = add_leaf(
        &mut n,
        "q",
        "queue",
        &[
            ("in", Dir::In, 8),
            ("out", Dir::Out, 8),
            ("credit", Dir::Out, 1),
            ("credit_in", Dir::In, 1),
        ],
    );
    connect(&mut n, ep(s, 0, 0), ep(q, 0, 0));
    // Credit return is unwired: the source does not participate in the
    // discipline, so no warning (§4.2 degradation).
    annotate(
        &mut n,
        q,
        "ins",
        Role::Consumer,
        Template::Credit(Some(4)),
        &[0, 2],
    );
    let analysis = analyze(&n);
    assert_eq!(
        analysis
            .with_code(lss_analyze::Code::ProtocolUnannotatedPeer)
            .count(),
        0
    );
    assert_eq!(
        analysis
            .with_code(lss_analyze::Code::ProtocolDeadlock)
            .count(),
        0
    );
}

/// Pins the analyzer's credit-to-credit fast path: after the direct role
/// and over-issue checks, every credit pairing composes cleanly — the
/// only finding a credit/credit pair can produce is a concrete producer
/// budget exceeding a concrete consumer budget. Sweeps adaptive and
/// concrete counts on both sides, with the return channel wired and
/// unwired (§4.2 degradation).
#[test]
fn credit_sweep_agrees_with_product_walk() {
    let counts: [Option<u32>; 4] = [None, Some(1), Some(4), Some(9)];
    for p_count in counts {
        for c_count in counts {
            for wired in [true, false] {
                let mut n = Netlist::new();
                let (f, q) = credit_pair(&mut n);
                if !wired {
                    // Drop the credit return connection (q.credit -> f.credit_in).
                    n.connections
                        .retain(|c| c.src.inst != q || c.src.port != PortId(2));
                }
                annotate(
                    &mut n,
                    f,
                    "outs",
                    Role::Producer,
                    Template::Credit(p_count),
                    &[0, 1],
                );
                annotate(
                    &mut n,
                    q,
                    "ins",
                    Role::Consumer,
                    Template::Credit(c_count),
                    &[0, 2],
                );
                let analysis = analyze(&n);
                let over_issue = matches!((p_count, c_count), (Some(p), Some(c)) if p > c);
                let mismatches = analysis
                    .with_code(lss_analyze::Code::ProtocolMismatch)
                    .count();
                let deadlocks = analysis
                    .with_code(lss_analyze::Code::ProtocolDeadlock)
                    .count();
                assert_eq!(
                    (mismatches, deadlocks),
                    (usize::from(over_issue), 0),
                    "credit({p_count:?}) -> credit({c_count:?}), wired={wired}:\n{}",
                    to_text(&analysis.findings)
                );
            }
        }
    }
}

#[test]
fn dangling_handshake_reverse_reports_lss107() {
    let mut n = Netlist::new();
    let fu = add_leaf(
        &mut n,
        "fu",
        "fu",
        &[("mem_req", Dir::Out, 8), ("mem_resp", Dir::In, 8)],
    );
    let c = add_leaf(
        &mut n,
        "c",
        "cache",
        &[("req", Dir::In, 8), ("resp", Dir::Out, 8)],
    );
    // Request path wired, response path forgotten.
    connect(&mut n, ep(fu, 0, 0), ep(c, 0, 0));
    annotate(
        &mut n,
        fu,
        "mem",
        Role::Producer,
        Template::ReqResp,
        &[0, 1],
    );
    annotate(
        &mut n,
        c,
        "upper",
        Role::Consumer,
        Template::ReqResp,
        &[0, 1],
    );
    let analysis = analyze(&n);
    let f = analysis
        .with_code(lss_analyze::Code::ProtocolDeadlock)
        .next()
        .expect("dangling resp must deadlock");
    assert!(f.message.contains("not connected"), "{}", f.message);
}

#[test]
fn table3_models_are_clean_under_default_deny() {
    let registry = lss_corelib::registry();
    for model in lss_models::models() {
        let compiled = lss_models::compile_model(model)
            .unwrap_or_else(|e| panic!("model {} failed to compile: {e}", model.id));
        let comb = lss_sim::comb_info(&compiled.netlist, &registry);
        let analysis = PassManager::with_default_passes().run(
            &compiled.netlist,
            &comb,
            &AnalysisConfig::default(),
        );
        assert_eq!(
            analysis.denied,
            0,
            "model {} is not clean under the default deny set:\n{}",
            model.id,
            to_text(&analysis.findings)
        );
        assert_eq!(
            analysis.with_code(lss_analyze::Code::CombCycle).count(),
            0,
            "model {} has a port-level combinational cycle",
            model.id
        );
    }
}
