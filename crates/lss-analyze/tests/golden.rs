//! Golden-file diagnostic tests: handcrafted netlists with known defects
//! must render to byte-identical reports, and every Table 3 model must
//! come out clean under the default deny set.
//!
//! Regenerate the expected files with `UPDATE_GOLDEN=1 cargo test -p
//! lss-analyze --test golden` after an intentional output change, and
//! review the diff like any other code change.

use std::collections::BTreeMap;
use std::path::PathBuf;

use lss_analyze::{to_text, AnalysisConfig, CombInfo, PassManager};
use lss_netlist::{
    Connection, Dir, Endpoint, Instance, InstanceId, InstanceKind, Netlist, Port, PortId,
};
use lss_types::Scheme;

/// Adds a leaf instance with the given `(name, dir, width)` ports.
/// Mirrors `lss_netlist::netlist::testutil::add`, which is `cfg(test)`.
fn add_leaf(n: &mut Netlist, path: &str, module: &str, ports: &[(&str, Dir, u32)]) -> InstanceId {
    let module_sym = n.intern(module);
    let tar_file = format!("corelib/{module}.tar");
    let ports = ports
        .iter()
        .map(|(name, dir, width)| {
            let name_sym = n.intern(name);
            let var = n.vars.fresh(format!("{path}.{name}"));
            Port {
                name: name_sym,
                dir: *dir,
                scheme: Scheme::Var(var),
                var,
                width: *width,
                ty: None,
                explicit: false,
            }
        })
        .collect();
    n.add_instance(Instance {
        id: InstanceId(0),
        path: path.to_string(),
        module: module_sym,
        kind: InstanceKind::Leaf { tar_file },
        parent: None,
        from_library: true,
        params: BTreeMap::new(),
        ports,
        userpoints: Vec::new(),
        runtime_vars: Vec::new(),
        events: Vec::new(),
    })
}

/// Endpoint shorthand.
fn ep(inst: InstanceId, port: u32, index: u32) -> Endpoint {
    Endpoint {
        inst,
        port: PortId(port),
        index,
    }
}

fn connect(n: &mut Netlist, src: Endpoint, dst: Endpoint) {
    n.connections.push(Connection { src, dst });
}

/// Runs the default pass suite and renders the human report.
fn report(netlist: &Netlist, comb: &CombInfo) -> String {
    let analysis =
        PassManager::with_default_passes().run(netlist, comb, &AnalysisConfig::default());
    to_text(&analysis.findings)
}

fn assert_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "report differs from {}; run with UPDATE_GOLDEN=1 to regenerate",
        path.display()
    );
}

/// Two combinational pass-throughs wired head-to-tail: a true zero-delay
/// cycle, plus the dead-logic warnings (nothing observes the loop).
fn cyclic_netlist() -> Netlist {
    let mut n = Netlist::new();
    let a = add_leaf(
        &mut n,
        "a",
        "tee",
        &[("in", Dir::In, 1), ("out", Dir::Out, 1)],
    );
    let b = add_leaf(
        &mut n,
        "b",
        "tee",
        &[("in", Dir::In, 1), ("out", Dir::Out, 1)],
    );
    connect(&mut n, ep(a, 1, 0), ep(b, 0, 0));
    connect(&mut n, ep(b, 1, 0), ep(a, 0, 0));
    n
}

#[test]
fn cyclic_netlist_reports_lss101() {
    let n = cyclic_netlist();
    assert_golden("cyclic.txt", &report(&n, &CombInfo::all_combinational()));
}

#[test]
fn registering_an_input_breaks_the_cycle() {
    let n = cyclic_netlist();
    let b = n.instances[1].id;
    let mut comb = CombInfo::all_combinational();
    comb.set_non_combinational(b, PortId(0));
    let analysis = PassManager::with_default_passes().run(&n, &comb, &AnalysisConfig::default());
    assert_eq!(analysis.with_code(lss_analyze::Code::CombCycle).count(), 0);
    assert_eq!(analysis.denied, 0);
}

#[test]
fn independent_port_paths_break_the_cycle() {
    // Same wiring, but b's behavior declares `out` independent of `in`
    // (a credit-style component): the loop dissolves at port granularity.
    let n = cyclic_netlist();
    let b = n.instances[1].id;
    let mut comb = CombInfo::all_combinational();
    comb.set_independent(b, PortId(1), PortId(0));
    let analysis = PassManager::with_default_passes().run(&n, &comb, &AnalysisConfig::default());
    assert_eq!(analysis.with_code(lss_analyze::Code::CombCycle).count(), 0);
}

#[test]
fn multi_driver_netlist_reports_lss102() {
    let mut n = Netlist::new();
    let s1 = add_leaf(&mut n, "s1", "source", &[("out", Dir::Out, 1)]);
    let s2 = add_leaf(&mut n, "s2", "source", &[("out", Dir::Out, 1)]);
    let k = add_leaf(&mut n, "k", "sink", &[("in", Dir::In, 1)]);
    connect(&mut n, ep(s1, 0, 0), ep(k, 0, 0));
    connect(&mut n, ep(s2, 0, 0), ep(k, 0, 0));
    assert_golden(
        "multidriver.txt",
        &report(&n, &CombInfo::all_combinational()),
    );
}

#[test]
fn dead_logic_netlist_reports_lss203() {
    let mut n = Netlist::new();
    // Observed chain: gen -> hole (hole has no outputs, so it counts as an
    // observation point).
    let gen = add_leaf(&mut n, "gen", "source", &[("out", Dir::Out, 1)]);
    let hole = add_leaf(&mut n, "hole", "sink", &[("in", Dir::In, 1)]);
    connect(&mut n, ep(gen, 0, 0), ep(hole, 0, 0));
    // Dead chain: gen2 -> stage, whose output goes nowhere.
    let gen2 = add_leaf(&mut n, "gen2", "source", &[("out", Dir::Out, 1)]);
    let stage = add_leaf(
        &mut n,
        "stage",
        "tee",
        &[("in", Dir::In, 1), ("out", Dir::Out, 0)],
    );
    connect(&mut n, ep(gen2, 0, 0), ep(stage, 0, 0));
    assert_golden("deadlogic.txt", &report(&n, &CombInfo::all_combinational()));
}

#[test]
fn table3_models_are_clean_under_default_deny() {
    let registry = lss_corelib::registry();
    for model in lss_models::models() {
        let compiled = lss_models::compile_model(model)
            .unwrap_or_else(|e| panic!("model {} failed to compile: {e}", model.id));
        let comb = lss_sim::comb_info(&compiled.netlist, &registry);
        let analysis = PassManager::with_default_passes().run(
            &compiled.netlist,
            &comb,
            &AnalysisConfig::default(),
        );
        assert_eq!(
            analysis.denied,
            0,
            "model {} is not clean under the default deny set:\n{}",
            model.id,
            to_text(&analysis.findings)
        );
        assert_eq!(
            analysis.with_code(lss_analyze::Code::CombCycle).count(),
            0,
            "model {} has a port-level combinational cycle",
            model.id
        );
    }
}
