//! The six original `lss_netlist::lint` checks, migrated into the pass
//! framework (`LSS103`, `LSS104`, `LSS201`, `LSS202`, `LSS301`, `LSS302`).
//!
//! The check implementations stay in `lss-netlist` (which keeps its thin
//! [`lss_netlist::lint()`] aggregator as a shim for existing callers);
//! here each check becomes a pass that maps `Lint` findings onto stable
//! codes and per-code severity defaults.

use lss_netlist::{lint, Lint, LintKind, Netlist};

use crate::diag::{Code, Finding};
use crate::{AnalysisCtx, Pass};

/// The stable code for a legacy lint category.
pub fn code_of(kind: LintKind) -> Code {
    match kind {
        LintKind::UnconnectedInput => Code::UnconnectedInput,
        LintKind::UnconnectedOutput => Code::UnconnectedOutput,
        LintKind::IsolatedInstance => Code::IsolatedInstance,
        LintKind::DanglingHierarchicalPort => Code::DanglingHierPort,
        LintKind::WidthMismatch => Code::WidthMismatch,
        LintKind::UnboundCollector => Code::UnboundCollector,
    }
}

fn convert(check: fn(&Netlist, &mut Vec<Lint>), ctx: &AnalysisCtx<'_>, out: &mut Vec<Finding>) {
    let mut lints = Vec::new();
    check(ctx.netlist, &mut lints);
    out.extend(
        lints
            .into_iter()
            .map(|l| Finding::new(code_of(l.kind), l.subject, l.message)),
    );
}

macro_rules! lint_pass {
    ($(#[$doc:meta])* $pass:ident, $name:literal, $check:path, $codes:expr) => {
        $(#[$doc])*
        pub struct $pass;

        impl Pass for $pass {
            fn name(&self) -> &'static str {
                $name
            }

            fn codes(&self) -> &'static [Code] {
                $codes
            }

            fn run(&self, ctx: &AnalysisCtx<'_>, findings: &mut Vec<Finding>) {
                convert($check, ctx, findings);
            }
        }
    };
}

lint_pass!(
    /// Unconnected leaf inputs and outputs on partially wired instances
    /// (`LSS201`, `LSS202`).
    UnconnectedPortsPass,
    "unconnected-ports",
    lint::check_unconnected,
    &[Code::UnconnectedInput, Code::UnconnectedOutput]
);
lint_pass!(
    /// Instances declaring ports with none connected (`LSS103`).
    IsolatedInstancePass,
    "isolated-instances",
    lint::check_isolated,
    &[Code::IsolatedInstance]
);
lint_pass!(
    /// Hierarchical ports connected on only one face (`LSS104`).
    DanglingHierPortPass,
    "dangling-hierarchical-ports",
    lint::check_dangling_hierarchical,
    &[Code::DanglingHierPort]
);
lint_pass!(
    /// Ports sharing a type variable but differing in width (`LSS301`).
    WidthMismatchPass,
    "width-mismatches",
    lint::check_width_mismatch,
    &[Code::WidthMismatch]
);
lint_pass!(
    /// Collectors bound to events that can never fire (`LSS302`).
    UnboundCollectorPass,
    "unbound-collectors",
    lint::check_unbound_collectors,
    &[Code::UnboundCollector]
);
