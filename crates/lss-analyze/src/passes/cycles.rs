//! `LSS101` — the combinational-cycle detector, the hardware analog of a
//! race detector.
//!
//! Works on the *port-granularity* dependency graph
//! ([`LeafDepGraph::ports`](crate::graph::LeafDepGraph)): wire edges plus
//! internal input→output edges for every pair the behaviors did not
//! declare independent. A leaf-level loop (a credit handshake, a cache
//! request/response pair) is legal — the static scheduler iterates it to a
//! fixpoint and the independent internal paths guarantee convergence — but
//! a cyclic SCC *here* means a value would have to depend on itself within
//! one zero-delay timestep, which no amount of iteration resolves. The
//! report names the full port path of one concrete cycle through the SCC
//! and, as notes, the inputs where a registered component would break it.

use std::collections::HashMap;

use crate::diag::{Code, Finding};
use crate::{AnalysisCtx, Pass};

/// Detects unbroken zero-delay combinational cycles (`LSS101`).
pub struct CombCyclePass;

impl Pass for CombCyclePass {
    fn name(&self) -> &'static str {
        "comb-cycles"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::CombCycle]
    }

    fn run(&self, ctx: &AnalysisCtx<'_>, findings: &mut Vec<Finding>) {
        let cond = ctx.deps.ports.condense();
        for scc in cond.cycles() {
            let cycle = concrete_cycle(ctx, scc);
            let name_of = |node: usize| {
                let (leaf, port) = ctx.deps.port_of_node(node);
                let inst = ctx.netlist.instance(ctx.deps.leaves[leaf]);
                format!("{}.{}", inst.path, ctx.netlist.name(inst.ports[port].name))
            };
            // Render the loop as a closed port path; distinct instance
            // count gives the headline size.
            let mut path: Vec<String> = cycle.iter().map(|&(a, _)| name_of(a)).collect();
            path.push(name_of(cycle[0].0));
            let mut insts: Vec<usize> = cycle
                .iter()
                .map(|&(a, _)| ctx.deps.port_of_node(a).0)
                .collect();
            insts.sort_unstable();
            insts.dedup();
            let (leaf, _) = ctx.deps.port_of_node(scc[0]);
            let subject = ctx.netlist.instance(ctx.deps.leaves[leaf]).path.clone();
            let mut finding = Finding::new(
                Code::CombCycle,
                subject,
                format!(
                    "unbroken zero-delay cycle through {} component(s): {}",
                    insts.len(),
                    path.join(" -> ")
                ),
            );
            for &(a, b) in &cycle {
                if let Some(wire) = ctx.deps.port_wire(a, b) {
                    finding = finding.with_note(format!(
                        "registering `{}` (consuming it in end_of_timestep, as corelib \
                         `delay`/`latch`/`queue` do) would break this cycle",
                        ctx.netlist.endpoint_name(wire.dst)
                    ));
                }
            }
            findings.push(finding);
        }
    }
}

/// One concrete cycle through `scc`, as a list of port-graph edges
/// `(a, b)` starting and ending at the SCC's first member. Found by BFS
/// restricted to the SCC, so the reported loop is a shortest one through
/// that member.
fn concrete_cycle(ctx: &AnalysisCtx<'_>, scc: &[usize]) -> Vec<(usize, usize)> {
    let graph = &ctx.deps.ports;
    let start = scc[0];
    let in_scc: HashMap<usize, ()> = scc.iter().map(|&v| (v, ())).collect();
    // Self-loop: the one-edge cycle.
    if graph.has_edge(start, start) {
        return vec![(start, start)];
    }
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        for &w in graph.successors(v) {
            if !in_scc.contains_key(&w) {
                continue;
            }
            if w == start {
                // Reconstruct start -> ... -> v -> start.
                let mut nodes = vec![v];
                let mut cur = v;
                while cur != start {
                    cur = parent[&cur];
                    nodes.push(cur);
                }
                nodes.reverse();
                let mut edges: Vec<(usize, usize)> =
                    nodes.windows(2).map(|p| (p[0], p[1])).collect();
                edges.push((v, start));
                return edges;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(w) {
                e.insert(v);
                queue.push_back(w);
            }
        }
    }
    unreachable!("an SCC with >1 member always has a cycle through each member")
}
