//! The analysis passes, one module each, registered with the
//! [`PassManager`](crate::PassManager).

pub mod cycles;
pub mod deadlogic;
pub mod multidriver;
pub mod netlist_lints;
pub mod protocol;
pub mod residue;

use crate::Pass;

/// Every built-in pass, in report order: structural first, then dataflow,
/// then types-and-events.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(cycles::CombCyclePass),
        Box::new(multidriver::MultiDriverPass),
        Box::new(netlist_lints::IsolatedInstancePass),
        Box::new(netlist_lints::DanglingHierPortPass),
        Box::new(protocol::ProtocolPass),
        Box::new(netlist_lints::UnconnectedPortsPass),
        Box::new(deadlogic::DeadLogicPass),
        Box::new(netlist_lints::WidthMismatchPass),
        Box::new(netlist_lints::UnboundCollectorPass),
        Box::new(residue::DisjunctResiduePass),
    ]
}
