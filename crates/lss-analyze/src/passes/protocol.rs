//! `LSS105`/`LSS106`/`LSS107` — port-protocol composition checking.
//!
//! Modules declare interface automata over named port groups (`protocol
//! ins : consumer credit(depth) on in, credit;`). For every flattened
//! leaf-to-leaf wire whose two endpoints are the *primary* ports of two
//! bindings, this pass composes the declared automata and walks the
//! product's reachable states:
//!
//! * a state where one side can send an action the peer cannot receive is
//!   an **LSS105** protocol mismatch (value-dropping or overflow);
//! * a state with no joint move where both sides still have enabled
//!   (receive) transitions is an **LSS107** deadlock — each side waits on
//!   the other forever;
//! * a state where one side has terminated and the other merely idles in
//!   wait is quiescent, not a deadlock.
//!
//! Three direct checks run before the product, where the declared numbers
//! say more than reachability can: role orientation (a `consumer` group
//! cannot drive a wire), concrete credit over-issue (`credit(N)` producer
//! into a `credit(M)` consumer with `N > M`), and dangling handshake
//! channels (`valid_ready`/`req_resp` with a declared but unwired reverse
//! port).
//!
//! Wiring degrades automata exactly as §4.2 degrades unconnected ports:
//! a `credit` group whose reverse channel is unwired cannot exchange
//! credits, so the adaptive form becomes an unbounded stream and the
//! concrete producer form becomes a finite one — neither is an error by
//! itself. An annotated group talking to a peer with no declared protocol
//! is reported as **LSS106** only when the peer is *engaged* — the group's
//! reverse port wires back to that same peer — because only then does the
//! peer demonstrably participate in the discipline without declaring it.

use std::borrow::Cow;
use std::collections::{HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use lss_ast::{FileId, Span};
use lss_netlist::{
    ActionDir, Instance, InstanceId, Netlist, PortId, ProtocolBinding, Role, Template, Wire,
};

use crate::diag::{Code, Finding};
use crate::{AnalysisCtx, Pass};

/// Product-automaton state-count bound; past this the pair is skipped
/// (declared automata are tiny, so this is a pathological-input guard).
const MAX_PRODUCT_STATES: usize = 4096;

/// Per-port flag bits: the port is some binding's reverse channel, and
/// (set during the wire scan) the port actually appears on a wire.
const REVERSE: u8 = 1;
const WIRED: u8 = 2;

/// Flat per-port flag table: `off[inst] + port` indexes `flags`.
struct PortTable<'a> {
    off: &'a [u32],
    flags: &'a [u8],
}

impl PortTable<'_> {
    fn wired(&self, inst: InstanceId, port: PortId) -> bool {
        self.flags[(self.off[inst.index()] + port.0) as usize] & WIRED != 0
    }
}

/// FNV-1a over fixed-width writes. The pass hashes nothing but small
/// integer tuples (instance/port ids, product states), where the default
/// DoS-resistant hasher costs more than the lookups it serves; keys are
/// compiler-internal ids, so collision attacks are not a concern.
#[derive(Default)]
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf29ce484222325
        } else {
            self.0
        };
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        self.0 = h;
    }

    fn write_u32(&mut self, v: u32) {
        let h = if self.0 == 0 {
            0xcbf29ce484222325
        } else {
            self.0
        };
        self.0 = (h ^ v as u64).wrapping_mul(0x100000001b3);
    }
}

type FastSet<T> = HashSet<T, BuildHasherDefault<FnvHasher>>;

/// Checks protocol compatibility across every annotated connection
/// (`LSS105`, `LSS106`, `LSS107`).
pub struct ProtocolPass;

impl Pass for ProtocolPass {
    fn name(&self) -> &'static str {
        "protocol"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            Code::ProtocolMismatch,
            Code::ProtocolUnannotatedPeer,
            Code::ProtocolDeadlock,
        ]
    }

    fn run(&self, ctx: &AnalysisCtx<'_>, findings: &mut Vec<Finding>) {
        let netlist = ctx.netlist;
        // Unannotated netlists pay one scan over the instance list and
        // nothing else.
        if netlist.instances.iter().all(|i| i.protocols.is_empty()) {
            return;
        }
        // Direct-indexed per-port tables. Port ids are dense within each
        // instance, so `off[i] + port` addresses flat arrays over every
        // port in the design: `flags` says whether a port is some
        // binding's reverse channel (and, after the wire scan, whether it
        // is actually wired), and `bidx` maps a primary port to its
        // binding's slot in `binds`. The per-wire loop below then
        // classifies each endpoint with two array reads — no per-binding
        // scans, even for corelib components that declare several groups.
        //
        // Each binding also gets a *shape id*: bindings that are
        // `same_shape` share one, so the clean-pair memo below compares
        // two integers instead of walking automata.
        const NO_BIND: u32 = u32::MAX;
        let mut off = vec![0u32; netlist.instances.len() + 1];
        for i in &netlist.instances {
            off[i.id.index() + 1] = i.ports.len() as u32;
        }
        for k in 1..off.len() {
            off[k] += off[k - 1];
        }
        let total_ports = *off.last().expect("offsets") as usize;
        let mut flags = vec![0u8; total_ports];
        let mut bidx = vec![NO_BIND; total_ports];
        let mut binds: Vec<(&Instance, &lss_netlist::ProtocolBinding, u32)> = Vec::new();
        let mut shapes: Vec<&lss_netlist::ProtocolBinding> = Vec::new();
        for i in &netlist.instances {
            let base = off[i.id.index()] as usize;
            for b in &i.protocols {
                let shape = match shapes.iter().position(|s| same_shape(s, b)) {
                    Some(k) => k as u32,
                    None => {
                        shapes.push(b);
                        (shapes.len() - 1) as u32
                    }
                };
                let slot = base + b.primary().0 as usize;
                // First binding wins on a doubly-annotated primary port,
                // matching `protocol_with_primary`'s scan order.
                if bidx[slot] == NO_BIND {
                    bidx[slot] = binds.len() as u32;
                }
                binds.push((i, b, shape));
                if let Some(r) = b.reverse() {
                    flags[base + r.0 as usize] |= REVERSE;
                }
            }
        }
        // One scan over the flattened wires classifies every endpoint:
        // reverse-port hits mark the port `WIRED` and feed the `peers`
        // table (the degradation and engagement rules key on them — only
        // reverse ports are ever queried, so only they earn entries), and
        // primary-port hits nominate the wire for a protocol check, with
        // its two binding slots resolved on the spot.
        let mut peers: Vec<(InstanceId, PortId, InstanceId)> = Vec::new();
        let mut candidates: Vec<(&Wire, u32, u32)> = Vec::new();
        for w in ctx.wires {
            let si = (off[w.src.inst.index()] + w.src.port.0) as usize;
            let di = (off[w.dst.inst.index()] + w.dst.port.0) as usize;
            if flags[si] & REVERSE != 0 {
                flags[si] |= WIRED;
                peers.push((w.src.inst, w.src.port, w.dst.inst));
            }
            if flags[di] & REVERSE != 0 {
                flags[di] |= WIRED;
                peers.push((w.dst.inst, w.dst.port, w.src.inst));
            }
            let (sb, db) = (bidx[si], bidx[di]);
            if sb != NO_BIND || db != NO_BIND {
                candidates.push((w, sb, db));
            }
        }
        peers.sort_unstable();
        peers.dedup();
        let ports = PortTable {
            off: &off,
            flags: &flags,
        };
        // Identical binding pairs compose identically: a verdict of
        // "clean" depends only on the two bindings' content and their
        // reverse-channel wiring, never on which instances carry them, so
        // one product walk covers every repetition of a library pairing.
        let mut clean: CleanCache = Vec::new();
        // Multi-lane buses flatten to one wire per lane; the protocol
        // relationship is per port pair, so dedupe — but only wires whose
        // endpoints hit a group's primary port ever reach a check, so
        // everything else skips the dedupe set too.
        let mut seen: FastSet<(InstanceId, PortId, InstanceId, PortId)> = FastSet::default();
        let mut scratch = Scratch::new();
        for (w, sb, db) in candidates {
            if !seen.insert((w.src.inst, w.src.port, w.dst.inst, w.dst.port)) {
                continue;
            }
            match (sb, db) {
                (NO_BIND, NO_BIND) => unreachable!(),
                (sb, NO_BIND) => {
                    let (owner, b, _) = binds[sb as usize];
                    let peer = netlist.instance(w.dst.inst);
                    check_engaged_peer(netlist, &peers, owner, b, peer, findings);
                }
                (NO_BIND, db) => {
                    let (owner, b, _) = binds[db as usize];
                    let peer = netlist.instance(w.src.inst);
                    check_engaged_peer(netlist, &peers, owner, b, peer, findings);
                }
                (sb, db) => {
                    let (src_inst, p, p_shape) = binds[sb as usize];
                    let (dst_inst, c, c_shape) = binds[db as usize];
                    check_pair(
                        netlist,
                        src_inst,
                        (p, p_shape),
                        dst_inst,
                        (c, c_shape),
                        &ports,
                        &mut clean,
                        &mut scratch,
                        findings,
                    );
                }
            }
        }
    }
}

/// Memo of binding-shape pairs (plus their reverse-wiring facts) already
/// proven compatible. Shapes are the `same_shape` equivalence classes
/// computed in the prologue, so entries compare as two integers; the
/// vector stays tiny because real designs reuse a handful of library
/// protocol pairings.
type CleanCache = Vec<(u32, u32, bool, bool)>;

/// Verdict-relevant equality between bindings: everything the composition
/// depends on (role, template, port layout, custom transitions) and
/// nothing it does not (group and state names, which are display-only;
/// spans, which are diagnostics-only).
fn same_shape(a: &ProtocolBinding, b: &ProtocolBinding) -> bool {
    a.role == b.role
        && a.automaton.template == b.automaton.template
        && a.ports == b.ports
        && a.automaton.states.len() == b.automaton.states.len()
        && a.automaton.transitions == b.automaton.transitions
}

fn span_of(b: &ProtocolBinding) -> Option<Span> {
    let s = &b.span;
    if s.file == u32::MAX || (s.file == 0 && s.start == 0 && s.end == 0) {
        None
    } else {
        Some(Span::new(FileId(s.file), s.start, s.end))
    }
}

fn group_label(netlist: &Netlist, inst: &Instance, b: &ProtocolBinding) -> String {
    format!(
        "{}.{} (group `{}`: {} {})",
        inst.path,
        netlist.name(inst.ports[b.primary().0 as usize].name),
        b.group,
        b.role,
        b.automaton.template.describe()
    )
}

/// `LSS106`: one side annotated, and the annotated group's reverse port
/// wires back to the very same unannotated peer — the peer participates
/// in the protocol without declaring it.
fn check_engaged_peer(
    netlist: &Netlist,
    peers: &[(InstanceId, PortId, InstanceId)],
    owner: &Instance,
    b: &ProtocolBinding,
    peer: &Instance,
    findings: &mut Vec<Finding>,
) {
    let Some(rev) = b.reverse() else { return };
    // Reverse port wired back to this very peer?
    if peers.binary_search(&(owner.id, rev, peer.id)).is_err() {
        return;
    }
    let mut f = Finding::new(
        Code::ProtocolUnannotatedPeer,
        peer.path.clone(),
        format!(
            "exchanges both data and {} traffic with {} but declares no protocol",
            match &b.automaton.template {
                Template::ValidReady => "ready",
                Template::Credit(_) => "credit",
                Template::ReqResp => "response",
                Template::Custom(_) => "reverse-channel",
            },
            group_label(netlist, owner, b),
        ),
    )
    .with_note(format!(
        "declare a matching `protocol` group on module `{}` so the checker can verify the pair",
        netlist.name(peer.module)
    ));
    f.span = span_of(b);
    findings.push(f);
}

/// Visited-state set for the product walk. The dense form covers any
/// product whose full grid fits under `MAX_PRODUCT_STATES` (so the budget
/// check can never fire) without hashing or heap traffic; the sparse form
/// handles larger grids whose *reachable* set may still be small.
///
/// The 512-byte dense bitmap lives inline on purpose: it is a stack
/// scratch whose whole point is to keep the common case off the heap, so
/// boxing it (clippy's suggestion) would reintroduce the allocation.
#[allow(clippy::large_enum_variant)]
enum Visited {
    Dense {
        bits: [u64; MAX_PRODUCT_STATES / 64],
        /// Consumer-side state count: `(ps, cs)` maps to bit `ps * nc + cs`.
        nc: u32,
    },
    Sparse(FastSet<(u32, u32)>),
}

impl Visited {
    /// Marks a state; returns whether it was new.
    fn insert(&mut self, s: (u32, u32)) -> bool {
        match self {
            Visited::Dense { bits, nc } => {
                let i = (s.0 * *nc + s.1) as usize;
                let fresh = bits[i / 64] & (1 << (i % 64)) == 0;
                bits[i / 64] |= 1 << (i % 64);
                fresh
            }
            Visited::Sparse(set) => set.insert(s),
        }
    }

    fn over_budget(&self) -> bool {
        match self {
            Visited::Dense { .. } => false,
            Visited::Sparse(set) => set.len() > MAX_PRODUCT_STATES,
        }
    }
}

/// Per-pair action-name interner. The product walk compares interned ids
/// instead of strings, and expanding the template automata allocates no
/// action strings on the clean (no-finding) path.
struct Actions<'a>(Vec<&'a str>);

impl<'a> Actions<'a> {
    fn new() -> Self {
        Actions(Vec::new())
    }

    fn clear(&mut self) {
        self.0.clear();
    }

    fn id(&mut self, s: &'a str) -> u32 {
        match self.0.iter().position(|x| *x == s) {
            Some(i) => i as u32,
            None => {
                self.0.push(s);
                (self.0.len() - 1) as u32
            }
        }
    }

    fn name(&self, id: u32) -> &'a str {
        self.0[id as usize]
    }
}

/// Display names for an automaton's states, materialized only when a
/// diagnostic actually needs one.
enum StateNames<'a> {
    /// Credit automaton: state `i` renders as "`i` in flight".
    InFlight,
    /// Explicit names (handshake templates and custom automata).
    Fixed(Vec<Cow<'a, str>>),
}

/// One expanded interface automaton in compressed-sparse-row form: two
/// flat allocations regardless of state count, transitions grouped by
/// source state.
struct Autom<'a> {
    /// CSR offsets: state `s`'s transitions occupy `starts[s]..starts[s+1]`.
    starts: Vec<u32>,
    /// `(dir, action id, to)`, grouped by source state.
    trans: Vec<(ActionDir, u32, u32)>,
    names: StateNames<'a>,
}

impl<'a> Autom<'a> {
    /// An empty automaton, to be filled by one of the `load_*` methods.
    /// Its buffers are reused across every pair a run checks, so the
    /// clean path stops touching the allocator once they reach their
    /// high-water mark.
    fn empty() -> Autom<'a> {
        Autom {
            starts: Vec::new(),
            trans: Vec::new(),
            names: StateNames::InFlight,
        }
    }

    /// Rebuilds the CSR form from `(from, dir, action, to)` edges (which
    /// it drains); the state count covers `min_states` and every index an
    /// edge mentions.
    fn load_edges(
        &mut self,
        min_states: usize,
        edges: &mut Vec<(u32, ActionDir, u32, u32)>,
        names: StateNames<'a>,
    ) {
        let n = edges
            .iter()
            .map(|e| (e.0.max(e.3) as usize) + 1)
            .max()
            .unwrap_or(0)
            .max(min_states)
            .max(1);
        edges.sort_unstable_by_key(|e| e.0);
        self.starts.clear();
        self.starts.resize(n + 1, 0);
        for e in edges.iter() {
            self.starts[e.0 as usize + 1] += 1;
        }
        for s in 0..n {
            self.starts[s + 1] += self.starts[s];
        }
        self.trans.clear();
        self.trans.extend(edges.drain(..).map(|e| (e.1, e.2, e.3)));
        self.names = names;
    }

    fn load_single(
        &mut self,
        loop_dir: ActionDir,
        action: u32,
        edges: &mut Vec<(u32, ActionDir, u32, u32)>,
    ) {
        edges.push((0, loop_dir, action, 0));
        self.load_edges(1, edges, StateNames::Fixed(vec![Cow::Borrowed("idle")]));
    }

    fn load_handshake(
        &mut self,
        fwd: u32,
        rev: u32,
        rev_name: &str,
        sends_first: bool,
        edges: &mut Vec<(u32, ActionDir, u32, u32)>,
    ) {
        let (d0, d1) = if sends_first {
            (ActionDir::Send, ActionDir::Recv)
        } else {
            (ActionDir::Recv, ActionDir::Send)
        };
        edges.push((0, d0, fwd, 1));
        edges.push((1, d1, rev, 0));
        self.load_edges(
            2,
            edges,
            StateNames::Fixed(vec![
                Cow::Borrowed("idle"),
                Cow::Owned(format!("awaiting {rev_name}")),
            ]),
        );
    }

    /// Credit automaton over `count` credits; state = items in flight.
    /// `returns_credits`: whether the reverse channel exists at all.
    fn load_credit(
        &mut self,
        count: u32,
        role: Role,
        returns_credits: bool,
        acts: &mut Actions<'a>,
        edges: &mut Vec<(u32, ActionDir, u32, u32)>,
    ) {
        let item = acts.id("item");
        let credit = acts.id("credit");
        let (item_dir, credit_dir) = match role {
            Role::Producer => (ActionDir::Send, ActionDir::Recv),
            Role::Consumer => (ActionDir::Recv, ActionDir::Send),
        };
        for i in 0..count {
            edges.push((i, item_dir, item, i + 1));
        }
        if returns_credits {
            for i in 1..=count {
                edges.push((i, credit_dir, credit, i - 1));
            }
        }
        self.load_edges(count as usize + 1, edges, StateNames::InFlight);
    }

    fn state_name(&self, s: u32) -> Cow<'_, str> {
        match &self.names {
            StateNames::InFlight => Cow::Owned(format!("{s} in flight")),
            StateNames::Fixed(names) => match names.get(s as usize) {
                Some(n) => Cow::Borrowed(n.as_ref()),
                None => Cow::Borrowed("?"),
            },
        }
    }

    fn enabled(&self, s: u32) -> &[(ActionDir, u32, u32)] {
        let s = s as usize;
        &self.trans[self.starts[s] as usize..self.starts[s + 1] as usize]
    }
}

/// Reusable expansion and product-walk buffers, one set per run; every
/// pair a run checks loads into the same allocations.
struct Scratch<'a> {
    acts: Actions<'a>,
    edges: Vec<(u32, ActionDir, u32, u32)>,
    pa: Autom<'a>,
    ca: Autom<'a>,
    queue: VecDeque<(u32, u32)>,
}

impl<'a> Scratch<'a> {
    fn new() -> Self {
        Scratch {
            acts: Actions::new(),
            edges: Vec::new(),
            pa: Autom::empty(),
            ca: Autom::empty(),
            queue: VecDeque::new(),
        }
    }
}

/// Expands a binding into `out` given the peer's template (for adaptive
/// credit resolution) and whether the reverse channel is physically
/// wired. Action names are interned in `acts`, shared by both sides of a
/// pair so ids compare across the product.
fn expand_into<'a>(
    b: &'a ProtocolBinding,
    peer: &ProtocolBinding,
    has_reverse: bool,
    acts: &mut Actions<'a>,
    edges: &mut Vec<(u32, ActionDir, u32, u32)>,
    out: &mut Autom<'a>,
) {
    match &b.automaton.template {
        Template::ValidReady => {
            let (v, r) = (acts.id("valid"), acts.id("ready"));
            out.load_handshake(v, r, "ready", b.role == Role::Producer, edges);
        }
        Template::ReqResp => {
            let (q, s) = (acts.id("req"), acts.id("resp"));
            out.load_handshake(q, s, "resp", b.role == Role::Producer, edges);
        }
        Template::Credit(declared) => {
            if !has_reverse {
                // §4.2 degradation: no credit return path. Adaptive groups
                // become an unbounded stream; a concrete producer becomes a
                // finite one (it can send its declared budget, then stops).
                match (b.role, declared) {
                    (Role::Producer, Some(n)) => {
                        out.load_credit(*n, Role::Producer, false, acts, edges);
                    }
                    (Role::Producer, None) => {
                        let item = acts.id("item");
                        out.load_single(ActionDir::Send, item, edges);
                    }
                    (Role::Consumer, _) => {
                        let item = acts.id("item");
                        out.load_single(ActionDir::Recv, item, edges);
                    }
                }
                return;
            }
            let count = declared.unwrap_or_else(|| {
                // Adaptive: take the peer's concrete count, else 1.
                match &peer.automaton.template {
                    Template::Credit(Some(m)) => *m,
                    _ => 1,
                }
            });
            out.load_credit(count.max(1), b.role, true, acts, edges);
        }
        Template::Custom(_) => {
            let names: Vec<Cow<'a, str>> = if b.automaton.states.is_empty() {
                vec![Cow::Borrowed("start")]
            } else {
                b.automaton
                    .states
                    .iter()
                    .map(|s| Cow::Borrowed(s.as_str()))
                    .collect()
            };
            edges.extend(
                b.automaton
                    .transitions
                    .iter()
                    .map(|t| (t.from, t.dir, acts.id(&t.action), t.to)),
            );
            out.load_edges(names.len(), edges, StateNames::Fixed(names));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_pair<'n>(
    netlist: &Netlist,
    src_inst: &Instance,
    (p, p_shape): (&'n ProtocolBinding, u32),
    dst_inst: &Instance,
    (c, c_shape): (&'n ProtocolBinding, u32),
    ports: &PortTable<'_>,
    clean: &mut CleanCache,
    scratch: &mut Scratch<'n>,
    findings: &mut Vec<Finding>,
) {
    // Every branch below depends only on the two bindings' content and on
    // whether each side's reverse channel is wired — never on which
    // instances carry them — so a pairing already proven clean under the
    // same wiring facts needs no second product walk.
    let p_rev = p.reverse().is_some_and(|rp| ports.wired(src_inst.id, rp));
    let c_rev = c.reverse().is_some_and(|rp| ports.wired(dst_inst.id, rp));
    if clean.contains(&(p_shape, c_shape, p_rev, c_rev)) {
        return;
    }

    // Label and subject strings only materialize when a finding fires;
    // the clean path through this function allocates nothing for them.
    let p_label = || group_label(netlist, src_inst, p);
    let c_label = || group_label(netlist, dst_inst, c);
    let subject = || {
        format!(
            "{}.{}",
            src_inst.path,
            netlist.name(src_inst.ports[p.primary().0 as usize].name)
        )
    };

    // Role orientation: the wire's source must be the producer side.
    if p.role != Role::Producer || c.role != Role::Consumer {
        let (inst, b, expected) = if p.role != Role::Producer {
            (src_inst, p, "producer")
        } else {
            (dst_inst, c, "consumer")
        };
        let mut f = Finding::new(
            Code::ProtocolMismatch,
            subject(),
            format!(
                "connection {} -> {} binds group `{}` on `{}` as {} where the data flow \
                 requires a {expected}",
                p_label(),
                c_label(),
                b.group,
                inst.path,
                b.role
            ),
        )
        .with_note(format!(
            "swap the role to `{expected}` or reverse the connection"
        ));
        f.span = span_of(b);
        findings.push(f);
        return;
    }

    // Concrete credit over-issue: declared budgets already decide it.
    if let (Template::Credit(Some(n)), Template::Credit(Some(m))) =
        (&p.automaton.template, &c.automaton.template)
    {
        if n > m {
            let mut f = Finding::new(
                Code::ProtocolMismatch,
                subject(),
                format!(
                    "{} may issue {n} item(s) against {}, which only buffers {m}",
                    p_label(),
                    c_label()
                ),
            )
            .with_note(format!(
                "lower the producer's credit count to at most {m}, or deepen the consumer"
            ));
            f.span = span_of(p);
            findings.push(f);
            return;
        }
    }

    // Credit-to-credit pairs are fully decided by the direct checks
    // above, so the product walk below cannot fire: role orientation
    // guarantees the producer sends and the consumer receives the same
    // `item`/`credit` vocabulary, over-issue has already rejected any
    // producer budget beyond the consumer's, adaptivity only ever copies
    // the peer's (already admissible) count, and §4.2 degradation strips
    // the return channel from *both* sides together, leaving a finite or
    // unbounded stream against an unbounded sink. Every reachable product
    // state therefore has a joint move or is quiescent. Skipping the walk
    // keeps wide credit windows (N states apiece) off the per-compile
    // budget; `credit_sweep_agrees_with_product_walk` pins the claim.
    if matches!(p.automaton.template, Template::Credit(_))
        && matches!(c.automaton.template, Template::Credit(_))
    {
        clean.push((p_shape, c_shape, p_rev, c_rev));
        return;
    }

    // Handshake templates require their reverse channel: a declared but
    // unwired ready/resp port stalls the pair after the first transfer.
    for (inst, b) in [(src_inst, p), (dst_inst, c)] {
        if matches!(
            b.automaton.template,
            Template::ValidReady | Template::ReqResp
        ) {
            if let Some(rev) = b.reverse() {
                if !ports.wired(inst.id, rev) {
                    let rev_name = netlist.name(inst.ports[rev.0 as usize].name);
                    let mut f = Finding::new(
                        Code::ProtocolDeadlock,
                        format!("{}.{rev_name}", inst.path),
                        format!(
                            "{} declares reverse port `{rev_name}` but it is not \
                             connected; the handshake stalls after the first transfer",
                            group_label(netlist, inst, b)
                        ),
                    )
                    .with_note("wire the reverse channel or drop the handshake annotation");
                    f.span = span_of(b);
                    findings.push(f);
                    return;
                }
            }
        }
    }

    // The credit return channel needs both ends; treat it as present only
    // when each side that declares a reverse port also has it wired.
    let credit_channel = match (p.reverse(), c.reverse()) {
        (Some(_), Some(_)) => p_rev && c_rev,
        (Some(_), None) => p_rev,
        (None, Some(_)) => c_rev,
        (None, None) => false,
    };
    let Scratch {
        acts,
        edges,
        pa,
        ca,
        queue,
    } = scratch;
    acts.clear();
    expand_into(
        p,
        c,
        credit_channel || !matches!(p.automaton.template, Template::Credit(_)),
        acts,
        edges,
        pa,
    );
    expand_into(
        c,
        p,
        credit_channel || !matches!(c.automaton.template, Template::Credit(_)),
        acts,
        edges,
        ca,
    );
    let (pa, ca) = (&*pa, &*ca);

    // Product reachability from (0, 0). When the full product grid fits
    // under the state bound, `visited` is a 512-byte stack bitmap; only a
    // pathologically large product falls back to hashing, where the
    // mid-walk bound preserves the silent-skip behavior.
    let nc = (ca.starts.len() - 1) as u32;
    let mut visited = if (pa.starts.len() - 1) * (nc as usize) <= MAX_PRODUCT_STATES {
        Visited::Dense {
            bits: [0u64; MAX_PRODUCT_STATES / 64],
            nc,
        }
    } else {
        Visited::Sparse(FastSet::default())
    };
    queue.clear();
    visited.insert((0, 0));
    queue.push_back((0, 0));
    while let Some((ps, cs)) = queue.pop_front() {
        if visited.over_budget() {
            return; // pathological; stay silent rather than guess
        }
        let p_enabled = pa.enabled(ps);
        let c_enabled = ca.enabled(cs);
        let mut moved = false;
        for pt in p_enabled {
            for ct in c_enabled {
                let joint = pt.1 == ct.1
                    && ((pt.0 == ActionDir::Send && ct.0 == ActionDir::Recv)
                        || (pt.0 == ActionDir::Recv && ct.0 == ActionDir::Send));
                if joint {
                    moved = true;
                    if visited.insert((pt.2, ct.2)) {
                        queue.push_back((pt.2, ct.2));
                    }
                }
            }
        }
        if moved {
            continue;
        }
        // No joint move from this reachable state: classify it.
        let unmatched_send = p_enabled
            .iter()
            .find(|t| t.0 == ActionDir::Send)
            .map(|t| (true, t.1))
            .or_else(|| {
                c_enabled
                    .iter()
                    .find(|t| t.0 == ActionDir::Send)
                    .map(|t| (false, t.1))
            });
        if let Some((from_producer, action)) = unmatched_send {
            let (sender, receiver, s_state, r_state) = if from_producer {
                (p_label(), c_label(), pa.state_name(ps), ca.state_name(cs))
            } else {
                (c_label(), p_label(), ca.state_name(cs), pa.state_name(ps))
            };
            let action = acts.name(action);
            let mut f = Finding::new(
                Code::ProtocolMismatch,
                subject(),
                format!(
                    "{sender} can send `{action}` (state `{s_state}`) that {receiver} \
                     cannot accept (state `{r_state}`)"
                ),
            )
            .with_note("the templates' action vocabularies or capacities do not compose");
            f.span = span_of(p).or_else(|| span_of(c));
            findings.push(f);
            return;
        }
        if !p_enabled.is_empty() && !c_enabled.is_empty() {
            // Both sides wait on a receive forever.
            let mut f = Finding::new(
                Code::ProtocolDeadlock,
                subject(),
                format!(
                    "{} (state `{}`) and {} (state `{}`) each wait for the \
                     other; no transfer can ever happen",
                    p_label(),
                    pa.state_name(ps),
                    c_label(),
                    ca.state_name(cs)
                ),
            )
            .with_note("make one side's initial state able to send, or fix the reverse wiring");
            f.span = span_of(p).or_else(|| span_of(c));
            findings.push(f);
            return;
        }
        // One or both sides terminated; the other may idle — quiescent.
    }
    clean.push((p_shape, c_shape, p_rev, c_rev));
}
