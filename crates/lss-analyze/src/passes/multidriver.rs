//! `LSS102` — multi-driver conflict detection.
//!
//! Every LSS connection is point-to-point between port *instances*; fan-in
//! is expressed by widening a port (one lane per producer). Two connections
//! landing on the same port instance therefore mean one value silently
//! shadows the other — `Netlist::flatten` keeps a single driver per input
//! and the engine stores one value per slot. The check runs over the raw
//! connection list, so conflicts at hierarchical boundaries (which
//! flattening would silently collapse) are caught too.

use std::collections::BTreeMap;

use lss_netlist::Endpoint;

use crate::diag::{Code, Finding};
use crate::{AnalysisCtx, Pass};

/// Detects port instances with more than one driver (`LSS102`).
pub struct MultiDriverPass;

impl Pass for MultiDriverPass {
    fn name(&self) -> &'static str {
        "multi-driver"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::MultiDriver]
    }

    fn run(&self, ctx: &AnalysisCtx<'_>, findings: &mut Vec<Finding>) {
        let mut drivers: BTreeMap<Endpoint, Vec<Endpoint>> = BTreeMap::new();
        for c in &ctx.netlist.connections {
            drivers.entry(c.dst).or_default().push(c.src);
        }
        for (dst, srcs) in drivers {
            if srcs.len() < 2 {
                continue;
            }
            let mut names: Vec<String> =
                srcs.iter().map(|&s| ctx.netlist.endpoint_name(s)).collect();
            names.sort();
            findings.push(Finding::new(
                Code::MultiDriver,
                ctx.netlist.endpoint_name(dst),
                format!(
                    "driven by {} sources ({}); only one value survives per cycle — widen the \
                     port so each producer gets its own lane",
                    names.len(),
                    names.join(", ")
                ),
            ));
        }
    }
}
