//! `LSS303` — disjunct-residue check.
//!
//! Overloaded components (§5: disjunctive type schemes) should have every
//! alternative discharged by inference. When a port's scheme still
//! contains a disjunction after solving, the overload was never pinned
//! down by any connection or `::` instantiation — downstream tooling then
//! defaults the type arbitrarily, which is exactly the silent ambiguity
//! the paper's type system exists to surface.

use lss_types::{solve, SolverConfig};

use crate::diag::{Code, Finding};
use crate::{AnalysisCtx, Pass};

/// Flags ports whose inferred type still contains an unresolved disjunct
/// after `lss-types::solve` (`LSS303`).
pub struct DisjunctResiduePass;

impl Pass for DisjunctResiduePass {
    fn name(&self) -> &'static str {
        "disjunct-residue"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::DisjunctResidue]
    }

    fn run(&self, ctx: &AnalysisCtx<'_>, findings: &mut Vec<Finding>) {
        let has_overloads = ctx
            .netlist
            .instances
            .iter()
            .flat_map(|i| i.ports.iter())
            .any(|p| p.scheme.has_disjunction());
        if !has_overloads {
            return;
        }
        // The netlist does not retain the solver's substitution, so re-run
        // inference over its constraint set. An unsolvable set is a compile
        // error, not this pass's business.
        let Ok(solution) = solve(&ctx.netlist.constraints, &SolverConfig::default()) else {
            return;
        };
        for inst in &ctx.netlist.instances {
            for port in &inst.ports {
                if !port.scheme.has_disjunction() {
                    continue;
                }
                let resolved = solution.subst.resolve(&port.scheme);
                if resolved.has_disjunction() {
                    findings.push(Finding::new(
                        Code::DisjunctResidue,
                        format!("{}.{}", inst.path, ctx.netlist.name(port.name)),
                        format!(
                            "overloaded type `{resolved}` is not resolved to a single \
                             alternative by inference; the simulator will default it — pin it \
                             with an explicit `::` instantiation"
                        ),
                    ));
                }
            }
        }
    }
}
