//! `LSS203` — cone-of-influence reachability (dead logic).
//!
//! An instance only matters if some value it produces can reach an
//! *observation point*: a collector, observable per-instance state
//! (declared runtime variables or events, which `--watch`/reports read), a
//! leaf that absorbs data (no outputs, like corelib `sink`), or the
//! model's top-level boundary ports. Everything else computes values
//! nobody can ever see — dead logic, usually a forgotten connection.
//!
//! The check is a reverse reachability sweep over the instance-level
//! connection digraph, so logic feeding *only* dead logic is dead too.

use std::collections::VecDeque;

use crate::diag::{Code, Finding};
use crate::{AnalysisCtx, Pass};

/// Flags instances whose outputs never reach an observation point
/// (`LSS203`).
pub struct DeadLogicPass;

impl Pass for DeadLogicPass {
    fn name(&self) -> &'static str {
        "dead-logic"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::DeadLogic]
    }

    fn run(&self, ctx: &AnalysisCtx<'_>, findings: &mut Vec<Finding>) {
        let netlist = ctx.netlist;
        let n = netlist.instances.len();
        // Reverse instance-level connection graph (dst -> srcs), deduped.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in &netlist.connections {
            let (s, d) = (c.src.inst.index(), c.dst.inst.index());
            if s != d && !rev[d].contains(&s) {
                rev[d].push(s);
            }
        }

        let mut observed = vec![false; n];
        for coll in &netlist.collectors {
            observed[coll.inst.index()] = true;
        }
        for inst in &netlist.instances {
            let sink = if inst.is_leaf() {
                // Absorbing leaves, observable state, instrumentation.
                !inst.ports.iter().any(|p| p.dir == lss_netlist::Dir::Out)
                    || !inst.runtime_vars.is_empty()
                    || !inst.events.is_empty()
            } else {
                // Top-level hierarchical instances: their boundary ports
                // are the model's externally visible surface.
                inst.parent.is_none()
            };
            if sink {
                observed[inst.id.index()] = true;
            }
        }

        // Reverse BFS: everything that can feed an observation point lives.
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| observed[i]).collect();
        let mut live = observed.clone();
        while let Some(v) = queue.pop_front() {
            for &w in &rev[v] {
                if !live[w] {
                    live[w] = true;
                    queue.push_back(w);
                }
            }
        }

        for inst in netlist.leaves() {
            if live[inst.id.index()] {
                continue;
            }
            // Fully unconnected instances are LSS103's finding; dead logic
            // is about *wired* instances whose cone of influence is empty.
            if !inst.ports.iter().any(|p| p.width > 0) {
                continue;
            }
            findings.push(Finding::new(
                Code::DeadLogic,
                inst.path.clone(),
                format!(
                    "`{}` ({}) is wired, but nothing it produces can reach a collector, \
                     observable state, or a top-level port — dead logic",
                    inst.path,
                    netlist.name(inst.module)
                ),
            ));
        }
    }
}
