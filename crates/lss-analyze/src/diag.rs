//! Typed diagnostics: stable codes, severities, findings, and the
//! deny/allow configuration consumed by CI gates.
//!
//! Codes are grouped by family — `LSS1xx` structural, `LSS2xx` dataflow,
//! `LSS3xx` types-and-events — and never renumbered: external tooling
//! (SARIF consumers, editor integrations, `--deny` lists in CI scripts)
//! keys on them.

use std::collections::BTreeSet;
use std::fmt;

use lss_ast::Span;

/// Stable diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `LSS101` — unbroken zero-delay combinational cycle.
    CombCycle,
    /// `LSS102` — one input port instance driven by several sources.
    MultiDriver,
    /// `LSS103` — instance declaring ports with none connected.
    IsolatedInstance,
    /// `LSS104` — hierarchical port connected on only one face.
    DanglingHierPort,
    /// `LSS105` — connected port groups declare incompatible protocols.
    ProtocolMismatch,
    /// `LSS106` — annotated group engages a peer with no declared protocol.
    ProtocolUnannotatedPeer,
    /// `LSS107` — composed protocol automata can reach a deadlock state.
    ProtocolDeadlock,
    /// `LSS201` — leaf input never driven (on a partially wired instance).
    UnconnectedInput,
    /// `LSS202` — leaf output with no consumers.
    UnconnectedOutput,
    /// `LSS203` — instance whose outputs never reach an observation point.
    DeadLogic,
    /// `LSS301` — ports sharing a type variable but differing in width.
    WidthMismatch,
    /// `LSS302` — collector bound to an event that can never fire.
    UnboundCollector,
    /// `LSS303` — overloaded port type left ambiguous by inference.
    DisjunctResidue,
}

/// How serious a finding is by default. `Error`-severity findings are
/// denied (fail the build) unless explicitly `--allow`ed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a build by default.
    Info,
    /// Probable mistake, but the model still has defined semantics.
    Warning,
    /// The model is broken (unschedulable, value-dropping); denied by
    /// default.
    Error,
}

impl Severity {
    /// Lowercase label (`error`, `warning`, `info`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// The SARIF 2.1.0 `level` for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Code {
    /// Every code, in id order.
    pub const ALL: [Code; 13] = [
        Code::CombCycle,
        Code::MultiDriver,
        Code::IsolatedInstance,
        Code::DanglingHierPort,
        Code::ProtocolMismatch,
        Code::ProtocolUnannotatedPeer,
        Code::ProtocolDeadlock,
        Code::UnconnectedInput,
        Code::UnconnectedOutput,
        Code::DeadLogic,
        Code::WidthMismatch,
        Code::UnboundCollector,
        Code::DisjunctResidue,
    ];

    /// The stable id, e.g. `LSS101`.
    pub fn id(self) -> &'static str {
        match self {
            Code::CombCycle => "LSS101",
            Code::MultiDriver => "LSS102",
            Code::IsolatedInstance => "LSS103",
            Code::DanglingHierPort => "LSS104",
            Code::ProtocolMismatch => "LSS105",
            Code::ProtocolUnannotatedPeer => "LSS106",
            Code::ProtocolDeadlock => "LSS107",
            Code::UnconnectedInput => "LSS201",
            Code::UnconnectedOutput => "LSS202",
            Code::DeadLogic => "LSS203",
            Code::WidthMismatch => "LSS301",
            Code::UnboundCollector => "LSS302",
            Code::DisjunctResidue => "LSS303",
        }
    }

    /// Short CamelCase rule name (SARIF `rules[].name`).
    pub fn name(self) -> &'static str {
        match self {
            Code::CombCycle => "CombinationalCycle",
            Code::MultiDriver => "MultiDriverConflict",
            Code::IsolatedInstance => "IsolatedInstance",
            Code::DanglingHierPort => "DanglingHierarchicalPort",
            Code::ProtocolMismatch => "ProtocolMismatch",
            Code::ProtocolUnannotatedPeer => "ProtocolUnannotatedPeer",
            Code::ProtocolDeadlock => "ProtocolDeadlock",
            Code::UnconnectedInput => "UnconnectedInput",
            Code::UnconnectedOutput => "UnconnectedOutput",
            Code::DeadLogic => "DeadLogic",
            Code::WidthMismatch => "WidthMismatch",
            Code::UnboundCollector => "UnboundCollector",
            Code::DisjunctResidue => "DisjunctResidue",
        }
    }

    /// One-line description (SARIF `shortDescription`, `--list-codes`).
    pub fn title(self) -> &'static str {
        match self {
            Code::CombCycle => "zero-delay combinational cycle with no state element to break it",
            Code::MultiDriver => "input port instance driven by more than one source",
            Code::IsolatedInstance => "instance declares ports but none are connected",
            Code::DanglingHierPort => "hierarchical port connected on only one face",
            Code::ProtocolMismatch => "connected port groups declare incompatible protocols",
            Code::ProtocolUnannotatedPeer => {
                "annotated port group engages a peer with no declared protocol"
            }
            Code::ProtocolDeadlock => "composed protocol automata can reach a deadlock",
            Code::UnconnectedInput => "leaf input port is never driven",
            Code::UnconnectedOutput => "leaf output port has no consumers",
            Code::DeadLogic => {
                "outputs can never reach a collector, observable state, or top-level port"
            }
            Code::WidthMismatch => "ports sharing a type variable differ in width",
            Code::UnboundCollector => "collector listens for an event that can never fire",
            Code::DisjunctResidue => "overloaded port type not resolved to a single alternative",
        }
    }

    /// A one-line fix suggestion (SARIF `help`, docs).
    pub fn help(self) -> &'static str {
        match self {
            Code::CombCycle => {
                "insert a state element (corelib `delay`, `latch`, or `queue`) on one of the \
                 cycle's inputs so the loop is registered"
            }
            Code::MultiDriver => {
                "fan in through distinct port instances (lanes) or an explicit arbiter; only one \
                 value per port instance survives a cycle"
            }
            Code::IsolatedInstance => "connect the instance or delete it",
            Code::DanglingHierPort => "connect the missing face or remove the boundary port",
            Code::ProtocolMismatch => {
                "align the two sides' `protocol` annotations (same template family and a consumer \
                 capacity at least the producer's credit count), or fix the connection"
            }
            Code::ProtocolUnannotatedPeer => {
                "declare a matching `protocol` group on the peer module, or silence with \
                 `--allow LSS106` if the peer intentionally ignores the discipline"
            }
            Code::ProtocolDeadlock => {
                "wire the group's reverse channel (credit/ready return) or reorder the automata \
                 so one side can always make progress"
            }
            Code::UnconnectedInput => {
                "drive the input, or silence with `--allow LSS201` if intended"
            }
            Code::UnconnectedOutput => {
                "consume the output, or silence with `--allow LSS202` if intended"
            }
            Code::DeadLogic => {
                "attach a collector or route the result toward an observed instance; otherwise \
                 delete the logic"
            }
            Code::WidthMismatch => {
                "match the widths or use `--allow LSS301` when the lane drop is intentional"
            }
            Code::UnboundCollector => "declare the event or fix the collector's event name",
            Code::DisjunctResidue => "pin the port's type with an explicit `::` instantiation",
        }
    }

    /// Default severity (the per-code severity defaults the CLI exposes).
    pub fn default_severity(self) -> Severity {
        match self {
            Code::CombCycle
            | Code::MultiDriver
            | Code::ProtocolMismatch
            | Code::ProtocolDeadlock => Severity::Error,
            Code::WidthMismatch => Severity::Info,
            _ => Severity::Warning,
        }
    }

    /// Parses one exact id (`LSS101`, case-insensitive).
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL
            .iter()
            .copied()
            .find(|c| c.id().eq_ignore_ascii_case(s))
    }

    /// Expands a selector into codes: an exact id (`LSS102`) or a family
    /// wildcard (`LSS1xx`). Returns `None` for unknown selectors.
    pub fn parse_selector(s: &str) -> Option<Vec<Code>> {
        if let Some(code) = Code::parse(s) {
            return Some(vec![code]);
        }
        let lower = s.to_ascii_lowercase();
        let family = lower.strip_prefix("lss")?.strip_suffix("xx")?;
        if family.len() != 1 || !family.chars().all(|c| c.is_ascii_digit()) {
            return None;
        }
        let matches: Vec<Code> = Code::ALL
            .iter()
            .copied()
            .filter(|c| c.id()[3..4].eq_ignore_ascii_case(family))
            .collect();
        if matches.is_empty() {
            None
        } else {
            Some(matches)
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic produced by a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable code.
    pub code: Code,
    /// Severity (the code's default; passes may escalate).
    pub severity: Severity,
    /// Instance / port path the finding refers to.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
    /// Supporting notes (e.g. which components would break a cycle).
    pub related: Vec<String>,
    /// Source span, when the netlist retains one for the subject.
    pub span: Option<Span>,
}

impl Finding {
    /// A finding with the code's default severity and no notes.
    pub fn new(code: Code, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Finding {
            code,
            severity: code.default_severity(),
            subject: subject.into(),
            message: message.into(),
            related: Vec::new(),
            span: None,
        }
    }

    /// Appends a supporting note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.related.push(note.into());
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.code.id(),
            self.subject,
            self.message
        )
    }
}

/// Which findings fail the build: a code is *denied* when it is on the
/// deny list or carries `Error` severity, unless it is allowed.
/// `allow` also removes the findings from the report entirely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Codes that fail the build regardless of severity.
    pub deny: BTreeSet<Code>,
    /// Codes suppressed entirely (the `--allow <code>` escape hatch).
    pub allow: BTreeSet<Code>,
}

impl AnalysisConfig {
    /// The default configuration: deny nothing beyond `Error`-severity
    /// codes, allow nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds codes to the deny list.
    pub fn deny(mut self, codes: impl IntoIterator<Item = Code>) -> Self {
        self.deny.extend(codes);
        self
    }

    /// Adds codes to the allow list.
    pub fn allow(mut self, codes: impl IntoIterator<Item = Code>) -> Self {
        self.allow.extend(codes);
        self
    }

    /// True if findings with this code are suppressed.
    pub fn is_allowed(&self, code: Code) -> bool {
        self.allow.contains(&code)
    }

    /// True if a finding with this code and severity fails the build.
    pub fn is_denied(&self, code: Code, severity: Severity) -> bool {
        !self.is_allowed(code) && (self.deny.contains(&code) || severity == Severity::Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_parse_back() {
        for code in Code::ALL {
            assert_eq!(Code::parse(code.id()), Some(code));
            assert_eq!(Code::parse(&code.id().to_lowercase()), Some(code));
        }
        assert_eq!(Code::parse("LSS999"), None);
    }

    #[test]
    fn selectors_expand_families() {
        let structural = Code::parse_selector("LSS1xx").unwrap();
        assert_eq!(
            structural,
            vec![
                Code::CombCycle,
                Code::MultiDriver,
                Code::IsolatedInstance,
                Code::DanglingHierPort,
                Code::ProtocolMismatch,
                Code::ProtocolUnannotatedPeer,
                Code::ProtocolDeadlock,
            ]
        );
        assert_eq!(Code::parse_selector("lss3XX").unwrap().len(), 3);
        assert_eq!(
            Code::parse_selector("LSS102").unwrap(),
            vec![Code::MultiDriver]
        );
        assert_eq!(Code::parse_selector("LSS9xx"), None);
        assert_eq!(Code::parse_selector("bogus"), None);
    }

    #[test]
    fn default_deny_set_is_errors_only() {
        let config = AnalysisConfig::default();
        assert!(config.is_denied(Code::CombCycle, Code::CombCycle.default_severity()));
        assert!(config.is_denied(Code::MultiDriver, Code::MultiDriver.default_severity()));
        assert!(config.is_denied(
            Code::ProtocolMismatch,
            Code::ProtocolMismatch.default_severity()
        ));
        assert!(config.is_denied(
            Code::ProtocolDeadlock,
            Code::ProtocolDeadlock.default_severity()
        ));
        let error_codes = [
            Code::CombCycle,
            Code::MultiDriver,
            Code::ProtocolMismatch,
            Code::ProtocolDeadlock,
        ];
        for code in Code::ALL {
            if !error_codes.contains(&code) {
                assert!(
                    !config.is_denied(code, code.default_severity()),
                    "{code} should not be denied by default"
                );
            }
        }
    }

    #[test]
    fn allow_beats_deny() {
        let config = AnalysisConfig::default()
            .deny([Code::WidthMismatch])
            .allow([Code::WidthMismatch, Code::CombCycle]);
        assert!(!config.is_denied(Code::WidthMismatch, Severity::Info));
        assert!(!config.is_denied(Code::CombCycle, Severity::Error));
        assert!(config.is_allowed(Code::WidthMismatch));
    }

    #[test]
    fn finding_display_is_informative() {
        let f = Finding::new(Code::CombCycle, "a", "m");
        assert_eq!(f.to_string(), "error[LSS101] a: m");
    }
}
