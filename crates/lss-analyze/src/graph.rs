//! The zero-delay dependency graph and its acyclic condensation.
//!
//! This module is the single source of truth for combinational edges: the
//! analyzer's cycle detector ([`crate::passes::cycles`]) and the
//! simulator's static scheduler (`lss-sim::sched`) both consume the
//! [`Condensation`] computed here, so they can never disagree about what
//! is a cycle.
//!
//! Two granularities are built from one wire scan:
//!
//! * **leaf level** ([`LeafDepGraph::graph`]) — an edge `A → B` for every
//!   flattened wire from an output of leaf `A` to an input of leaf `B`
//!   *that `B` reads combinationally* (state elements consume their inputs
//!   at `end_of_timestep`, which is what breaks synchronous feedback
//!   loops). Components evaluate as a unit, so this is the graph the
//!   static scheduler condenses;
//! * **port level** ([`LeafDepGraph::ports`]) — nodes are individual leaf
//!   ports; wire edges connect outputs to combinational inputs, and
//!   *internal* edges connect each combinational input to the outputs
//!   whose `eval` value actually reads it. Behaviors with independent port
//!   paths (a credit output computed from buffer occupancy alone, a cache
//!   `lower_req` that does not read `lower_resp`) break apparent loops
//!   here: a credit handshake is a leaf-level cycle — the scheduler
//!   iterates it to a fixpoint — but only a *port-level* cycle is a true
//!   unbroken zero-delay loop, which is what `LSS101` reports.
//!
//! Which inputs are combinational and which output→input pairs are
//! independent comes from the behavior registry via [`CombInfo`]; without
//! behaviors, every input conservatively counts as combinational and every
//! output depends on every input.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use lss_netlist::{Dir, InstanceId, Netlist, PortId, Wire};

/// Per-input combinational info and per-pair output independence, keyed by
/// `(instance, port)`.
///
/// Inputs are combinational and outputs depend on every combinational
/// input unless marked otherwise, so an empty map is the conservative "no
/// behavior information" default.
#[derive(Debug, Clone, Default)]
pub struct CombInfo {
    non_comb: BTreeSet<(InstanceId, PortId)>,
    /// `(inst, output, input)` triples where the output's `eval` value is
    /// known *not* to read the (combinational) input.
    independent: BTreeSet<(InstanceId, PortId, PortId)>,
}

impl CombInfo {
    /// Everything combinational (no registered state elements known).
    pub fn all_combinational() -> Self {
        Self::default()
    }

    /// Marks an input as *registered*: its component consumes it in
    /// `end_of_timestep`, so the input breaks zero-delay cycles.
    pub fn set_non_combinational(&mut self, inst: InstanceId, port: PortId) {
        self.non_comb.insert((inst, port));
    }

    /// Whether `eval` of `inst` reads `port` combinationally.
    pub fn is_combinational(&self, inst: InstanceId, port: PortId) -> bool {
        !self.non_comb.contains(&(inst, port))
    }

    /// Declares that `output`'s `eval` value does not read `input` — the
    /// port paths are independent inside the component (e.g. a queue's
    /// `credit` computed from occupancy alone, not from `credit_in`).
    pub fn set_independent(&mut self, inst: InstanceId, output: PortId, input: PortId) {
        self.independent.insert((inst, output, input));
    }

    /// Whether `output` of `inst` combinationally depends on `input`:
    /// the input feeds `eval` at all, and the pair was not declared
    /// independent.
    pub fn output_depends_on(&self, inst: InstanceId, output: PortId, input: PortId) -> bool {
        self.is_combinational(inst, input) && !self.independent.contains(&(inst, output, input))
    }

    /// Number of registered (non-combinational) inputs recorded.
    pub fn registered_inputs(&self) -> usize {
        self.non_comb.len()
    }

    /// Number of independent output/input pairs recorded.
    pub fn independent_pairs(&self) -> usize {
        self.independent.len()
    }
}

/// A directed graph over dense node indices, with deduplicated edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepGraph {
    adj: Vec<Vec<usize>>,
}

impl DepGraph {
    /// An edgeless graph over `n` nodes.
    pub fn new(n: usize) -> Self {
        DepGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an edge list (duplicates are dropped).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = DepGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Adds `a → b` unless already present.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        debug_assert!(a < self.adj.len() && b < self.adj.len());
        if !self.adj[a].contains(&b) {
            self.adj[a].push(b);
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Successors of `v`.
    pub fn successors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// True if the edge `a → b` is present.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(&b)
    }

    /// Strongly connected components in topological order (sources first),
    /// via Tarjan's algorithm — iterative, so 100k-stage pipelines do not
    /// overflow the stack.
    pub fn condense(&self) -> Condensation {
        let n = self.adj.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        // SCCs in reverse topological order (Tarjan's property).
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        enum Frame {
            Enter(usize),
            Resume(usize, usize),
        }
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut work = vec![Frame::Enter(start)];
            while let Some(frame) = work.pop() {
                match frame {
                    Frame::Enter(v) => {
                        index[v] = next_index;
                        low[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        work.push(Frame::Resume(v, 0));
                    }
                    Frame::Resume(v, child_idx) => {
                        if let Some(&w) = self.adj[v].get(child_idx) {
                            work.push(Frame::Resume(v, child_idx + 1));
                            if index[w] == usize::MAX {
                                work.push(Frame::Enter(w));
                            } else if on_stack[w] {
                                low[v] = low[v].min(index[w]);
                            }
                        } else {
                            // All children visited. Fold lowlinks of
                            // successors still on the stack (Pearce's
                            // variant of Tarjan: using low[w] for every
                            // on-stack successor — tree child or back/cross
                            // edge — yields the same SCCs).
                            for &w in &self.adj[v] {
                                if on_stack[w] {
                                    low[v] = low[v].min(low[w]);
                                }
                            }
                            if low[v] == index[v] {
                                let mut scc = Vec::new();
                                while let Some(w) = stack.pop() {
                                    on_stack[w] = false;
                                    scc.push(w);
                                    if w == v {
                                        break;
                                    }
                                }
                                scc.sort_unstable();
                                sccs.push(scc);
                            }
                        }
                    }
                }
            }
        }
        sccs.reverse();
        let mut comp_of = vec![0usize; n];
        let mut cyclic = Vec::with_capacity(sccs.len());
        for (i, scc) in sccs.iter().enumerate() {
            for &v in scc {
                comp_of[v] = i;
            }
            cyclic.push(scc.len() > 1 || self.has_edge(scc[0], scc[0]));
        }
        Condensation {
            sccs,
            comp_of,
            cyclic,
        }
    }
}

/// The acyclic condensation of a [`DepGraph`]: its strongly connected
/// components in topological order, with per-component cyclicity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condensation {
    /// SCCs in topological order (sources first); members sorted.
    pub sccs: Vec<Vec<usize>>,
    /// For each node, the index of its SCC in [`Condensation::sccs`].
    pub comp_of: Vec<usize>,
    /// For each SCC, true when it is a genuine cycle (more than one member,
    /// or a single member with a self-loop).
    pub cyclic: Vec<bool>,
}

impl Condensation {
    /// The genuinely cyclic components, in topological order.
    pub fn cycles(&self) -> impl Iterator<Item = &[usize]> {
        self.sccs
            .iter()
            .zip(&self.cyclic)
            .filter(|(_, &c)| c)
            .map(|(scc, _)| scc.as_slice())
    }

    /// Number of genuinely cyclic components.
    pub fn cycle_count(&self) -> usize {
        self.cyclic.iter().filter(|&&c| c).count()
    }

    /// Stage depth of every SCC: the length of the longest dependency chain
    /// of SCCs ending at it (sources are depth 0). Two SCCs with the same
    /// depth cannot depend on each other, so each depth class is a set of
    /// mutually independent schedule units — the parallelism structure the
    /// compiled engine executes stage by stage.
    ///
    /// `g` must be the graph this condensation was computed from.
    pub fn stage_depths(&self, g: &DepGraph) -> Vec<usize> {
        let mut depth = vec![0usize; self.sccs.len()];
        // `sccs` is topologically ordered, so every cross-SCC edge goes from
        // a lower index to a higher one; a single forward sweep relaxes all
        // longest paths.
        for (i, scc) in self.sccs.iter().enumerate() {
            for &v in scc {
                for &w in g.successors(v) {
                    let j = self.comp_of[w];
                    debug_assert!(j >= i, "condensation must be in topological order");
                    if j != i && depth[j] < depth[i] + 1 {
                        depth[j] = depth[i] + 1;
                    }
                }
            }
        }
        depth
    }

    /// Groups SCC indices by [`Condensation::stage_depths`]: `stages()[d]`
    /// lists the SCCs at depth `d`, in topological (= index) order. All
    /// members of one stage are mutually independent and may be evaluated
    /// concurrently once every earlier stage has committed its writes.
    pub fn stages(&self, g: &DepGraph) -> Vec<Vec<usize>> {
        let depth = self.stage_depths(g);
        let max = depth.iter().copied().max().map_or(0, |d| d + 1);
        let mut stages = vec![Vec::new(); max];
        for (i, &d) in depth.iter().enumerate() {
            stages[d].push(i);
        }
        stages
    }
}

/// The combinational dependency graphs of a netlist, at leaf granularity
/// (nodes are leaf instances in netlist order — the simulator's component
/// numbering) and at port granularity (nodes are individual leaf ports).
#[derive(Debug, Clone)]
pub struct LeafDepGraph {
    /// Leaf instance ids, in netlist order; node `i` of [`LeafDepGraph::graph`]
    /// is `leaves[i]`.
    pub leaves: Vec<InstanceId>,
    /// The dependency graph over leaf indices (what the scheduler runs).
    pub graph: DepGraph,
    /// The port-granularity graph (what the cycle detector runs): node
    /// `port_node(leaf, port)` is port `port` of `leaves[leaf]`.
    pub ports: DepGraph,
    index_of: HashMap<InstanceId, usize>,
    /// Port-node id of leaf `i`'s first port; one extra terminal entry, so
    /// leaf `i` owns nodes `port_base[i]..port_base[i + 1]`.
    port_base: Vec<usize>,
    /// One representative combinational wire per leaf-level edge.
    edge_wire: BTreeMap<(usize, usize), Wire>,
    /// The wire realizing each port-level wire edge (internal
    /// input→output edges have no entry).
    port_edge_wire: BTreeMap<(usize, usize), Wire>,
}

impl LeafDepGraph {
    /// The node index of a leaf instance.
    pub fn node_of(&self, inst: InstanceId) -> Option<usize> {
        self.index_of.get(&inst).copied()
    }

    /// A representative wire realizing the leaf-level combinational edge
    /// `a → b`.
    pub fn wire_for(&self, a: usize, b: usize) -> Option<&Wire> {
        self.edge_wire.get(&(a, b))
    }

    /// The port-graph node id of `(leaf index, port index)`.
    pub fn port_node(&self, leaf: usize, port: usize) -> usize {
        debug_assert!(port < self.port_base[leaf + 1] - self.port_base[leaf]);
        self.port_base[leaf] + port
    }

    /// The `(leaf index, port index)` a port-graph node id refers to.
    pub fn port_of_node(&self, node: usize) -> (usize, usize) {
        let leaf = self.port_base.partition_point(|&b| b <= node) - 1;
        (leaf, node - self.port_base[leaf])
    }

    /// The wire realizing the port-level edge `a → b`, or `None` when the
    /// edge is internal to a component (input feeding an output's `eval`).
    pub fn port_wire(&self, a: usize, b: usize) -> Option<&Wire> {
        self.port_edge_wire.get(&(a, b))
    }
}

/// Builds the zero-delay dependency graphs from flattened wires and
/// combinational-input info (see [`CombInfo`]).
///
/// `wires` must come from `netlist.flatten()`. A wire contributes an edge
/// only when its destination input is combinational; the first such wire
/// per `(src, dst)` leaf pair is kept as the leaf-level edge's
/// representative for diagnostics. The port graph additionally gets an
/// internal `input → output` edge for every pair the behaviors did not
/// declare independent.
pub fn leaf_dep_graph(netlist: &Netlist, wires: &[Wire], comb: &CombInfo) -> LeafDepGraph {
    let leaves: Vec<InstanceId> = netlist.leaves().map(|i| i.id).collect();
    let index_of: HashMap<InstanceId, usize> =
        leaves.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut port_base = Vec::with_capacity(leaves.len() + 1);
    let mut total_ports = 0usize;
    for &id in &leaves {
        port_base.push(total_ports);
        total_ports += netlist.instance(id).ports.len();
    }
    port_base.push(total_ports);

    let mut graph = DepGraph::new(leaves.len());
    let mut ports = DepGraph::new(total_ports);
    let mut edge_wire = BTreeMap::new();
    let mut port_edge_wire = BTreeMap::new();
    for wire in wires {
        debug_assert_eq!(
            netlist
                .instance(wire.dst.inst)
                .ports
                .get(wire.dst.port.index())
                .map(|p| p.dir),
            Some(Dir::In),
            "flattened wires end on leaf inputs"
        );
        if !comb.is_combinational(wire.dst.inst, wire.dst.port) {
            continue;
        }
        let a = index_of[&wire.src.inst];
        let b = index_of[&wire.dst.inst];
        graph.add_edge(a, b);
        edge_wire.entry((a, b)).or_insert(*wire);
        let pa = port_base[a] + wire.src.port.index();
        let pb = port_base[b] + wire.dst.port.index();
        ports.add_edge(pa, pb);
        port_edge_wire.entry((pa, pb)).or_insert(*wire);
    }
    // Internal edges: each combinational input feeds the outputs whose
    // eval reads it.
    for (l, &id) in leaves.iter().enumerate() {
        let inst = netlist.instance(id);
        for (i_idx, input) in inst.ports.iter().enumerate() {
            if input.dir != Dir::In || !comb.is_combinational(id, PortId::from_index(i_idx)) {
                continue;
            }
            for (o_idx, output) in inst.ports.iter().enumerate() {
                if output.dir != Dir::Out {
                    continue;
                }
                if comb.output_depends_on(id, PortId::from_index(o_idx), PortId::from_index(i_idx))
                {
                    ports.add_edge(port_base[l] + i_idx, port_base[l] + o_idx);
                }
            }
        }
    }
    LeafDepGraph {
        leaves,
        graph,
        ports,
        index_of,
        port_base,
        edge_wire,
        port_edge_wire,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo_order(c: &Condensation) -> Vec<usize> {
        c.sccs.iter().flatten().copied().collect()
    }

    #[test]
    fn comb_info_independence_is_port_specific() {
        use lss_netlist::{InstanceId, PortId};
        let mut comb = CombInfo::all_combinational();
        let inst = InstanceId(3);
        // Declaring out(1) independent of in(0) severs only that pair.
        comb.set_independent(inst, PortId(1), PortId(0));
        assert!(comb.is_combinational(inst, PortId(0)));
        assert!(!comb.output_depends_on(inst, PortId(1), PortId(0)));
        assert!(comb.output_depends_on(inst, PortId(2), PortId(0)));
        // A registered input drags every output dependency with it.
        comb.set_non_combinational(inst, PortId(0));
        assert!(!comb.output_depends_on(inst, PortId(2), PortId(0)));
    }

    #[test]
    fn chain_condenses_in_order() {
        let g = DepGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = g.condense();
        assert_eq!(topo_order(&c), vec![0, 1, 2, 3]);
        assert_eq!(c.cycle_count(), 0);
    }

    #[test]
    fn stage_depths_are_longest_paths() {
        // Diamond 0 -> {1,2} -> 3 plus a long spine 0 -> 4 -> 3: node 3's
        // stage is set by the longest chain, not the shortest.
        let g = DepGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 4), (4, 3)]);
        let c = g.condense();
        let depth = c.stage_depths(&g);
        let d = |v: usize| depth[c.comp_of[v]];
        assert_eq!(d(0), 0);
        assert_eq!(d(1), 1);
        assert_eq!(d(2), 1);
        assert_eq!(d(4), 1);
        assert_eq!(d(3), 2);
    }

    #[test]
    fn stages_group_independent_sccs() {
        // Two parallel chains 0->1 and 2->3, plus an isolated node 4 and a
        // cycle 5 <-> 6 fed by 1.
        let g = DepGraph::from_edges(7, &[(0, 1), (2, 3), (1, 5), (5, 6), (6, 5)]);
        let c = g.condense();
        let stages = c.stages(&g);
        assert_eq!(stages.len(), 3);
        // Stage membership is over SCC indices; map back to nodes.
        let nodes_at = |d: usize| -> Vec<usize> {
            let mut v: Vec<usize> = stages[d]
                .iter()
                .flat_map(|&s| c.sccs[s].iter().copied())
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(nodes_at(0), vec![0, 2, 4]);
        assert_eq!(nodes_at(1), vec![1, 3]);
        assert_eq!(nodes_at(2), vec![5, 6]);
        // Every SCC appears in exactly one stage.
        let total: usize = stages.iter().map(Vec::len).sum();
        assert_eq!(total, c.sccs.len());
    }

    #[test]
    fn diamond_respects_topological_constraints() {
        let g = DepGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let order = topo_order(&g.condense());
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn cycle_becomes_one_cyclic_scc() {
        // 0 -> 1 -> 2 -> 0 with entry 3 -> 0 and exit 2 -> 4.
        let g = DepGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (2, 4)]);
        let c = g.condense();
        assert_eq!(c.cycle_count(), 1);
        let cycle: Vec<usize> = c.cycles().next().unwrap().to_vec();
        assert_eq!(cycle, vec![0, 1, 2]);
        let order = topo_order(&c);
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(3) < pos(0), "entry before the cycle");
        assert!(pos(2) < pos(4), "exit after the cycle");
    }

    #[test]
    fn self_loop_is_cyclic_other_singletons_are_not() {
        let g = DepGraph::from_edges(2, &[(0, 0), (0, 1)]);
        let c = g.condense();
        assert_eq!(c.cycle_count(), 1);
        assert_eq!(c.cycles().next().unwrap(), &[0]);
        let one = c.comp_of[1];
        assert!(!c.cyclic[one]);
    }

    #[test]
    fn disconnected_nodes_all_appear() {
        let g = DepGraph::from_edges(5, &[(0, 1), (3, 4)]);
        let mut order = topo_order(&g.condense());
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = DepGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(topo_order(&g.condense()), vec![0, 1]);
    }

    #[test]
    fn two_cycles_are_separate_components() {
        // 0 <-> 1, 2 <-> 3, with 1 -> 2.
        let g = DepGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let c = g.condense();
        assert_eq!(c.cycle_count(), 2);
        let cycles: Vec<Vec<usize>> = c.cycles().map(<[usize]>::to_vec).collect();
        assert_eq!(cycles, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn large_pipeline_does_not_overflow_stack() {
        let n = 50_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let c = DepGraph::from_edges(n, &edges).condense();
        assert_eq!(c.sccs.len(), n);
        assert_eq!(topo_order(&c)[0], 0);
        assert_eq!(topo_order(&c)[n - 1], n - 1);
    }

    #[test]
    fn comb_info_defaults_to_combinational() {
        let mut info = CombInfo::all_combinational();
        let inst = InstanceId(3);
        assert!(info.is_combinational(inst, PortId(0)));
        info.set_non_combinational(inst, PortId(0));
        assert!(!info.is_combinational(inst, PortId(0)));
        assert!(info.is_combinational(inst, PortId(1)));
        assert_eq!(info.registered_inputs(), 1);
    }
}
