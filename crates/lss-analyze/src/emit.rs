//! Finding emitters: human text, JSON lines, and SARIF 2.1.0.
//!
//! JSON is hand-rolled (same convention as `lss-netlist::json` and the
//! bench harness) so machine-readable output needs no external crates.

use std::fmt::Write as _;

use lss_ast::SourceMap;

use crate::diag::{Code, Finding};

/// Renders findings as human-readable lines, one per finding, with
/// supporting notes indented underneath.
pub fn to_text(findings: &[Finding]) -> String {
    to_text_located(findings, None)
}

/// Like [`to_text`], but findings that carry a source span get a
/// `--> file:line:col` locator line resolved through `sources`.
pub fn to_text_located(findings: &[Finding], sources: Option<&SourceMap>) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{f}");
        if let (Some(span), Some(map)) = (f.span, sources) {
            if !span.is_synthetic() {
                let _ = writeln!(out, "    --> {}", map.describe(span));
            }
        }
        for note in &f.related {
            let _ = writeln!(out, "    note: {note}");
        }
    }
    out
}

/// Renders findings as JSON lines: one object per finding per line.
/// Findings carrying a span include a `"span": [file, start, end]` triple
/// of raw byte offsets.
pub fn to_jsonl(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let related: Vec<String> = f.related.iter().map(|n| quote(n)).collect();
        let span = match f.span {
            Some(s) if !s.is_synthetic() => {
                format!(", \"span\": [{}, {}, {}]", s.file.0, s.start, s.end)
            }
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{{\"code\": {}, \"severity\": {}, \"subject\": {}, \"message\": {}, \"related\": [{}]{span}}}",
            quote(f.code.id()),
            quote(f.severity.as_str()),
            quote(&f.subject),
            quote(&f.message),
            related.join(", ")
        );
    }
    out
}

/// Renders findings as a SARIF 2.1.0 log with one run.
///
/// Every diagnostic code appears in the rule table (so viewers can show
/// titles and help for clean runs too); each result carries the instance
/// path as a logical location's `fullyQualifiedName`.
pub fn to_sarif(findings: &[Finding]) -> String {
    to_sarif_located(findings, None)
}

/// Like [`to_sarif`], but findings with spans also carry a
/// `physicalLocation` (artifact uri + region) resolved through `sources`.
pub fn to_sarif_located(findings: &[Finding], sources: Option<&SourceMap>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"lssc\",\n");
    out.push_str("          \"informationUri\": \"https://example.org/liberty-lss\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, code) in Code::ALL.iter().enumerate() {
        let comma = if i + 1 == Code::ALL.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "            {{\"id\": {}, \"name\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"help\": {{\"text\": {}}}, \"defaultConfiguration\": {{\"level\": {}}}}}{comma}",
            quote(code.id()),
            quote(code.name()),
            quote(code.title()),
            quote(code.help()),
            quote(code.default_severity().sarif_level()),
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 == findings.len() { "" } else { "," };
        let rule_index = Code::ALL.iter().position(|&c| c == f.code).unwrap();
        let mut text = f.message.clone();
        for note in &f.related {
            text.push_str("; ");
            text.push_str(note);
        }
        let physical = match (f.span, sources) {
            (Some(span), Some(map)) if !span.is_synthetic() => match map.get(span.file) {
                Some(file) => {
                    let (line, col) = file.line_col(span.start);
                    format!(
                        ", \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
                         \"region\": {{\"startLine\": {line}, \"startColumn\": {col}, \
                         \"byteOffset\": {}, \"byteLength\": {}}}}}",
                        quote(&file.name),
                        span.start,
                        span.end.saturating_sub(span.start),
                    )
                }
                None => String::new(),
            },
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "        {{\"ruleId\": {}, \"ruleIndex\": {rule_index}, \"level\": {}, \
             \"message\": {{\"text\": {}}}, \"locations\": [{{\"logicalLocations\": \
             [{{\"fullyQualifiedName\": {}}}]{physical}}}]}}{comma}",
            quote(f.code.id()),
            quote(f.severity.sarif_level()),
            quote(&text),
            quote(&f.subject),
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// JSON string literal with escaping.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;

    fn sample() -> Vec<Finding> {
        vec![
            Finding::new(Code::CombCycle, "a", "cycle a -> b -> a").with_note("break at b.in"),
            Finding::new(Code::UnconnectedInput, "x.in", "never \"driven\""),
        ]
    }

    #[test]
    fn text_includes_notes() {
        let text = to_text(&sample());
        assert!(text.contains("error[LSS101] a: cycle a -> b -> a"));
        assert!(text.contains("    note: break at b.in"));
        assert!(text.contains("warning[LSS201]"));
    }

    #[test]
    fn jsonl_is_one_object_per_line_with_escaping() {
        let jsonl = to_jsonl(&sample());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"code\": \"LSS101\""));
        assert!(lines[1].contains("never \\\"driven\\\""));
    }

    #[test]
    fn sarif_has_rules_and_results() {
        let sarif = to_sarif(&sample());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        for code in Code::ALL {
            assert!(sarif.contains(code.id()), "rule table misses {code}");
        }
        assert!(sarif.contains("\"fullyQualifiedName\": \"x.in\""));
        assert!(sarif.contains("\"level\": \"error\""));
    }

    #[test]
    fn sarif_for_clean_run_still_lists_rules() {
        let sarif = to_sarif(&[]);
        assert!(sarif.contains("\"results\": [\n      ]"));
        assert!(sarif.contains("LSS303"));
    }
}
