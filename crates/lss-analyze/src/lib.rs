//! Static analysis over elaborated LSS netlists.
//!
//! The paper's central claim (§1, §3) is that a fully elaborated,
//! statically typed netlist lets tools reason about a whole model before a
//! single cycle runs. This crate is that tooling layer: a pass manager
//! running typed analyses over a [`Netlist`], producing [`Finding`]s with
//! stable codes (`LSS1xx` structural, `LSS2xx` dataflow, `LSS3xx`
//! types-and-events) that the `lssc check` CLI renders as human text, JSON
//! lines, or SARIF 2.1.0 for CI gates.
//!
//! The headline passes:
//!
//! * [`passes::cycles`] — zero-delay combinational-cycle detection over
//!   the port-dependency graph ([`graph::leaf_dep_graph`] + Tarjan SCC in
//!   [`DepGraph::condense`]). The same [`Condensation`] is what
//!   `lss-sim`'s static scheduler executes, so the analyzer and the engine
//!   share one definition of "cycle";
//! * [`passes::multidriver`] — port instances driven by several sources;
//! * [`passes::deadlogic`] — cone-of-influence reachability;
//! * [`passes::residue`] — overloads left ambiguous after type inference;
//! * [`passes::netlist_lints`] — the six original `lss_netlist::lint`
//!   checks as framework passes.
//!
//! # Example
//!
//! ```
//! use lss_analyze::{AnalysisConfig, CombInfo, PassManager};
//!
//! let netlist = lss_netlist::Netlist::new();
//! let analysis = PassManager::with_default_passes().run(
//!     &netlist,
//!     &CombInfo::all_combinational(),
//!     &AnalysisConfig::default(),
//! );
//! assert!(analysis.findings.is_empty());
//! assert_eq!(analysis.denied, 0);
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod emit;
pub mod graph;
pub mod passes;

use lss_netlist::{Netlist, Wire};

pub use diag::{AnalysisConfig, Code, Finding, Severity};
pub use emit::{to_jsonl, to_sarif, to_sarif_located, to_text, to_text_located};
pub use graph::{leaf_dep_graph, CombInfo, Condensation, DepGraph, LeafDepGraph};

/// Everything a pass may consult, computed once per [`PassManager::run`].
pub struct AnalysisCtx<'a> {
    /// The netlist under analysis.
    pub netlist: &'a Netlist,
    /// Flattened leaf-to-leaf wires (`netlist.flatten()`).
    pub wires: &'a [Wire],
    /// The zero-delay dependency graph over leaves.
    pub deps: &'a LeafDepGraph,
    /// Which leaf inputs are combinational.
    pub comb: &'a CombInfo,
}

/// One analysis pass.
pub trait Pass {
    /// Stable pass name (progress reporting, filtering).
    fn name(&self) -> &'static str;
    /// The codes this pass can emit.
    fn codes(&self) -> &'static [Code];
    /// Runs the pass, appending findings.
    fn run(&self, ctx: &AnalysisCtx<'_>, findings: &mut Vec<Finding>);
}

/// Orders and runs passes over a netlist.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// A manager with no passes registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// A manager with every built-in pass registered.
    pub fn with_default_passes() -> Self {
        PassManager {
            passes: passes::default_passes(),
        }
    }

    /// Registers an additional pass (runs after the existing ones).
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Names of the registered passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs all passes and applies the configuration: `allow`ed codes are
    /// dropped, the rest are sorted by (code, subject) and counted against
    /// the deny rules.
    pub fn run(&self, netlist: &Netlist, comb: &CombInfo, config: &AnalysisConfig) -> Analysis {
        match self.run_budgeted(netlist, comb, config, &lss_types::Budget::unlimited()) {
            Ok(analysis) => analysis,
            // Unreachable: an unlimited budget never errors.
            Err(_) => Analysis {
                findings: Vec::new(),
                denied: 0,
            },
        }
    }

    /// Like [`PassManager::run`], but polls `budget`'s wall-clock deadline
    /// between passes so a pathological netlist cannot pin the analyzer.
    ///
    /// # Errors
    ///
    /// [`lss_types::BudgetError`] (kind `Deadline`, stage `analyze`) when
    /// the deadline passes mid-analysis; partial progress names the passes
    /// already completed.
    pub fn run_budgeted(
        &self,
        netlist: &Netlist,
        comb: &CombInfo,
        config: &AnalysisConfig,
        budget: &lss_types::Budget,
    ) -> Result<Analysis, lss_types::BudgetError> {
        budget
            .check_deadline_now("analyze")
            .map_err(|e| e.with_progress("before dependency-graph construction"))?;
        let wires = netlist.flatten();
        let deps = leaf_dep_graph(netlist, &wires, comb);
        let ctx = AnalysisCtx {
            netlist,
            wires: &wires,
            deps: &deps,
            comb,
        };
        let mut findings = Vec::new();
        for (i, pass) in self.passes.iter().enumerate() {
            budget.check_deadline_now("analyze").map_err(|e| {
                e.with_progress(format!(
                    "{i} of {} passes completed, {} finding(s) so far",
                    self.passes.len(),
                    findings.len()
                ))
            })?;
            pass.run(&ctx, &mut findings);
        }
        findings.retain(|f| !config.is_allowed(f.code));
        findings.sort_by(|a, b| {
            (a.code, &a.subject, &a.message).cmp(&(b.code, &b.subject, &b.message))
        });
        let denied = findings
            .iter()
            .filter(|f| config.is_denied(f.code, f.severity))
            .count();
        Ok(Analysis { findings, denied })
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .finish()
    }
}

/// The result of one analyzer run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Findings after allow-filtering, sorted by (code, subject, message).
    pub findings: Vec<Finding>,
    /// How many findings are denied under the configuration used — the CI
    /// gate: nonzero means the check fails.
    pub denied: usize,
}

impl Analysis {
    /// Finding counts by severity: (errors, warnings, infos).
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for f in &self.findings {
            match f.severity {
                Severity::Error => counts.0 += 1,
                Severity::Warning => counts.1 += 1,
                Severity::Info => counts.2 += 1,
            }
        }
        counts
    }

    /// True when nothing was found at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The findings carrying a given code.
    pub fn with_code(&self, code: Code) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.code == code)
    }
}
